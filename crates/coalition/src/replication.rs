//! Replicated coalition server: WAL log shipping, fencing terms, and
//! failover (DESIGN §5f).
//!
//! §5e made a single server crash-recoverable; this module makes the
//! *service* survive the primary. The write-ahead journal is already a
//! deterministic record of every belief-changing event, so replication is
//! log shipping: the primary's journal writes are mirrored into a
//! [`LogOutbox`] by a [`TeeStore`], a [`Primary`] turns them into typed
//! [`ReplMessage`]s over `jaap-net` (inheriting `FaultPlan`'s seeded
//! drop/duplicate/delay/partition adversaries as the chaos harness), and
//! each [`Replica`] validates and appends them to its own store. Failover
//! is the recovery path from §5e pointed at a replica's store:
//! [`Replica::promote`] replays the shipped log into a fresh
//! [`CoalitionServer`] under a higher term.
//!
//! Invariants:
//!
//! * **Positions.** A log position is `(gen, offset)`: `gen` bumps on
//!   every wholesale rewrite of the primary's log (bootstrap snapshot,
//!   compaction), `offset` counts records appended since. A replica on a
//!   stale generation is re-seeded with a full snapshot image, then
//!   follows the tail — late joiners and laggards use the same path.
//! * **Fencing.** Every message carries the sender's term. A replica
//!   tracks the highest term it has seen and rejects anything below it
//!   ([`RejectReason::StaleTerm`], counted and exported as
//!   `server.repl.{i}.rejected_stale_term`), so a deposed primary cannot
//!   mutate replicas that have heard from its successor. A primary that
//!   sees a higher term in any reply marks itself deposed.
//! * **Idempotence.** Duplicated appends (offset below the replica's
//!   watermark) are re-acked, not re-applied; gaps are rejected with the
//!   replica's actual position so the primary rewinds. Every shipped
//!   frame is strictly decoded ([`jaap_wal::decode_frames`]) before it
//!   touches the replica's log — corruption and format-version skew are
//!   typed rejections, never silent truncation.

use std::sync::Arc;
use std::time::Duration;

use jaap_net::{Endpoint, FaultPlan, Network, NetworkHandle, PartyId, RejectReason, ReplMessage};
use jaap_obs::{Counter, Gauge, MetricsRegistry};
use jaap_pki::TrustStore;
use jaap_wal::{JournalStore, LogOutbox, MemStore, TeeEvent, WalError, FORMAT_VERSION};

use crate::server::{CoalitionServer, RecoveryReport};
use crate::CoalitionError;

/// The endpoints and handle of a freshly built replication mesh:
/// the primary's endpoint, one endpoint per replica, and the network
/// handle for stats and transcript access.
type MeshParts = (
    Endpoint<ReplMessage>,
    Vec<Endpoint<ReplMessage>>,
    NetworkHandle,
);

/// Records shipped to one replica per sync round before waiting for acks.
pub const DEFAULT_SHIP_WINDOW: usize = 32;

/// How long each endpoint drain waits for in-flight (possibly delayed)
/// messages during a sync round.
const POLL: Duration = Duration::from_millis(1);

/// Monotone primary-side replication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimaryStats {
    /// Messages shipped (appends + snapshots, before network faults).
    pub shipped: u64,
    /// Records newly acknowledged by replicas (one per record per replica).
    pub acked_records: u64,
    /// Snapshot catch-up shipments (late join, lag, or post-compaction).
    pub catchups: u64,
    /// Replies that fenced this primary off as deposed.
    pub stale_term_rejections: u64,
}

/// Monotone replica-side replication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Records appended to the local log.
    pub applied: u64,
    /// Snapshot images installed.
    pub snapshots_installed: u64,
    /// Duplicate appends re-acked without re-applying.
    pub duplicates: u64,
    /// Messages rejected under the fencing rule.
    pub rejected_stale_term: u64,
    /// Frames rejected for format-version incompatibility.
    pub rejected_incompatible: u64,
    /// Messages rejected for addressing a position this replica is not at.
    pub rejected_out_of_sync: u64,
}

/// Pre-resolved primary-side instruments for one replica, following the
/// resolve-once convention from §5c.
#[derive(Debug, Clone)]
struct ReplicaInstruments {
    shipped: Arc<Counter>,
    acked: Arc<Counter>,
    lag: Arc<Gauge>,
    catchups: Arc<Counter>,
    /// Outbox events refused at the bounded tee (`LogOutbox` cap): typed
    /// replication lag, healed by the next snapshot catch-up.
    outbox_saturated: Arc<Counter>,
}

/// What the primary believes one replica holds.
#[derive(Debug, Clone, Copy)]
struct Progress {
    gen: u64,
    next_offset: u64,
}

/// The shipping side: drains the [`LogOutbox`] fed by the primary
/// server's [`TeeStore`] and converts per-replica lag into protocol
/// messages. Transport-agnostic — [`ReplicationNet`] pumps it over a
/// `jaap-net` mesh, and tests can drive it directly.
#[derive(Debug)]
pub struct Primary {
    term: u64,
    gen: u64,
    base: Vec<u8>,
    base_records: u64,
    tail: Vec<Vec<u8>>,
    outbox: LogOutbox,
    progress: Vec<Progress>,
    deposed_by: Option<u64>,
    stats: PrimaryStats,
    instruments: Vec<ReplicaInstruments>,
    /// `LogOutbox::dropped()` already mirrored into the instruments.
    outbox_dropped_seen: u64,
}

impl Primary {
    /// A primary at `term` shipping to `replicas` followers, fed by
    /// `outbox` (the tee on the primary server's journal store).
    #[must_use]
    pub fn new(term: u64, replicas: usize, outbox: LogOutbox) -> Self {
        Primary {
            term,
            gen: 0,
            base: Vec::new(),
            base_records: 0,
            tail: Vec::new(),
            outbox,
            progress: vec![
                Progress {
                    gen: 0,
                    next_offset: 0,
                };
                replicas
            ],
            deposed_by: None,
            stats: PrimaryStats::default(),
            instruments: Vec::new(),
            outbox_dropped_seen: 0,
        }
    }

    /// Resolves per-replica `server.repl.{i}.*` instruments into
    /// `registry` (resolve-once; the ship path then only increments).
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.instruments = (0..self.progress.len())
            .map(|i| ReplicaInstruments {
                shipped: registry.counter(&format!("server.repl.{i}.shipped")),
                acked: registry.counter(&format!("server.repl.{i}.acked")),
                lag: registry.gauge(&format!("server.repl.{i}.lag_records")),
                catchups: registry.counter(&format!("server.repl.{i}.catchups")),
                outbox_saturated: registry.counter(&format!("server.repl.{i}.outbox_saturated")),
            })
            .collect();
    }

    /// Pulls everything the local journal wrote since the last call into
    /// the shipping state: appends extend the tail, a reset starts a new
    /// generation with the reset image as its base.
    pub fn absorb(&mut self) {
        // Mirror events the bounded outbox refused since the last absorb:
        // each is a tail record every replica will miss until the next
        // snapshot catch-up, so the saturation counter is the lag signal.
        let dropped = self.outbox.dropped();
        if dropped > self.outbox_dropped_seen {
            let delta = dropped - self.outbox_dropped_seen;
            self.outbox_dropped_seen = dropped;
            for ins in &self.instruments {
                ins.outbox_saturated.add(delta);
            }
        }
        for event in self.outbox.drain() {
            match event {
                TeeEvent::Append(frame) => self.tail.push(frame),
                TeeEvent::Reset(image) => {
                    self.gen += 1;
                    self.base_records = jaap_wal::parse_log(&image).records.len() as u64;
                    self.base = image;
                    self.tail.clear();
                }
            }
        }
    }

    /// The messages to ship to `replica` right now: a snapshot when it is
    /// on a stale generation (counted as a catch-up), then up to `window`
    /// unacknowledged tail records.
    pub fn pending(&mut self, replica: usize, window: usize) -> Vec<ReplMessage> {
        let p = self.progress[replica];
        let mut out = Vec::new();
        let from = if p.gen == self.gen {
            p.next_offset as usize
        } else {
            self.stats.catchups += 1;
            if let Some(ins) = self.instruments.get(replica) {
                ins.catchups.inc();
            }
            out.push(ReplMessage::Snapshot {
                term: self.term,
                gen: self.gen,
                image: self.base.clone(),
            });
            0
        };
        for (offset, frame) in self.tail.iter().enumerate().skip(from).take(window) {
            out.push(ReplMessage::Append {
                term: self.term,
                gen: self.gen,
                offset: offset as u64,
                frame: frame.clone(),
            });
        }
        self.stats.shipped += out.len() as u64;
        if let Some(ins) = self.instruments.get(replica) {
            ins.shipped.add(out.len() as u64);
        }
        out
    }

    /// Digests one reply from `replica`: advances its ack watermark,
    /// rewinds on out-of-sync rejections, and marks this primary deposed
    /// when a higher term appears.
    pub fn on_reply(&mut self, replica: usize, msg: &ReplMessage) {
        if msg.term() > self.term {
            self.deposed_by = Some(msg.term());
        }
        match msg {
            ReplMessage::Ack {
                gen, next_offset, ..
            } => {
                if *gen == self.gen {
                    let p = &mut self.progress[replica];
                    if p.gen != self.gen {
                        p.gen = self.gen;
                        p.next_offset = 0;
                    }
                    if *next_offset > p.next_offset {
                        let delta = *next_offset - p.next_offset;
                        self.stats.acked_records += delta;
                        if let Some(ins) = self.instruments.get(replica) {
                            ins.acked.add(delta);
                        }
                        p.next_offset = *next_offset;
                    }
                }
            }
            ReplMessage::Reject { reason, .. } => match reason {
                RejectReason::StaleTerm { have } => {
                    self.stats.stale_term_rejections += 1;
                    self.deposed_by = Some(*have);
                }
                RejectReason::OutOfSync { gen, next_offset } => {
                    let p = &mut self.progress[replica];
                    if *gen == self.gen {
                        p.gen = *gen;
                        p.next_offset = *next_offset;
                    } else {
                        // Wrong generation: force the snapshot path.
                        p.gen = *gen;
                        p.next_offset = 0;
                    }
                }
                RejectReason::IncompatibleFormat { .. } | RejectReason::Corrupt { .. } => {}
            },
            ReplMessage::Append { .. } | ReplMessage::Snapshot { .. } => {}
        }
        if let Some(ins) = self.instruments.get(replica) {
            ins.lag
                .set(i64::try_from(self.lag(replica)).unwrap_or(i64::MAX));
        }
    }

    /// Records `replica` has not yet acknowledged (counting the whole
    /// base image when it is a generation behind).
    #[must_use]
    pub fn lag(&self, replica: usize) -> u64 {
        let p = self.progress[replica];
        if p.gen == self.gen {
            (self.tail.len() as u64).saturating_sub(p.next_offset)
        } else {
            self.base_records + self.tail.len() as u64
        }
    }

    /// True when every replica has acknowledged the entire log.
    #[must_use]
    pub fn all_caught_up(&self) -> bool {
        self.progress
            .iter()
            .all(|p| p.gen == self.gen && p.next_offset == self.tail.len() as u64)
    }

    /// The higher term that fenced this primary off, if any reply carried
    /// one.
    #[must_use]
    pub fn deposed_by(&self) -> Option<u64> {
        self.deposed_by
    }

    /// This primary's term.
    #[must_use]
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Number of replicas this primary ships to.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.progress.len()
    }

    /// Shipping counters.
    #[must_use]
    pub fn stats(&self) -> PrimaryStats {
        self.stats
    }
}

/// The receiving side: a fenced, strictly-validating log follower whose
/// store can be promoted into a full [`CoalitionServer`] on failover.
#[derive(Debug)]
pub struct Replica {
    index: usize,
    term: u64,
    gen: u64,
    next_offset: u64,
    store: MemStore,
    stats: ReplicaStats,
    rejected_stale_term: Option<Arc<Counter>>,
}

impl Replica {
    /// An empty replica; `index` names it in metric identifiers.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Replica {
            index,
            term: 0,
            gen: 0,
            next_offset: 0,
            store: MemStore::new(),
            stats: ReplicaStats::default(),
            rejected_stale_term: None,
        }
    }

    /// Resolves this replica's `server.repl.{index}.rejected_stale_term`
    /// counter into `registry`.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.rejected_stale_term =
            Some(registry.counter(&format!("server.repl.{}.rejected_stale_term", self.index)));
    }

    /// Handles one message from a primary, returning the reply to send
    /// back. Never mutates the local log on a rejected message.
    pub fn on_message(&mut self, msg: &ReplMessage) -> ReplMessage {
        let term = msg.term();
        if term < self.term {
            self.stats.rejected_stale_term += 1;
            if let Some(c) = &self.rejected_stale_term {
                c.inc();
            }
            return ReplMessage::Reject {
                term: self.term,
                reason: RejectReason::StaleTerm { have: self.term },
            };
        }
        self.term = term;
        match msg {
            ReplMessage::Snapshot { gen, image, .. } => self.install_snapshot(*gen, image),
            ReplMessage::Append {
                gen, offset, frame, ..
            } => self.apply_append(*gen, *offset, frame),
            // Replicas only ever receive primary→replica traffic; anything
            // else is a protocol error worth flagging as out of sync.
            ReplMessage::Ack { .. } | ReplMessage::Reject { .. } => self.reject_out_of_sync(),
        }
    }

    fn install_snapshot(&mut self, gen: u64, image: &[u8]) -> ReplMessage {
        if gen <= self.gen {
            // A duplicated or reordered snapshot for a generation we
            // already hold (or have moved past): re-ack idempotently.
            self.stats.duplicates += 1;
            return self.ack();
        }
        match self.validate(image) {
            Ok(records) => {
                self.store.reset(image).expect("mem store reset");
                self.gen = gen;
                self.next_offset = 0;
                self.stats.snapshots_installed += 1;
                self.stats.applied += records;
                self.ack()
            }
            Err(reason) => self.reject(reason),
        }
    }

    fn apply_append(&mut self, gen: u64, offset: u64, frame: &[u8]) -> ReplMessage {
        if gen != self.gen {
            return self.reject_out_of_sync();
        }
        if offset < self.next_offset {
            self.stats.duplicates += 1;
            return self.ack();
        }
        if offset > self.next_offset {
            return self.reject_out_of_sync();
        }
        match self.validate(frame) {
            Ok(1) => {
                self.store.append(frame).expect("mem store append");
                self.next_offset += 1;
                self.stats.applied += 1;
                self.ack()
            }
            Ok(n) => self.reject(RejectReason::Corrupt {
                detail: format!("append carried {n} frames, expected exactly 1"),
            }),
            Err(reason) => self.reject(reason),
        }
    }

    /// Strictly decodes shipped bytes, returning the record count.
    fn validate(&self, bytes: &[u8]) -> Result<u64, RejectReason> {
        match jaap_wal::decode_frames(bytes) {
            Ok(frames) => {
                for f in &frames {
                    if f.term > self.term {
                        return Err(RejectReason::Corrupt {
                            detail: format!(
                                "frame stamped with term {} above shipping term {}",
                                f.term, self.term
                            ),
                        });
                    }
                }
                Ok(frames.len() as u64)
            }
            Err(WalError::IncompatibleVersion { found, supported }) => {
                Err(RejectReason::IncompatibleFormat { found, supported })
            }
            Err(e) => Err(RejectReason::Corrupt {
                detail: e.to_string(),
            }),
        }
    }

    fn ack(&self) -> ReplMessage {
        ReplMessage::Ack {
            term: self.term,
            gen: self.gen,
            next_offset: self.next_offset,
        }
    }

    fn reject_out_of_sync(&mut self) -> ReplMessage {
        self.stats.rejected_out_of_sync += 1;
        self.reject_current(RejectReason::OutOfSync {
            gen: self.gen,
            next_offset: self.next_offset,
        })
    }

    fn reject(&mut self, reason: RejectReason) -> ReplMessage {
        if matches!(reason, RejectReason::IncompatibleFormat { .. }) {
            self.stats.rejected_incompatible += 1;
        }
        self.reject_current(reason)
    }

    fn reject_current(&self, reason: RejectReason) -> ReplMessage {
        ReplMessage::Reject {
            term: self.term,
            reason,
        }
    }

    /// Promotes this replica: recovers a [`CoalitionServer`] named `name`
    /// from the shipped log (the §5e replay path) and raises the fencing
    /// term to `new_term`, which must exceed every term this replica has
    /// seen. From here on, traffic from the deposed primary is rejected.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] when `new_term` does not exceed the
    /// current term; any recovery error from the replay path.
    pub fn promote(
        &mut self,
        name: impl Into<String>,
        trust: TrustStore,
        new_term: u64,
    ) -> Result<(CoalitionServer, RecoveryReport), CoalitionError> {
        if new_term <= self.term {
            return Err(CoalitionError::Config(format!(
                "promotion term {new_term} must exceed current term {}",
                self.term
            )));
        }
        self.term = new_term;
        let (mut server, report) =
            CoalitionServer::recover(name, trust, Box::new(self.store.clone()))?;
        server.set_journal_term(new_term);
        Ok((server, report))
    }

    /// A handle on this replica's log store (shared bytes; survives the
    /// replica being dropped, like a disk surviving a crash).
    #[must_use]
    pub fn store(&self) -> MemStore {
        self.store.clone()
    }

    /// The highest term this replica has seen.
    #[must_use]
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The replica's current position as `(gen, next_offset)`.
    #[must_use]
    pub fn position(&self) -> (u64, u64) {
        (self.gen, self.next_offset)
    }

    /// The replica's metric index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Apply/reject counters.
    #[must_use]
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Supported frame format version (what incompatible primaries are
    /// rejected against).
    #[must_use]
    pub fn supported_format(&self) -> u8 {
        FORMAT_VERSION
    }
}

/// A [`Primary`] and its [`Replica`]s wired over a `jaap-net` mesh:
/// party 0 is the primary, parties `1..=n` are replicas. The pump runs
/// single-threaded for determinism; the mesh's [`FaultPlan`] injects the
/// chaos.
#[derive(Debug)]
pub struct ReplicationNet {
    /// The shipping state machine.
    pub primary: Primary,
    /// The follower state machines, by replica index.
    pub replicas: Vec<Replica>,
    primary_ep: Endpoint<ReplMessage>,
    replica_eps: Vec<Endpoint<ReplMessage>>,
    handle: NetworkHandle,
    window: usize,
}

impl ReplicationNet {
    /// A primary at `term` with `n_replicas` fresh replicas, exchanging
    /// messages through a mesh governed by `plan`.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] when the mesh rejects the fault plan.
    pub fn new(
        term: u64,
        n_replicas: usize,
        outbox: LogOutbox,
        plan: FaultPlan,
    ) -> Result<Self, CoalitionError> {
        let primary = Primary::new(term, n_replicas, outbox);
        let replicas = (0..n_replicas).map(Replica::new).collect();
        let (primary_ep, replica_eps, handle) = Self::mesh(n_replicas, plan)?;
        Ok(ReplicationNet {
            primary,
            replicas,
            primary_ep,
            replica_eps,
            handle,
            window: DEFAULT_SHIP_WINDOW,
        })
    }

    fn mesh(n_replicas: usize, plan: FaultPlan) -> Result<MeshParts, CoalitionError> {
        let (mut endpoints, handle) =
            Network::<ReplMessage>::try_mesh_with(n_replicas + 1, plan, false)
                .map_err(|e| CoalitionError::Config(format!("replication mesh: {e}")))?;
        let primary_ep = endpoints.remove(0);
        Ok((primary_ep, endpoints, handle))
    }

    /// Replaces the mesh (and its fault plan) — how a test heals a
    /// partition or degrades a healthy link. Messages in flight on the
    /// old mesh are lost, which is exactly what a partition does.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] when the mesh rejects the fault plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), CoalitionError> {
        let (primary_ep, replica_eps, handle) = Self::mesh(self.replicas.len(), plan)?;
        self.primary_ep = primary_ep;
        self.replica_eps = replica_eps;
        self.handle = handle;
        Ok(())
    }

    /// Resolves replication instruments for the primary and every
    /// replica into `registry`.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.primary.set_metrics(registry);
        for r in &mut self.replicas {
            r.set_metrics(registry);
        }
    }

    /// Overrides the per-round ship window.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Runs up to `max_rounds` ship → apply → ack rounds, stopping early
    /// once every replica has acknowledged the whole log. Returns the
    /// number of rounds executed. Under message loss a single round may
    /// make no progress; callers pick `max_rounds` to bound retries.
    pub fn sync(&mut self, max_rounds: usize) -> usize {
        for round in 0..max_rounds {
            self.primary.absorb();
            if self.primary.all_caught_up() {
                return round;
            }
            for i in 0..self.replicas.len() {
                for msg in self.primary.pending(i, self.window) {
                    let _ = self.primary_ep.send(PartyId(i + 1), msg);
                }
            }
            for (i, ep) in self.replica_eps.iter_mut().enumerate() {
                while let Ok(env) = ep.recv_timeout(POLL) {
                    if env.from != PartyId(0) {
                        continue;
                    }
                    let reply = self.replicas[i].on_message(&env.payload);
                    let _ = ep.send(PartyId(0), reply);
                }
            }
            while let Ok(env) = self.primary_ep.recv_timeout(POLL) {
                let from = env.from.0;
                if from >= 1 && from <= self.replicas.len() {
                    self.primary.on_reply(from - 1, &env.payload);
                }
            }
        }
        max_rounds
    }

    /// The mesh's inspection handle (fault statistics, transcript).
    #[must_use]
    pub fn net_handle(&self) -> &NetworkHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_wal::{frame_record_with_term, Journal, TeeStore};

    fn shipping_pair(term: u64) -> (Journal, Primary, Replica) {
        let outbox = LogOutbox::new();
        let journal = Journal::new(Box::new(TeeStore::new(MemStore::new(), outbox.clone())));
        let primary = Primary::new(term, 1, outbox);
        (journal, primary, Replica::new(0))
    }

    fn pump_direct(primary: &mut Primary, replica: &mut Replica, rounds: usize) {
        for _ in 0..rounds {
            primary.absorb();
            for msg in primary.pending(0, DEFAULT_SHIP_WINDOW) {
                let reply = replica.on_message(&msg);
                primary.on_reply(0, &reply);
            }
        }
    }

    #[test]
    fn appends_ship_in_order_and_ack() {
        let (mut journal, mut primary, mut replica) = shipping_pair(1);
        journal.set_term(1);
        journal.append(b"r1").expect("append");
        journal.append(b"r2").expect("append");
        pump_direct(&mut primary, &mut replica, 1);
        assert!(primary.all_caught_up());
        assert_eq!(primary.lag(0), 0);
        assert_eq!(replica.stats().applied, 2);
        let shipped = jaap_wal::parse_log(&replica.store().snapshot());
        assert_eq!(shipped.records, vec![b"r1".to_vec(), b"r2".to_vec()]);
        assert_eq!(shipped.terms, vec![1, 1]);
    }

    #[test]
    fn rewrite_ships_as_snapshot_catchup() {
        let (mut journal, mut primary, mut replica) = shipping_pair(1);
        journal.append(b"old").expect("append");
        journal
            .rewrite(&[b"snap".to_vec(), b"shot".to_vec()])
            .expect("rewrite");
        journal.append(b"tail").expect("append");
        pump_direct(&mut primary, &mut replica, 1);
        assert!(primary.all_caught_up());
        assert_eq!(replica.stats().snapshots_installed, 1);
        assert!(primary.stats().catchups >= 1);
        let shipped = jaap_wal::parse_log(&replica.store().snapshot());
        assert_eq!(
            shipped.records,
            vec![b"snap".to_vec(), b"shot".to_vec(), b"tail".to_vec()]
        );
    }

    #[test]
    fn duplicate_append_is_reacked_not_reapplied() {
        let (mut journal, mut primary, mut replica) = shipping_pair(1);
        journal.set_term(1);
        journal.append(b"once").expect("append");
        primary.absorb();
        let msgs = primary.pending(0, 8);
        assert_eq!(msgs.len(), 1);
        let first = replica.on_message(&msgs[0]);
        let second = replica.on_message(&msgs[0]);
        assert_eq!(first, second);
        assert_eq!(replica.stats().applied, 1);
        assert_eq!(replica.stats().duplicates, 1);
    }

    #[test]
    fn gap_is_rejected_with_replica_position() {
        let mut replica = Replica::new(0);
        let frame = frame_record_with_term(1, b"future");
        let reply = replica.on_message(&ReplMessage::Append {
            term: 1,
            gen: 0,
            offset: 5,
            frame,
        });
        assert!(matches!(
            reply,
            ReplMessage::Reject {
                reason: RejectReason::OutOfSync {
                    gen: 0,
                    next_offset: 0
                },
                ..
            }
        ));
    }

    #[test]
    fn stale_term_is_fenced_and_counted() {
        let registry = MetricsRegistry::new();
        let mut replica = Replica::new(0);
        replica.set_metrics(&registry);
        // Hear from term 3 first.
        let _ = replica.on_message(&ReplMessage::Append {
            term: 3,
            gen: 0,
            offset: 0,
            frame: frame_record_with_term(3, b"new-regime"),
        });
        // A deposed term-1 primary is rejected without touching the log.
        let before = replica.store().snapshot();
        let reply = replica.on_message(&ReplMessage::Append {
            term: 1,
            gen: 0,
            offset: 1,
            frame: frame_record_with_term(1, b"zombie"),
        });
        assert!(matches!(
            reply,
            ReplMessage::Reject {
                reason: RejectReason::StaleTerm { have: 3 },
                ..
            }
        ));
        assert_eq!(replica.store().snapshot(), before);
        assert_eq!(replica.stats().rejected_stale_term, 1);
        assert_eq!(
            registry.counter_value("server.repl.0.rejected_stale_term"),
            Some(1)
        );
    }

    #[test]
    fn primary_learns_it_is_deposed_from_replies() {
        let mut primary = Primary::new(1, 1, LogOutbox::new());
        primary.on_reply(
            0,
            &ReplMessage::Reject {
                term: 4,
                reason: RejectReason::StaleTerm { have: 4 },
            },
        );
        assert_eq!(primary.deposed_by(), Some(4));
        assert_eq!(primary.stats().stale_term_rejections, 1);
    }

    #[test]
    fn incompatible_format_version_is_a_typed_rejection() {
        let mut replica = Replica::new(0);
        let mut frame = frame_record_with_term(1, b"from-the-future");
        frame[2] = FORMAT_VERSION + 1;
        let reply = replica.on_message(&ReplMessage::Append {
            term: 1,
            gen: 0,
            offset: 0,
            frame,
        });
        assert!(matches!(
            reply,
            ReplMessage::Reject {
                reason: RejectReason::IncompatibleFormat {
                    found,
                    supported,
                },
                ..
            } if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
        assert_eq!(replica.stats().rejected_incompatible, 1);
        assert_eq!(replica.stats().applied, 0);
    }

    #[test]
    fn corrupt_frame_is_rejected_without_applying() {
        let mut replica = Replica::new(0);
        let mut frame = frame_record_with_term(1, b"soon-corrupt");
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        let reply = replica.on_message(&ReplMessage::Append {
            term: 1,
            gen: 0,
            offset: 0,
            frame,
        });
        assert!(matches!(
            reply,
            ReplMessage::Reject {
                reason: RejectReason::Corrupt { .. },
                ..
            }
        ));
        assert_eq!(replica.stats().applied, 0);
    }

    #[test]
    fn sync_over_lossy_mesh_converges() {
        let outbox = LogOutbox::new();
        let mut journal = Journal::new(Box::new(TeeStore::new(MemStore::new(), outbox.clone())));
        journal.set_term(1);
        let plan = FaultPlan::seeded(7).with_drop(0.3).with_duplicate(0.2);
        let mut net = ReplicationNet::new(1, 2, outbox, plan).expect("net");
        for i in 0..20u8 {
            journal.append(&[i]).expect("append");
        }
        net.sync(200);
        assert!(net.primary.all_caught_up(), "replication did not converge");
        for r in &net.replicas {
            let log = jaap_wal::parse_log(&r.store().snapshot());
            assert_eq!(log.records.len(), 20);
        }
        assert!(net.net_handle().stats().messages_dropped > 0);
    }
}
