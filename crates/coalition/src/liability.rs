//! Trust-liability analysis: Case I (conventional key + lockbox) vs
//! Case II (shared key), §2.2 / experiment E7.
//!
//! The paper's argument, made executable:
//!
//! * Case I: "compromise of coalition AA's private key by external
//!   penetrations would result in the AA being a single point of trust
//!   failure"; a single privileged insider also suffices.
//! * Case II: "for external penetrations to succeed, **all** domains would
//!   have to be compromised to obtain the coalition AA's private key".
//!
//! [`min_compromises`] gives the adversary's minimum target count;
//! [`exposure_probability`] the closed-form exposure probability when each
//! party falls independently; [`simulate_exposure`] a Monte-Carlo estimate
//! driven by the same model.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The AA key-management scheme under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Case I: conventional key in a lockbox at a single AA host, with `n`
    /// domain administrators holding maintenance access.
    CaseILockbox {
        /// Number of member domains (each contributes one privileged
        /// insider).
        n: usize,
    },
    /// Case II: shared key, n-of-n.
    CaseIIShared {
        /// Number of member domains (shareholders).
        n: usize,
    },
    /// Case I with the AA replicated for robustness: "replication of the
    /// coalition AA … would only amplify this trust liability, as the
    /// private key would have to be replicated as well" (§2.2).
    CaseIReplicated {
        /// Number of member domains (insiders).
        n: usize,
        /// Number of AA replicas, each holding the private key.
        replicas: usize,
    },
    /// Case II variant with an m-of-n threshold (§3.3 trade-off).
    CaseIIThreshold {
        /// Signing threshold.
        m: usize,
        /// Number of member domains.
        n: usize,
    },
}

impl Scheme {
    /// Number of attackable parties in the model: Case I has the AA host
    /// plus `n` insiders; Case II has the `n` domains.
    #[must_use]
    pub fn parties(&self) -> usize {
        match self {
            Scheme::CaseILockbox { n } => n + 1,
            Scheme::CaseIReplicated { n, replicas } => n + replicas,
            Scheme::CaseIIShared { n } | Scheme::CaseIIThreshold { n, .. } => *n,
        }
    }
}

/// Minimum number of compromised parties that exposes the AA's signing
/// capability.
#[must_use]
pub fn min_compromises(scheme: Scheme) -> usize {
    match scheme {
        // One penetration of any host, or one insider — either way, one.
        Scheme::CaseILockbox { .. } | Scheme::CaseIReplicated { .. } => 1,
        Scheme::CaseIIShared { n } => n,
        Scheme::CaseIIThreshold { m, .. } => m,
    }
}

/// Does this specific compromise set expose the key? `compromised` holds
/// party indices: in Case I, index 0 is the AA host and `1..=n` the
/// insiders; in Case II, indices are the domains.
#[must_use]
pub fn exposes(scheme: Scheme, compromised: &[usize]) -> bool {
    match scheme {
        Scheme::CaseILockbox { n } => compromised.iter().any(|&i| i <= n),
        Scheme::CaseIReplicated { n, replicas } => compromised.iter().any(|&i| i < n + replicas),
        Scheme::CaseIIShared { n } => (0..n).all(|d| compromised.contains(&d)),
        Scheme::CaseIIThreshold { m, n } => compromised.iter().filter(|&&i| i < n).count() >= m,
    }
}

/// Closed-form probability of key exposure when each party is independently
/// compromised with probability `q`.
///
/// # Panics
///
/// Panics unless `0 <= q <= 1`.
#[must_use]
pub fn exposure_probability(scheme: Scheme, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    match scheme {
        // 1 - P[nobody falls]: host and n insiders are all targets.
        Scheme::CaseILockbox { n } => 1.0 - (1.0 - q).powi((n + 1) as i32),
        // Every replica is an additional full-key target.
        Scheme::CaseIReplicated { n, replicas } => 1.0 - (1.0 - q).powi((n + replicas) as i32),
        Scheme::CaseIIShared { n } => q.powi(n as i32),
        Scheme::CaseIIThreshold { m, n } => (m..=n)
            .map(|k| {
                let mut c = 1.0f64;
                let kk = k.min(n - k);
                for i in 0..kk {
                    c = c * (n - i) as f64 / (i + 1) as f64;
                }
                c * q.powi(k as i32) * (1.0 - q).powi((n - k) as i32)
            })
            .sum(),
    }
}

/// Monte-Carlo estimate of the exposure probability.
///
/// # Panics
///
/// Panics on invalid `q` or `trials == 0`.
#[must_use]
pub fn simulate_exposure(scheme: Scheme, q: f64, trials: u64, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(trials > 0, "need at least one trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let parties = scheme.parties();
    let mut exposed = 0u64;
    for _ in 0..trials {
        let compromised: Vec<usize> = (0..parties)
            .filter(|_| {
                let roll = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                roll < q
            })
            .collect();
        if exposes(scheme, &compromised) {
            exposed += 1;
        }
    }
    exposed as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_compromises_match_paper() {
        assert_eq!(min_compromises(Scheme::CaseILockbox { n: 3 }), 1);
        assert_eq!(min_compromises(Scheme::CaseIIShared { n: 3 }), 3);
        assert_eq!(min_compromises(Scheme::CaseIIThreshold { m: 2, n: 3 }), 2);
    }

    #[test]
    fn exposure_sets() {
        let case1 = Scheme::CaseILockbox { n: 3 };
        assert!(exposes(case1, &[0])); // host penetrated
        assert!(exposes(case1, &[2])); // one insider
        assert!(!exposes(case1, &[])); // nobody

        let case2 = Scheme::CaseIIShared { n: 3 };
        assert!(!exposes(case2, &[0, 1]));
        assert!(exposes(case2, &[0, 1, 2]));

        let thresh = Scheme::CaseIIThreshold { m: 2, n: 3 };
        assert!(!exposes(thresh, &[1]));
        assert!(exposes(thresh, &[0, 2]));
    }

    #[test]
    fn closed_forms() {
        // Case I with n=3, q=0.1: 1 - 0.9^4 = 0.3439
        let p1 = exposure_probability(Scheme::CaseILockbox { n: 3 }, 0.1);
        assert!((p1 - 0.3439).abs() < 1e-10);
        // Case II: 0.1^3 = 0.001
        let p2 = exposure_probability(Scheme::CaseIIShared { n: 3 }, 0.1);
        assert!((p2 - 0.001).abs() < 1e-12);
        // The paper's headline: shared keys cut the exposure probability by
        // orders of magnitude.
        assert!(p1 / p2 > 300.0);
    }

    #[test]
    fn threshold_sits_between() {
        let q = 0.2;
        let case1 = exposure_probability(Scheme::CaseILockbox { n: 5 }, q);
        let t3 = exposure_probability(Scheme::CaseIIThreshold { m: 3, n: 5 }, q);
        let full = exposure_probability(Scheme::CaseIIShared { n: 5 }, q);
        assert!(case1 > t3, "lockbox is worst");
        assert!(t3 > full, "n-of-n is best");
    }

    #[test]
    fn simulation_close_to_closed_form() {
        for scheme in [
            Scheme::CaseILockbox { n: 3 },
            Scheme::CaseIIShared { n: 3 },
            Scheme::CaseIIThreshold { m: 2, n: 3 },
        ] {
            let q = 0.3;
            let a = exposure_probability(scheme, q);
            let s = simulate_exposure(scheme, q, 60_000, 9);
            assert!((a - s).abs() < 0.01, "{scheme:?}: {a} vs {s}");
        }
    }

    #[test]
    fn replication_amplifies_case1_liability() {
        // The paper's §2.2 parenthetical, quantified: more replicas, more
        // exposure — monotone in the replica count.
        let q = 0.05;
        let base = exposure_probability(Scheme::CaseILockbox { n: 3 }, q);
        let mut prev = base;
        for replicas in 2..=5 {
            let p = exposure_probability(Scheme::CaseIReplicated { n: 3, replicas }, q);
            assert!(
                p > prev,
                "{replicas} replicas must be worse than {}",
                replicas - 1
            );
            prev = p;
        }
        // And always at least one compromise away.
        assert_eq!(
            min_compromises(Scheme::CaseIReplicated { n: 3, replicas: 4 }),
            1
        );
        // Monte Carlo agrees.
        let scheme = Scheme::CaseIReplicated { n: 3, replicas: 3 };
        let a = exposure_probability(scheme, q);
        let s = simulate_exposure(scheme, q, 60_000, 11);
        assert!((a - s).abs() < 0.01);
    }

    #[test]
    fn boundary_probabilities() {
        assert_eq!(
            exposure_probability(Scheme::CaseIIShared { n: 3 }, 0.0),
            0.0
        );
        assert_eq!(
            exposure_probability(Scheme::CaseIIShared { n: 3 }, 1.0),
            1.0
        );
        assert_eq!(
            exposure_probability(Scheme::CaseILockbox { n: 3 }, 0.0),
            0.0
        );
    }
}
