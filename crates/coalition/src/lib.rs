//! The coalition system of Figure 1: autonomous domains with their own CAs,
//! a jointly-administered Attribute Authority whose private key is shared
//! among the domains, and a coalition server that verifies joint access
//! requests both cryptographically and logically.
//!
//! * [`domain`] — member domains, their identity CAs and users.
//! * [`aa`] — the coalition AA (Case II, shared key) and the Case I
//!   baseline (conventional key in a hardware lockbox).
//! * [`server`] — the coalition server `P`: reference monitor combining
//!   signature verification with the §4.3 authorization protocol, plus an
//!   audit log. Supports a revocation-aware verification cache ([`cache`])
//!   and multi-worker batch verification.
//! * [`request`] — joint access requests: the requestor/co-signer assembly
//!   of Figure 2(b).
//! * [`scenario`] — one-call construction of the full Figure 1 scenario.
//! * [`dynamics`] — coalition joins/leaves: re-keying the AA and mass
//!   revocation/re-issue (§6).
//! * [`availability`] — m-of-n availability analysis (§3.3, experiment E6).
//! * [`liability`] — trust-liability attack simulation, Case I vs Case II
//!   (§2.2, experiment E7).
//! * [`replication`] — primary→replica WAL log shipping over `jaap-net`
//!   with fencing terms, snapshot + tail catch-up, and failover by
//!   promoting a replica through the recovery replay path.
//! * [`concurrent`] — the read/write split: epoch-versioned immutable
//!   decision snapshots read lock-free by decision workers; all mutations
//!   through a single writer that publishes a new epoch.
//! * [`shard`] — `ShardedCoalition`: disjoint object/group namespaces
//!   partitioned across N concurrent shards, with cross-shard admission
//!   fan-out and per-shard instruments.
//! * [`pool`] — the persistent worker pool behind `verify_batch` and the
//!   sharded decision fan-out (replaces per-call `std::thread::scope`).
//!
//! # Quickstart
//!
//! ```
//! use jaap_coalition::scenario::CoalitionBuilder;
//!
//! # fn main() -> Result<(), jaap_coalition::CoalitionError> {
//! let mut coalition = CoalitionBuilder::new()
//!     .domains(&["D1", "D2", "D3"])
//!     .key_bits(192)
//!     .seed(7)
//!     .build()?;
//!
//! // Figure 2(b): a write needs 2-of-3 user signatures.
//! let granted = coalition.request_write(&["User_D1", "User_D2"])?;
//! assert!(granted.granted);
//! let denied = coalition.request_write(&["User_D1"])?;
//! assert!(!denied.granted);
//! # Ok(())
//! # }
//! ```

pub mod aa;
pub mod availability;
pub mod cache;
pub mod concurrent;
pub mod domain;
pub mod dynamics;
pub mod journal;
pub mod liability;
pub mod pool;
pub mod replication;
pub mod request;
pub mod scenario;
pub mod server;
pub mod shard;

use jaap_crypto::CryptoError;
use jaap_pki::PkiError;

/// Errors raised by coalition operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoalitionError {
    /// Underlying cryptography failed.
    Crypto(CryptoError),
    /// Certificate machinery failed.
    Pki(PkiError),
    /// Coalition-level misconfiguration (unknown user, missing domain, ...).
    Config(String),
    /// The durable journal failed (storage error, undecodable record).
    Journal(String),
    /// The persistent certificate store failed.
    Store(String),
    /// The server is fail-stopped: a durability-path write (journal append
    /// or cert-store put) failed after possibly reaching the medium, so
    /// in-memory state can no longer be trusted to match the durable log.
    /// Sticky until [`server::CoalitionServer::recover`] replays the
    /// durable prefix into a fresh server (fsyncgate semantics: a failed
    /// fsync is never retried).
    JournalPoisoned(String),
}

impl core::fmt::Display for CoalitionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoalitionError::Crypto(e) => write!(f, "crypto: {e}"),
            CoalitionError::Pki(e) => write!(f, "pki: {e}"),
            CoalitionError::Config(m) => write!(f, "configuration: {m}"),
            CoalitionError::Journal(m) => write!(f, "journal: {m}"),
            CoalitionError::Store(m) => write!(f, "store: {m}"),
            CoalitionError::JournalPoisoned(m) => {
                write!(f, "server poisoned (recover() to resume): {m}")
            }
        }
    }
}

impl std::error::Error for CoalitionError {}

impl From<CryptoError> for CoalitionError {
    fn from(e: CryptoError) -> Self {
        CoalitionError::Crypto(e)
    }
}

impl From<PkiError> for CoalitionError {
    fn from(e: PkiError) -> Self {
        CoalitionError::Pki(e)
    }
}

impl From<jaap_store::StoreError> for CoalitionError {
    fn from(e: jaap_store::StoreError) -> Self {
        CoalitionError::Store(e.to_string())
    }
}

impl From<jaap_wal::WalError> for CoalitionError {
    fn from(e: jaap_wal::WalError) -> Self {
        CoalitionError::Journal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: CoalitionError = CryptoError::SelfCheckFailed.into();
        assert!(e.to_string().starts_with("crypto:"));
        let e: CoalitionError = PkiError::UnknownIssuer("X".into()).into();
        assert!(e.to_string().starts_with("pki:"));
        assert!(CoalitionError::Config("bad".into())
            .to_string()
            .contains("bad"));
    }
}
