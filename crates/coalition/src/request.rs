//! Joint access requests: assembly by a requestor with co-signers
//! (Figure 2(b)).
//!
//! > "When multiple principals send a joint access request, all principals
//! > making the request must sign the request before it is sent to the
//! > server. The principal requesting the operation is called the requestor
//! > while the principal(s) attesting the request is called the
//! > co-signer(s). The requestor generates a request, obtains all necessary
//! > signatures from the co-signers and then sends the request to Server P."

use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_crypto::rsa::RsaSignature;
use jaap_pki::attribute::{AttributeCertificate, ThresholdAttributeCertificate};
use jaap_pki::encoding::Encoder;
use jaap_pki::IdentityCertificate;

use crate::domain::UserAgent;
use crate::CoalitionError;

/// The canonical bytes a signer signs for an access statement:
/// `Pᵢ says_{tᵢ} "op" O`.
#[must_use]
pub fn statement_bytes(principal: &str, op: &Operation, at: Time) -> Vec<u8> {
    let mut e = Encoder::new("jaap-access-statement-v1");
    e.put_str(principal)
        .put_str(&op.action)
        .put_str(&op.object)
        .put_i64(at.0);
    e.finish()
}

/// One signer's component of a joint request (Message 1-4 on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStatement {
    /// The claimed signer.
    pub principal: String,
    /// Statement time on the signer's clock.
    pub at: Time,
    /// Signature over [`statement_bytes`].
    pub signature: RsaSignature,
}

/// A joint access request as sent to the coalition server.
#[derive(Debug, Clone)]
pub struct JointAccessRequest {
    /// Identity certificates of the signers (Messages 1-1, 1-2).
    pub identity_certs: Vec<IdentityCertificate>,
    /// Threshold attribute certificates (Message 1-3).
    pub threshold_certs: Vec<ThresholdAttributeCertificate>,
    /// Single-subject attribute certificates (if any).
    pub attribute_certs: Vec<AttributeCertificate>,
    /// The signed statements (Message 1-4).
    pub statements: Vec<WireStatement>,
    /// The operation.
    pub operation: Operation,
    /// Submission time `t1`.
    pub at: Time,
    /// Optional wall-clock deadline budget. The server checks remaining
    /// budget at phase boundaries (pre-crypto, pre-logic, pre-commit) and
    /// sheds the request with a typed `DeadlineExceeded` outcome once it
    /// expires — work the client has given up on is not worth finishing.
    /// Not part of [`JointAccessRequest::digest`]: the deadline is delivery
    /// metadata, not request identity, so a retry with a fresh budget still
    /// hits the replay window.
    pub deadline: Option<std::time::Instant>,
}

impl JointAccessRequest {
    /// Returns a copy of this request carrying `deadline`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl JointAccessRequest {
    /// A canonical digest of the request, used by the server to recognize
    /// duplicate deliveries (network-level retries) of the *same* request.
    /// Two requests with the same signers, statements, operation, and
    /// submission time digest identically; a fresh request — even for the
    /// same operation — differs in `at` or in its signatures.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut e = Encoder::new("jaap-joint-request-v1");
        e.put_str(&self.operation.action)
            .put_str(&self.operation.object)
            .put_i64(self.at.0)
            .put_list(self.statements.len());
        for stmt in &self.statements {
            e.put_str(&stmt.principal)
                .put_i64(stmt.at.0)
                .put_str(&stmt.signature.value().to_hex());
        }
        jaap_crypto::sha256::hex(&jaap_crypto::Sha256::digest(&e.finish()))
    }
}

/// Assembles a joint access request: the first user is the requestor, the
/// rest are co-signers; everyone signs the same statement bytes.
///
/// # Errors
///
/// Propagates signing failures.
pub fn assemble(
    signers: &[&UserAgent],
    identity_certs: Vec<IdentityCertificate>,
    threshold_certs: Vec<ThresholdAttributeCertificate>,
    attribute_certs: Vec<AttributeCertificate>,
    operation: Operation,
    at: Time,
) -> Result<JointAccessRequest, CoalitionError> {
    let mut statements = Vec::with_capacity(signers.len());
    for user in signers {
        let body = statement_bytes(user.name(), &operation, at);
        let signature = user.sign(&body)?;
        statements.push(WireStatement {
            principal: user.name().to_string(),
            at,
            signature,
        });
    }
    Ok(JointAccessRequest {
        identity_certs,
        threshold_certs,
        attribute_certs,
        statements,
        operation,
        at,
        deadline: None,
    })
}

/// Wire messages for networked request assembly.
#[derive(Debug, Clone)]
pub enum AssemblyMsg {
    /// Requestor → co-signer: "please attest this operation at this time".
    CosignRequest {
        /// The operation to attest.
        action: String,
        /// The object.
        object: String,
        /// Statement time.
        at: Time,
    },
    /// Co-signer → requestor: the attestation.
    Attestation {
        /// The co-signer's name.
        principal: String,
        /// Signature over [`statement_bytes`].
        signature: RsaSignature,
    },
}

/// Assembles a joint request over the simulated network, exactly as the
/// paper narrates Figure 2(b): "The requestor generates a request, obtains
/// all necessary signatures from the co-signers and then sends the request
/// to Server P." Party 0 of `signers` is the requestor.
///
/// # Errors
///
/// Propagates signing and network failures.
pub fn assemble_over_network(
    signers: &[&UserAgent],
    identity_certs: Vec<IdentityCertificate>,
    threshold_certs: Vec<ThresholdAttributeCertificate>,
    operation: Operation,
    at: Time,
) -> Result<(JointAccessRequest, jaap_net::NetworkStats), CoalitionError> {
    use jaap_net::{Network, PartyId};
    if signers.is_empty() {
        return Err(CoalitionError::Config("no signers".into()));
    }
    let n = signers.len();
    let (endpoints, handle) = Network::<AssemblyMsg>::mesh(n.max(2));
    let op = operation.clone();
    let results = jaap_net::run_parties(endpoints, |mut ep| {
        let me = ep.id().0;
        if me >= n {
            return Ok(None); // padding party on the 1-signer degenerate mesh
        }
        let user = signers[me];
        if me == 0 {
            // Requestor: sign own statement, collect attestations.
            let body = statement_bytes(user.name(), &op, at);
            let mut statements = vec![WireStatement {
                principal: user.name().to_string(),
                at,
                signature: user.sign(&body)?,
            }];
            for j in 1..n {
                ep.send(
                    PartyId(j),
                    AssemblyMsg::CosignRequest {
                        action: op.action.clone(),
                        object: op.object.clone(),
                        at,
                    },
                )
                .map_err(|e| CoalitionError::Config(format!("network: {e}")))?;
            }
            for j in 1..n {
                let msg = ep
                    .recv_from(PartyId(j))
                    .map_err(|e| CoalitionError::Config(format!("network: {e}")))?;
                let AssemblyMsg::Attestation {
                    principal,
                    signature,
                } = msg
                else {
                    return Err(CoalitionError::Config("expected an attestation".into()));
                };
                statements.push(WireStatement {
                    principal,
                    at,
                    signature,
                });
            }
            Ok(Some(statements))
        } else {
            // Co-signer: attest the exact operation the requestor named.
            let msg = ep
                .recv_from(PartyId(0))
                .map_err(|e| CoalitionError::Config(format!("network: {e}")))?;
            let AssemblyMsg::CosignRequest { action, object, at } = msg else {
                return Err(CoalitionError::Config("expected a cosign request".into()));
            };
            let op = Operation::new(action, object);
            let body = statement_bytes(user.name(), &op, at);
            let signature = user.sign(&body)?;
            ep.send(
                PartyId(0),
                AssemblyMsg::Attestation {
                    principal: user.name().to_string(),
                    signature,
                },
            )
            .map_err(|e| CoalitionError::Config(format!("network: {e}")))?;
            Ok(None)
        }
    });
    let mut statements = None;
    for r in results {
        if let Some(s) = r? {
            statements = Some(s);
        }
    }
    let statements =
        statements.ok_or_else(|| CoalitionError::Config("requestor produced nothing".into()))?;
    Ok((
        JointAccessRequest {
            identity_certs,
            threshold_certs,
            attribute_certs: vec![],
            statements,
            operation,
            at,
            deadline: None,
        },
        handle.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn statement_bytes_domain_separated_and_positional() {
        let op = Operation::new("write", "Object O");
        let a = statement_bytes("U1", &op, Time(3));
        let b = statement_bytes("U2", &op, Time(3));
        let c = statement_bytes("U1", &op, Time(4));
        assert_ne!(a, b);
        assert_ne!(a, c);
        let op2 = Operation::new("read", "Object O");
        assert_ne!(a, statement_bytes("U1", &op2, Time(3)));
    }

    #[test]
    fn assembled_statements_verify_against_signer_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let u1 = UserAgent::new("U1", "D1", &mut rng, 192).expect("u1");
        let u2 = UserAgent::new("U2", "D2", &mut rng, 192).expect("u2");
        let op = Operation::new("write", "O");
        let req =
            assemble(&[&u1, &u2], vec![], vec![], vec![], op.clone(), Time(5)).expect("assemble");
        assert_eq!(req.statements.len(), 2);
        for (stmt, user) in req.statements.iter().zip([&u1, &u2]) {
            let body = statement_bytes(&stmt.principal, &op, stmt.at);
            assert!(user.public().verify(&body, &stmt.signature));
        }
    }

    #[test]
    fn networked_assembly_matches_local() {
        let mut rng = StdRng::seed_from_u64(3);
        let u1 = UserAgent::new("U1", "D1", &mut rng, 192).expect("u1");
        let u2 = UserAgent::new("U2", "D2", &mut rng, 192).expect("u2");
        let u3 = UserAgent::new("U3", "D3", &mut rng, 192).expect("u3");
        let op = Operation::new("write", "O");
        let (req, stats) =
            assemble_over_network(&[&u1, &u2, &u3], vec![], vec![], op.clone(), Time(7))
                .expect("assemble");
        // 2 cosign requests + 2 attestations.
        assert_eq!(stats.messages_sent, 4);
        assert_eq!(req.statements.len(), 3);
        for (stmt, user) in req.statements.iter().zip([&u1, &u2, &u3]) {
            let body = statement_bytes(&stmt.principal, &op, Time(7));
            assert!(
                user.public().verify(&body, &stmt.signature),
                "{}",
                stmt.principal
            );
        }
    }

    #[test]
    fn networked_assembly_single_signer() {
        let mut rng = StdRng::seed_from_u64(4);
        let u1 = UserAgent::new("U1", "D1", &mut rng, 192).expect("u1");
        let (req, _) =
            assemble_over_network(&[&u1], vec![], vec![], Operation::new("read", "O"), Time(7))
                .expect("assemble");
        assert_eq!(req.statements.len(), 1);
    }

    #[test]
    fn cross_signer_signatures_do_not_verify() {
        let mut rng = StdRng::seed_from_u64(2);
        let u1 = UserAgent::new("U1", "D1", &mut rng, 192).expect("u1");
        let u2 = UserAgent::new("U2", "D2", &mut rng, 192).expect("u2");
        let op = Operation::new("write", "O");
        let req = assemble(&[&u1], vec![], vec![], vec![], op.clone(), Time(5)).expect("assemble");
        let body = statement_bytes("U1", &op, Time(5));
        assert!(!u2.public().verify(&body, &req.statements[0].signature));
    }
}
