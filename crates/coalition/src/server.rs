//! The coalition server `P`: a reference monitor combining cryptographic
//! verification with the §4.3 authorization protocol, plus an audit log.
//!
//! Verification pipeline for a joint access request:
//!
//! 1. **Crypto** — verify every certificate signature against the trusted
//!    keys ([`jaap_pki::TrustStore`]) and every request-statement signature
//!    against the key certified for its signer.
//! 2. **Logic** — idealize the verified certificates and run the four-step
//!    authorization protocol ([`jaap_core::protocol::authorize`]), yielding
//!    a machine-checkable derivation.
//! 3. **ACL** — the object's ACL entry `(G, op)` is the final side
//!    condition.
//!
//! The logic step can be disabled ([`CoalitionServer::set_logic_checking`])
//! for the D3 ablation (crypto-only reference monitor), which measures what
//! the derivation layer costs and what it adds.

use jaap_core::engine::Engine;
use jaap_core::protocol::{self, AccessRequest, Acl, Operation, SignedStatement};
use jaap_core::syntax::Time;
use jaap_core::Derivation;
use jaap_crypto::rsa::RsaCiphertext;
use jaap_pki::attribute::AttributeRevocation;
use jaap_pki::{key_name, IdentityRevocation, TrustStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::request::{statement_bytes, JointAccessRequest};
use crate::CoalitionError;

/// A jointly owned coalition object: a name, an ACL, and a write-version
/// counter (contents are out of scope; policy is the point).
#[derive(Debug, Clone)]
pub struct CoalitionObject {
    /// Object name (e.g. `"Object O"`).
    pub name: String,
    /// The object's ACL.
    pub acl: Acl,
    /// Number of granted writes (version).
    pub version: u64,
    /// The object's contents (returned, encrypted, on granted reads).
    pub content: Vec<u8>,
}

/// One audit-log line.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Server time of the decision.
    pub at: Time,
    /// The signers named in the request.
    pub principals: Vec<String>,
    /// The operation.
    pub operation: Operation,
    /// Decision.
    pub granted: bool,
    /// Denial detail (empty when granted).
    pub detail: String,
    /// Signing-session retry trace, when the decision followed a degraded
    /// networked signing attempt (timeouts, failovers, re-requests).
    pub retry_trace: Option<String>,
}

/// The server's decision on a joint access request.
#[derive(Debug, Clone)]
pub struct ServerDecision {
    /// Whether access was granted.
    pub granted: bool,
    /// Denial detail when refused.
    pub detail: Option<String>,
    /// The logical proof (present iff granted with logic checking on).
    pub derivation: Option<Derivation>,
    /// Axiom applications spent (0 with logic checking off).
    pub axiom_applications: usize,
    /// Number of RSA signature verifications performed.
    pub signature_checks: usize,
    /// For granted reads: the object contents encrypted under the
    /// requestor's certified key (Figure 2(d): `Response: {Object O}_Ku3`).
    pub response: Option<RsaCiphertext>,
    /// True when the request was denied not on policy grounds but because
    /// the coalition could not complete a joint signing session (fewer than
    /// the required domains were reachable). Such a request may succeed if
    /// retried later — a policy denial will not.
    pub unavailable: bool,
}

/// The coalition server.
#[derive(Debug)]
pub struct CoalitionServer {
    name: String,
    store: TrustStore,
    engine: Engine,
    objects: Vec<CoalitionObject>,
    audit: Vec<AuditEntry>,
    logic_checking: bool,
    /// Recency policy for revocation information (Stubblebine–Wright):
    /// when set, requests are refused unless a CRL no older than the window
    /// has been admitted.
    revocation_recency: Option<i64>,
    last_crl: Option<(u64, Time)>,
    /// When on, duplicate deliveries of the same request (by canonical
    /// digest) return the original decision instead of being re-processed.
    replay_protection: bool,
    /// Digest → decision cache backing replay protection.
    seen: std::collections::HashMap<String, ServerDecision>,
    rng: StdRng,
}

impl CoalitionServer {
    /// Creates the server with a trust store; the engine's initial beliefs
    /// are derived from it (Statements 1–11).
    #[must_use]
    pub fn new(name: impl Into<String>, store: TrustStore) -> Self {
        let name = name.into();
        let engine = Engine::new(name.as_str(), store.assumptions());
        CoalitionServer {
            name,
            store,
            engine,
            objects: Vec::new(),
            audit: Vec::new(),
            logic_checking: true,
            revocation_recency: None,
            last_crl: None,
            replay_protection: false,
            seen: std::collections::HashMap::new(),
            rng: StdRng::seed_from_u64(0x5EC5EC),
        }
    }

    /// The server's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a jointly owned object with its ACL.
    pub fn add_object(&mut self, name: impl Into<String>, acl: Acl) -> &mut Self {
        self.objects.push(CoalitionObject {
            name: name.into(),
            acl,
            version: 0,
            content: Vec::new(),
        });
        self
    }

    /// Looks up an object.
    #[must_use]
    pub fn object(&self, name: &str) -> Option<&CoalitionObject> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Replaces an object's ACL (policy-object update — itself subject to
    /// a granted `set-policy` request at the caller's layer).
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown object.
    pub fn set_acl(&mut self, name: &str, acl: Acl) -> Result<(), CoalitionError> {
        let obj = self
            .objects
            .iter_mut()
            .find(|o| o.name == name)
            .ok_or_else(|| CoalitionError::Config(format!("unknown object {name}")))?;
        obj.acl = acl;
        Ok(())
    }

    /// Sets an object's contents.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown object.
    pub fn set_content(&mut self, name: &str, content: Vec<u8>) -> Result<(), CoalitionError> {
        let obj = self
            .objects
            .iter_mut()
            .find(|o| o.name == name)
            .ok_or_else(|| CoalitionError::Config(format!("unknown object {name}")))?;
        obj.content = content;
        Ok(())
    }

    /// Advances the server clock.
    pub fn advance_clock(&mut self, to: Time) {
        self.engine.advance_clock(to);
    }

    /// The server's current time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Enables/disables the logic layer (D3 ablation).
    pub fn set_logic_checking(&mut self, on: bool) {
        self.logic_checking = on;
    }

    /// Enables/disables replay protection: with it on, a duplicate delivery
    /// of the *same* request (a network-level retry, recognized by
    /// [`JointAccessRequest::digest`]) returns the original decision without
    /// a second audit entry or version increment. Off by default so
    /// benchmarks measure real verification work.
    pub fn set_replay_protection(&mut self, on: bool) {
        self.replay_protection = on;
    }

    /// Requires revocation information (a CRL) no older than `window`
    /// ticks before any request is granted — §4.3: "It is essential to
    /// verify the most recent available revocation information before
    /// granting access."
    pub fn set_revocation_recency(&mut self, window: i64) {
        self.revocation_recency = Some(window);
    }

    /// Admits a CRL: verifies it, rejects sequence rollback, feeds every
    /// entry to the engine, and refreshes the recency anchor.
    ///
    /// # Errors
    ///
    /// Propagates verification failures; [`CoalitionError::Config`] on a
    /// stale sequence number.
    pub fn admit_crl(&mut self, crl: &jaap_pki::Crl) -> Result<(), CoalitionError> {
        if let Some((seq, _)) = self.last_crl {
            if crl.sequence <= seq {
                return Err(CoalitionError::Config(format!(
                    "CRL sequence rollback: have #{seq}, got #{}",
                    crl.sequence
                )));
            }
        }
        let messages = self.store.idealize_crl(crl)?;
        for msg in &messages {
            self.engine
                .admit_certificate(msg)
                .map_err(|e| CoalitionError::Config(format!("CRL entry not admitted: {e}")))?;
        }
        self.last_crl = Some((crl.sequence, crl.timestamp));
        Ok(())
    }

    /// The audit log.
    #[must_use]
    pub fn audit_log(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Direct engine access (used by soundness integration tests).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Admits an attribute revocation (from the RA): verifies it and feeds
    /// the idealization to the engine (believe-until-revoked).
    ///
    /// # Errors
    ///
    /// Propagates verification/idealization failures.
    pub fn admit_attribute_revocation(
        &mut self,
        rev: &AttributeRevocation,
    ) -> Result<(), CoalitionError> {
        let msg = self.store.idealize_attribute_revocation(rev)?;
        self.engine
            .admit_certificate(&msg)
            .map_err(|e| CoalitionError::Config(format!("revocation not admitted: {e}")))?;
        Ok(())
    }

    /// Admits an identity revocation from a domain CA.
    ///
    /// # Errors
    ///
    /// Propagates verification/idealization failures.
    pub fn admit_identity_revocation(
        &mut self,
        rev: &IdentityRevocation,
    ) -> Result<(), CoalitionError> {
        let msg = self.store.idealize_identity_revocation(rev)?;
        self.engine
            .admit_certificate(&msg)
            .map_err(|e| CoalitionError::Config(format!("revocation not admitted: {e}")))?;
        Ok(())
    }

    /// Records a denial caused by coalition-side unavailability (a joint
    /// signing session that could not assemble its quorum), carrying the
    /// session's retry trace into the audit log. Returns the corresponding
    /// [`ServerDecision`] with `unavailable` set.
    pub fn record_unavailable(
        &mut self,
        principals: Vec<String>,
        operation: Operation,
        detail: impl Into<String>,
        retry_trace: Option<String>,
    ) -> ServerDecision {
        let detail = detail.into();
        self.audit.push(AuditEntry {
            at: self.engine.now(),
            principals,
            operation,
            granted: false,
            detail: detail.clone(),
            retry_trace,
        });
        ServerDecision {
            granted: false,
            detail: Some(detail),
            derivation: None,
            axiom_applications: 0,
            signature_checks: 0,
            response: None,
            unavailable: true,
        }
    }

    /// Handles a joint access request end to end.
    pub fn handle_request(&mut self, req: &JointAccessRequest) -> ServerDecision {
        let digest = if self.replay_protection {
            let digest = req.digest();
            if let Some(cached) = self.seen.get(&digest) {
                // Duplicate delivery: same decision, no second audit entry,
                // no second version increment.
                return cached.clone();
            }
            Some(digest)
        } else {
            None
        };
        let mut signature_checks = 0usize;
        let decision = self.verify_request(req, &mut signature_checks);
        let (granted, detail, derivation, axioms) = match decision {
            Ok((derivation, axioms)) => (true, None, derivation, axioms),
            Err(msg) => (false, Some(msg), None, 0),
        };
        if granted && req.operation.action == "write" {
            if let Some(obj) = self
                .objects
                .iter_mut()
                .find(|o| o.name == req.operation.object)
            {
                obj.version += 1;
            }
        }
        // Figure 2(d): a granted read returns the object encrypted under
        // the requestor's certified public key.
        let mut response = None;
        if granted && req.operation.action == "read" {
            let reader_key = req.statements.first().and_then(|s| {
                req.identity_certs
                    .iter()
                    .find(|c| c.subject == s.principal)
                    .map(|c| c.subject_key.clone())
            });
            if let (Some(key), Some(obj)) = (
                reader_key,
                self.objects.iter().find(|o| o.name == req.operation.object),
            ) {
                response = key.encrypt(&mut self.rng, &obj.content).ok();
            }
        }
        self.audit.push(AuditEntry {
            at: self.engine.now(),
            principals: req.statements.iter().map(|s| s.principal.clone()).collect(),
            operation: req.operation.clone(),
            granted,
            detail: detail.clone().unwrap_or_default(),
            retry_trace: None,
        });
        let decision = ServerDecision {
            granted,
            detail,
            derivation,
            axiom_applications: axioms,
            signature_checks,
            response,
            unavailable: false,
        };
        if let Some(digest) = digest {
            self.seen.insert(digest, decision.clone());
        }
        decision
    }

    fn verify_request(
        &mut self,
        req: &JointAccessRequest,
        signature_checks: &mut usize,
    ) -> Result<(Option<Derivation>, usize), String> {
        // Recency of revocation information (Stubblebine–Wright).
        if let Some(window) = self.revocation_recency {
            let fresh_enough = self
                .last_crl
                .is_some_and(|(_, ts)| self.engine.now().0.saturating_sub(ts.0) <= window);
            if !fresh_enough {
                return Err(format!(
                    "revocation information stale: no CRL within the last {window} ticks"
                ));
            }
        }
        // Crypto step 1: verify and idealize certificates.
        let mut identity_msgs = Vec::new();
        for cert in &req.identity_certs {
            *signature_checks += 1;
            identity_msgs.push(
                self.store
                    .idealize_identity(cert)
                    .map_err(|e| format!("identity certificate: {e}"))?,
            );
        }
        let mut attribute_msgs = Vec::new();
        for cert in &req.threshold_certs {
            *signature_checks += 1;
            attribute_msgs.push(
                self.store
                    .idealize_threshold_attribute(cert)
                    .map_err(|e| format!("threshold attribute certificate: {e}"))?,
            );
        }
        for cert in &req.attribute_certs {
            *signature_checks += 1;
            attribute_msgs.push(
                self.store
                    .idealize_attribute(cert)
                    .map_err(|e| format!("attribute certificate: {e}"))?,
            );
        }

        // Crypto step 2: verify the request-statement signatures against
        // the keys certified for the signers.
        let mut signed_statements = Vec::new();
        for stmt in &req.statements {
            let cert = req
                .identity_certs
                .iter()
                .find(|c| c.subject == stmt.principal)
                .ok_or_else(|| {
                    format!("no identity certificate presented for {}", stmt.principal)
                })?;
            let body = statement_bytes(&stmt.principal, &req.operation, stmt.at);
            *signature_checks += 1;
            if !cert.subject_key.verify(&body, &stmt.signature) {
                return Err(format!(
                    "request signature by {} does not verify",
                    stmt.principal
                ));
            }
            signed_statements.push(SignedStatement::new(
                stmt.principal.as_str(),
                key_name(&cert.subject_key),
                &req.operation,
                stmt.at,
            ));
        }

        // ACL for the object.
        let acl = self
            .object(&req.operation.object)
            .map(|o| o.acl.clone())
            .ok_or_else(|| format!("unknown object {}", req.operation.object))?;

        if !self.logic_checking {
            // D3 ablation: crypto-only monitor does a direct structural
            // check: some threshold cert grants an ACL group and enough
            // distinct signers are members.
            return crypto_only_decision(req, &acl).map(|()| (None, 0));
        }

        // Logic step: the four-step §4.3 protocol.
        let request = AccessRequest {
            identity_certs: identity_msgs,
            attribute_certs: attribute_msgs,
            signed_statements,
            operation: req.operation.clone(),
            at: req.at,
        };
        let decision = protocol::authorize(&mut self.engine, &request, &acl);
        if decision.granted {
            Ok((decision.derivation, decision.axiom_applications))
        } else {
            Err(decision
                .reason
                .map_or_else(|| "denied".to_string(), |r| r.to_string()))
        }
    }
}

/// The crypto-only baseline monitor (no derivations, no revocation
/// reasoning — exactly what the ablation measures the absence of).
fn crypto_only_decision(req: &JointAccessRequest, acl: &Acl) -> Result<(), String> {
    for cert in &req.threshold_certs {
        if !acl.permits(&cert.group, &req.operation.action) {
            continue;
        }
        if !(cert.validity.contains(req.at)) {
            continue;
        }
        let distinct_signers = cert
            .subject
            .members
            .iter()
            .filter(|(name, _)| req.statements.iter().any(|s| &s.principal == name))
            .count();
        if distinct_signers >= cert.subject.m {
            return Ok(());
        }
    }
    for cert in &req.attribute_certs {
        if acl.permits(&cert.group, &req.operation.action)
            && cert.validity.contains(req.at)
            && req.statements.iter().any(|s| s.principal == cert.subject)
        {
            return Ok(());
        }
    }
    Err("crypto-only monitor: no certificate authorizes the request".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CoalitionBuilder;

    #[test]
    fn scenario_server_grants_and_audits() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(1)
            .build()
            .expect("build");
        let d = c.request_write(&["User_D1", "User_D2"]).expect("request");
        assert!(d.granted);
        assert!(d.signature_checks >= 5); // 2 id certs + 1 AC + 2 statements
        assert!(d.axiom_applications > 0);
        let server = c.server();
        assert_eq!(server.audit_log().len(), 1);
        assert!(server.audit_log()[0].granted);
        assert_eq!(server.object("Object O").expect("obj").version, 1);
    }

    #[test]
    fn denied_request_leaves_version_unchanged() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(2)
            .build()
            .expect("build");
        let d = c.request_write(&["User_D1"]).expect("request");
        assert!(!d.granted);
        assert_eq!(c.server().object("Object O").expect("obj").version, 0);
        assert!(!c.server().audit_log()[0].granted);
    }

    #[test]
    fn crypto_only_ablation_grants_but_produces_no_proof() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(3)
            .build()
            .expect("build");
        c.server_mut().set_logic_checking(false);
        let d = c.request_write(&["User_D1", "User_D3"]).expect("request");
        assert!(d.granted);
        assert!(d.derivation.is_none());
        assert_eq!(d.axiom_applications, 0);
        let denied = c.request_write(&["User_D2"]).expect("request");
        assert!(!denied.granted);
    }

    #[test]
    fn unknown_object_denied() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(4)
            .build()
            .expect("build");
        let d = c
            .request_operation(&["User_D1", "User_D2"], Operation::new("write", "Ghost"))
            .expect("request");
        assert!(!d.granted);
        assert!(d.detail.expect("detail").contains("unknown object"));
    }
}
