//! The coalition server `P`: a reference monitor combining cryptographic
//! verification with the §4.3 authorization protocol, plus an audit log.
//!
//! Verification pipeline for a joint access request:
//!
//! 1. **Crypto** — verify every certificate signature against the trusted
//!    keys ([`jaap_pki::TrustStore`]) and every request-statement signature
//!    against the key certified for its signer. This phase is a pure
//!    function of the trust store and the request, so it can be memoized
//!    (the optional [`VerifyCache`]) and fanned out across worker threads
//!    ([`CoalitionServer::verify_batch`]).
//! 2. **Logic** — idealize the verified certificates and run the four-step
//!    authorization protocol ([`jaap_core::protocol::authorize`]), yielding
//!    a machine-checkable derivation. This phase mutates the belief engine
//!    and therefore always runs serially, in request order.
//! 3. **ACL** — the object's ACL entry `(G, op)` is the final side
//!    condition.
//!
//! The logic step can be disabled ([`CoalitionServer::set_logic_checking`])
//! for the D3 ablation (crypto-only reference monitor), which measures what
//! the derivation layer costs and what it adds. For the same honesty,
//! decisions and audit entries record how many signature checks were served
//! from the cache rather than verified cryptographically.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use jaap_core::engine::Engine;
use jaap_core::protocol::{self, AccessRequest, Acl, Operation, SignedStatement};
use jaap_core::syntax::Time;
use jaap_core::{Derivation, MemoStats};
use jaap_crypto::batch;
use jaap_crypto::rsa::{RsaCiphertext, RsaPublicKey, RsaSignature};
use jaap_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use jaap_pki::attribute::AttributeRevocation;
use jaap_pki::{key_name, IdentityRevocation, TrustStore};
use jaap_store::CertStore;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::cache::{self, VerifyCache};
use crate::journal::{ConfigKind, DecisionRecord, JournalRecord, ReplayRecord, ServerJournal};
use crate::pool::WorkerPool;
use crate::request::{statement_bytes, JointAccessRequest};
use crate::CoalitionError;

/// A jointly owned coalition object: a name, an ACL, and a write-version
/// counter (contents are out of scope; policy is the point).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalitionObject {
    /// Object name (e.g. `"Object O"`).
    pub name: String,
    /// The object's ACL.
    pub acl: Acl,
    /// Number of granted writes (version).
    pub version: u64,
    /// The object's contents (returned, encrypted, on granted reads).
    pub content: Vec<u8>,
}

/// Why a request was shed without a policy evaluation. The XACML lesson
/// (*The Logic of XACML*): evaluation failure is its own typed outcome —
/// Indeterminate — never conflated with Deny. A shed request may succeed
/// verbatim if retried; a policy denial will not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The in-flight admission gate was full: the server refused to queue
    /// the request rather than let the backlog destroy every deadline.
    Overloaded,
    /// The request's deadline budget ran out at a phase boundary
    /// (pre-crypto, pre-logic, or pre-commit).
    DeadlineExceeded,
    /// The server is fail-stopped: a durability-path write failed and
    /// in-memory state can no longer be trusted to match the durable log.
    JournalPoisoned,
}

/// One audit-log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Server time of the decision.
    pub at: Time,
    /// The signers named in the request.
    pub principals: Vec<String>,
    /// The operation.
    pub operation: Operation,
    /// Decision.
    pub granted: bool,
    /// Denial detail (empty when granted).
    pub detail: String,
    /// How many signature checks were satisfied from the verification
    /// cache instead of being verified cryptographically (0 with the cache
    /// off) — recorded so ablation runs can't silently claim crypto work
    /// that never happened.
    pub cached_checks: usize,
    /// Signing-session retry trace, when the decision followed a degraded
    /// networked signing attempt (timeouts, failovers, re-requests).
    pub retry_trace: Option<String>,
    /// `Some` when the request was shed (overload, deadline, poisoned
    /// journal) rather than evaluated: Indeterminate, distinguishable from
    /// a policy `Deny` in the audit log. Shed lines are volatile — they are
    /// never journaled and do not survive snapshot compaction.
    pub shed: Option<ShedReason>,
}

/// The server's decision on a joint access request.
#[derive(Debug, Clone)]
pub struct ServerDecision {
    /// Whether access was granted.
    pub granted: bool,
    /// Denial detail when refused.
    pub detail: Option<String>,
    /// The logical proof (present iff granted with logic checking on),
    /// shared via [`Arc`] so cloning a decision never copies the tree.
    pub derivation: Option<Arc<Derivation>>,
    /// Axiom applications spent (0 with logic checking off).
    pub axiom_applications: usize,
    /// Number of RSA signature verifications actually performed.
    pub signature_checks: usize,
    /// Number of certificate checks served from the verification cache
    /// (their signatures were verified on an earlier, byte-identical
    /// presentation). `signature_checks + cached_signature_checks` is the
    /// total number of checks the decision rests on.
    pub cached_signature_checks: usize,
    /// For granted reads: the object contents encrypted under the
    /// requestor's certified key (Figure 2(d): `Response: {Object O}_Ku3`).
    pub response: Option<RsaCiphertext>,
    /// True when the request was denied not on policy grounds but because
    /// the coalition could not complete a joint signing session (fewer than
    /// the required domains were reachable). Such a request may succeed if
    /// retried later — a policy denial will not.
    pub unavailable: bool,
    /// `Some` when the request was shed without a policy evaluation
    /// (overload, deadline budget, poisoned journal). Shed decisions are
    /// journal-cheap (no WAL record), never enter the replay window, the
    /// verify cache, or the derivation memo, and always carry
    /// `unavailable = true`: they are Indeterminate, not Deny.
    pub shed: Option<ShedReason>,
}

impl ServerDecision {
    /// Builds a typed shed decision (Indeterminate, not Deny).
    #[must_use]
    pub fn shed(reason: ShedReason, detail: impl Into<String>) -> Self {
        ServerDecision {
            granted: false,
            detail: Some(detail.into()),
            derivation: None,
            axiom_applications: 0,
            signature_checks: 0,
            cached_signature_checks: 0,
            response: None,
            unavailable: true,
            shed: Some(reason),
        }
    }
}

/// The crypto phase's verified artifacts: idealized certificates and the
/// signed statements, ready for the logic engine.
pub(crate) struct CryptoVerified {
    identity_msgs: Vec<jaap_core::syntax::Message>,
    attribute_msgs: Vec<jaap_core::syntax::Message>,
    signed_statements: Vec<SignedStatement>,
}

/// Everything the crypto phase produces for one request, including the
/// check counters for failed verifications (they did real work too).
pub(crate) struct CryptoOutcome {
    pub(crate) signature_checks: usize,
    pub(crate) cached_signature_checks: usize,
    pub(crate) result: Result<CryptoVerified, String>,
}

impl CryptoOutcome {
    pub(crate) fn failed(detail: String) -> Self {
        CryptoOutcome {
            signature_checks: 0,
            cached_signature_checks: 0,
            result: Err(detail),
        }
    }
}

/// Per-request view of the batch pre-pass
/// ([`CoalitionServer::batch_precheck`]): which presented certificates
/// were already vouched — screened by the combined small-exponents
/// checks and confirmed by exact settlement or bisection. Vouchers
/// are positional — the pre-pass inspected the exact artifact at that
/// position — so the per-request phase does no hashing to consult them.
/// A vouched certificate skips its individual verification inside
/// [`crypto_verify`] but still counts toward `signature_checks` (the
/// check happened — in a batch), so decisions and audit lines are
/// byte-identical with batching on or off. Vouched certificates are
/// deliberately **not** inserted into the [`VerifyCache`]: the cache only
/// ever holds certificates that survived an *individual* verification.
/// Request statements are never batched: they are one-shot residues, and
/// with a small public exponent a combined check costs more multiplies
/// than the serial exponentiation it would replace — they take the
/// precomp path (shared Montgomery contexts) instead.
pub(crate) struct CryptoPrecheck {
    /// `id[i]` ⟺ `identity_certs[i]`'s signature batch-verified.
    id: Vec<bool>,
    /// `thr[i]` ⟺ `threshold_certs[i]`'s signature batch-verified.
    thr: Vec<bool>,
    /// `attr[i]` ⟺ `attribute_certs[i]`'s signature batch-verified.
    attr: Vec<bool>,
}

/// Default bound on the replay-protection `seen` map: enough to absorb any
/// realistic retry window while keeping a long-running server's memory flat
/// on an unbounded request stream. Override with
/// [`CoalitionServer::set_replay_protection_capacity`].
pub const DEFAULT_REPLAY_CAPACITY: usize = 1024;

/// Default bound on the audit log: old entries rotate out oldest-first once
/// the log exceeds this many lines, so an unbounded request stream cannot
/// grow the server's memory without bound. Override with
/// [`CoalitionServer::set_audit_capacity`].
pub const DEFAULT_AUDIT_CAPACITY: usize = 8192;

/// One coherent sizing of every bounded structure the server owns —
/// replay window, audit log, verification cache, derivation memo, and the
/// persistent store's cold-tier page budget. The scattered per-structure
/// setters remain, but population-scale runs should size everything
/// through one of these so no single bound silently becomes the
/// working-set bottleneck. [`CapacityConfig::default`] reproduces the
/// historical defaults exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityConfig {
    /// Replay-protection `seen` bound ([`DEFAULT_REPLAY_CAPACITY`]).
    pub replay: usize,
    /// Audit-log bound ([`DEFAULT_AUDIT_CAPACITY`]).
    pub audit: usize,
    /// Verification-cache bound; `None` keeps the crate default
    /// ([`cache::DEFAULT_CACHE_CAPACITY`]).
    pub verify_cache: Option<usize>,
    /// Derivation-memo bound; `None` keeps the engine default (1024).
    pub derivation_memo: Option<usize>,
    /// Cold-tier page budget for an attached [`CertStore`]; `None` keeps
    /// the store's configured budget.
    pub store_cache_pages: Option<usize>,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            replay: DEFAULT_REPLAY_CAPACITY,
            audit: DEFAULT_AUDIT_CAPACITY,
            verify_cache: None,
            derivation_memo: None,
            store_cache_pages: None,
        }
    }
}

impl CapacityConfig {
    /// A sizing tuned for ≥10⁶ certified principals: wide replay and
    /// verify-cache windows so the Zipf-hot population stays warm, a
    /// larger memo, and a bigger (still bounded) cold-tier page budget.
    #[must_use]
    pub fn million_principals() -> Self {
        CapacityConfig {
            replay: 65_536,
            audit: DEFAULT_AUDIT_CAPACITY,
            verify_cache: Some(65_536),
            derivation_memo: Some(65_536),
            store_cache_pages: Some(256),
        }
    }
}

/// Registry handles for the §4.3 pipeline, pre-resolved once when a
/// registry is attached ([`CoalitionServer::set_metrics`]) so the per-request
/// path touches atomics only. With no registry attached the server performs
/// no metrics work at all — not even `Instant::now()` calls.
#[derive(Debug, Clone)]
struct ServerMetrics {
    /// The registry the handles came from (re-used to wire the
    /// verification cache when it is enabled later).
    registry: MetricsRegistry,
    recency_ns: Arc<Histogram>,
    crypto_ns: Arc<Histogram>,
    logic_ns: Arc<Histogram>,
    acl_ns: Arc<Histogram>,
    decision_ns: Arc<Histogram>,
    decisions: Arc<Counter>,
    granted: Arc<Counter>,
    denied: Arc<Counter>,
    replay_hits: Arc<Counter>,
    replay_evictions: Arc<Counter>,
    memo_hits: Arc<Counter>,
    memo_misses: Arc<Counter>,
    memo_evictions: Arc<Counter>,
    memo_invalidations: Arc<Counter>,
    memo_entries: Arc<Gauge>,
    interner_symbols: Arc<Gauge>,
    interner_subjects: Arc<Gauge>,
    interner_messages: Arc<Gauge>,
    interner_formulas: Arc<Gauge>,
    journal_appends: Arc<Counter>,
    journal_bytes: Arc<Counter>,
    journal_snapshots: Arc<Counter>,
    journal_append_ns: Arc<Histogram>,
    audit_evictions: Arc<Counter>,
    crypto_precomp_hits: Arc<Counter>,
    crypto_batch_verifies: Arc<Counter>,
    crypto_batch_fallbacks: Arc<Counter>,
    shed_overloaded: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    shed_poisoned: Arc<Counter>,
    deadline_slack_ns: Arc<Histogram>,
    journal_poisoned: Arc<Gauge>,
}

impl ServerMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        ServerMetrics {
            recency_ns: registry.histogram("server.phase.recency_ns"),
            crypto_ns: registry.histogram("server.phase.crypto_ns"),
            logic_ns: registry.histogram("server.phase.logic_ns"),
            acl_ns: registry.histogram("server.phase.acl_ns"),
            decision_ns: registry.histogram("server.decision_ns"),
            decisions: registry.counter("server.decisions"),
            granted: registry.counter("server.granted"),
            denied: registry.counter("server.denied"),
            replay_hits: registry.counter("server.replay.hits"),
            replay_evictions: registry.counter("server.replay.evictions"),
            memo_hits: registry.counter("server.memo.hits"),
            memo_misses: registry.counter("server.memo.misses"),
            memo_evictions: registry.counter("server.memo.evictions"),
            memo_invalidations: registry.counter("server.memo.invalidations"),
            memo_entries: registry.gauge("server.memo.entries"),
            interner_symbols: registry.gauge("server.interner.symbols"),
            interner_subjects: registry.gauge("server.interner.subjects"),
            interner_messages: registry.gauge("server.interner.messages"),
            interner_formulas: registry.gauge("server.interner.formulas"),
            journal_appends: registry.counter("server.journal.appends"),
            journal_bytes: registry.counter("server.journal.bytes"),
            journal_snapshots: registry.counter("server.journal.snapshots"),
            journal_append_ns: registry.histogram("server.journal.append_ns"),
            audit_evictions: registry.counter("server.audit.evictions"),
            crypto_precomp_hits: registry.counter("server.crypto.precomp_hits"),
            crypto_batch_verifies: registry.counter("server.crypto.batch_verifies"),
            crypto_batch_fallbacks: registry.counter("server.crypto.batch_fallbacks"),
            shed_overloaded: registry.counter("server.shed.overloaded"),
            shed_deadline: registry.counter("server.shed.deadline"),
            shed_poisoned: registry.counter("server.shed.poisoned"),
            deadline_slack_ns: registry.histogram("server.deadline.slack_ns"),
            journal_poisoned: registry.gauge("server.journal.poisoned"),
            registry: registry.clone(),
        }
    }
}

/// The coalition server.
#[derive(Debug)]
pub struct CoalitionServer {
    name: String,
    /// The trust anchors, shared via [`Arc`] so a published
    /// [`DecisionSnapshot`](crate::concurrent::DecisionSnapshot) can hold
    /// them without copying. Immutable after construction.
    store: Arc<TrustStore>,
    engine: Engine,
    objects: Vec<CoalitionObject>,
    /// The audit log, bounded at `audit_capacity` (oldest lines rotate out
    /// first).
    audit: VecDeque<AuditEntry>,
    /// Bound on retained audit lines ([`DEFAULT_AUDIT_CAPACITY`] unless
    /// overridden).
    audit_capacity: usize,
    /// Audit lines rotated out so far.
    audit_evicted: u64,
    logic_checking: bool,
    /// Recency policy for revocation information (Stubblebine–Wright):
    /// when set, requests are refused unless a CRL no older than the window
    /// has been admitted.
    revocation_recency: Option<i64>,
    last_crl: Option<(u64, Time)>,
    /// When on, duplicate deliveries of the same request (by canonical
    /// digest) return the original decision instead of being re-processed.
    replay_protection: bool,
    /// Digest → decision cache backing replay protection, bounded at
    /// `seen_capacity` (oldest decisions evicted by insertion order).
    seen: std::collections::HashMap<String, ServerDecision>,
    /// Request digests in insertion order, for `seen` eviction.
    seen_order: VecDeque<String>,
    /// Bound on remembered decisions ([`DEFAULT_REPLAY_CAPACITY`] unless
    /// overridden).
    seen_capacity: usize,
    /// Optional certificate-verification memoization (off by default so
    /// benchmarks measure real verification work).
    verify_cache: Option<VerifyCache>,
    /// Capacity the verification cache is (re)created with; `None` keeps
    /// the crate default. Journaled so recovery rebuilds the same bound.
    verify_cache_capacity: Option<usize>,
    /// Optional persistent, indexed cert/CRL/ACL store
    /// ([`CoalitionServer::attach_cert_store`]). When attached, every
    /// admission writes its row to the store *before* the in-memory
    /// effect — store-before-effect, composing with the journal's
    /// WAL-before-effect — so a restarted server can rebuild its entire
    /// certified population from the store's indexes.
    cert_store: Option<CertStore>,
    /// Fixed-base window precomputation for the crypto phase (off by
    /// default so benchmarks measure uncached exponentiation). The tables
    /// themselves live inside the trust store's shared
    /// [`jaap_crypto::precomp::VerifierPrecomp`], so every published
    /// decision snapshot carries them behind the same `Arc` as the keys
    /// they were derived from — a store swap or key rotation can never
    /// pair a stale table with a new key.
    crypto_precomp: bool,
    /// Small-exponents randomized batch signature verification across the
    /// requests of one [`CoalitionServer::verify_batch`] call (off by
    /// default). Verdicts are identical to serial verification: a passing
    /// combined screen is settled with exact per-item checks and a failed
    /// one falls back to bisection with exact per-item leaf checks.
    batch_verify: bool,
    /// Precomp cache hits already mirrored into the registry (the shared
    /// cache's counters are monotone; each mirror pushes the delta).
    precomp_mirrored: u64,
    /// Seeds the per-batch random weights of batch verification. Seeded
    /// from OS entropy, never a constant: the weights are security
    /// parameters of the combined screen, and a submitter who can predict
    /// them can steer batches into worst-case bisection work (verdicts
    /// stay exact regardless — settlement confirms every screened item).
    /// Separate from `rng` so enabling batching never perturbs the
    /// response encryption stream, and so replaying a journal (which
    /// re-derives `rng`-driven state) never depends on weight draws.
    batch_rng: StdRng,
    /// Pre-resolved instrument handles; `None` keeps the request path free
    /// of metrics work entirely.
    metrics: Option<ServerMetrics>,
    /// Memo statistics already mirrored into the registry; counters are
    /// monotone, so each mirror pushes only the delta since this snapshot.
    memo_mirrored: MemoStats,
    /// The write-ahead journal, when durability is on
    /// ([`CoalitionServer::attach_journal`] /
    /// [`CoalitionServer::recover`]). `None` during recovery replay, so
    /// replayed mutations are not re-journaled.
    journal: Option<ServerJournal>,
    /// Auto-snapshot threshold: when set, any journaled record that pushes
    /// the log past this many bytes triggers a snapshot rewrite.
    snapshot_threshold: Option<u64>,
    /// A threshold crossing was observed but the crossing record's
    /// in-memory effects were not yet applied; the snapshot runs right
    /// before the *next* append, when the state is consistent again.
    snapshot_pending: bool,
    /// The derivation-memo capacity last configured (engine has no getter;
    /// snapshots re-emit it).
    memo_capacity: Option<usize>,
    /// Server-local state revision: bumped on every mutation the engine's
    /// own [`Engine::state_version`] cannot see (object/ACL/content edits,
    /// CRL recency anchors, configuration flips). The sum of the two is
    /// [`CoalitionServer::state_version`], the single version number every
    /// published decision snapshot is validated against.
    local_rev: u64,
    /// The sticky fail-stop state (fsyncgate semantics): set when a
    /// durability-path write — journal append, snapshot rewrite, or
    /// cert-store put — fails after the corresponding WAL record may have
    /// partially reached the medium. From then on every mutator returns
    /// [`CoalitionError::JournalPoisoned`] and every decision sheds with
    /// [`ShedReason::JournalPoisoned`]; the only way forward is
    /// [`CoalitionServer::recover`], which replays the durable prefix into
    /// a fresh server. A failed fsync is never retried: the write may or
    /// may not be on disk, so the in-memory state is no longer known to
    /// match the log.
    poisoned: Option<String>,
    rng: StdRng,
}

/// What [`CoalitionServer::recover`] found in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records decoded and replayed.
    pub records_replayed: usize,
    /// Total journal bytes scanned.
    pub bytes_scanned: u64,
    /// Why (and where) the tail was truncated, `None` for a clean log.
    pub truncation: Option<String>,
    /// Unreplayable tail bytes dropped (torn/corrupt writes).
    pub truncated_bytes: u64,
}

impl CoalitionServer {
    /// Creates the server with a trust store; the engine's initial beliefs
    /// are derived from it (Statements 1–11).
    #[must_use]
    pub fn new(name: impl Into<String>, store: TrustStore) -> Self {
        let name = name.into();
        let engine = Engine::new(name.as_str(), store.assumptions());
        CoalitionServer {
            name,
            store: Arc::new(store),
            engine,
            objects: Vec::new(),
            audit: VecDeque::new(),
            audit_capacity: DEFAULT_AUDIT_CAPACITY,
            audit_evicted: 0,
            logic_checking: true,
            revocation_recency: None,
            last_crl: None,
            replay_protection: false,
            seen: std::collections::HashMap::new(),
            seen_order: VecDeque::new(),
            seen_capacity: DEFAULT_REPLAY_CAPACITY,
            verify_cache: None,
            verify_cache_capacity: None,
            cert_store: None,
            crypto_precomp: false,
            batch_verify: false,
            precomp_mirrored: 0,
            batch_rng: StdRng::from_os_rng(),
            metrics: None,
            memo_mirrored: MemoStats::default(),
            journal: None,
            snapshot_threshold: None,
            snapshot_pending: false,
            memo_capacity: None,
            local_rev: 0,
            poisoned: None,
            rng: StdRng::seed_from_u64(0x5EC5EC),
        }
    }

    /// The sticky fail-stop poison detail, `None` while healthy. See
    /// [`CoalitionError::JournalPoisoned`].
    #[must_use]
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Transitions to the sticky fail-stop state (first detail wins) and
    /// returns the typed error. Mutators and decisions refuse from here on;
    /// only [`CoalitionServer::recover`] resumes service.
    fn poison(&mut self, detail: String) -> CoalitionError {
        let detail = self.poisoned.get_or_insert(detail).clone();
        if let Some(m) = &self.metrics {
            m.journal_poisoned.set(1);
        }
        CoalitionError::JournalPoisoned(detail)
    }

    /// The poisoned-state refusal, `Err` while poisoned.
    fn ensure_unpoisoned(&self) -> Result<(), CoalitionError> {
        match &self.poisoned {
            Some(detail) => Err(CoalitionError::JournalPoisoned(detail.clone())),
            None => Ok(()),
        }
    }

    /// The server's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The monotone version of everything a decision depends on: the
    /// engine's [`Engine::state_version`] (beliefs, revocations, freshness
    /// window, clock) plus the server-local revision (objects, ACLs,
    /// contents, recency anchors, configuration). Any two decisions
    /// evaluated at the same `state_version` see identical inputs; a
    /// published snapshot whose version differs from the live one is stale.
    #[must_use]
    pub fn state_version(&self) -> u64 {
        self.engine.state_version() + self.local_rev
    }

    /// Bumps the server-local revision (see [`CoalitionServer::state_version`]).
    fn touch(&mut self) {
        self.local_rev += 1;
    }

    /// All registered objects.
    #[must_use]
    pub fn objects(&self) -> &[CoalitionObject] {
        &self.objects
    }

    /// The shared trust-anchor handle (for decision snapshots).
    #[must_use]
    pub fn trust_store_handle(&self) -> Arc<TrustStore> {
        Arc::clone(&self.store)
    }

    /// The live verification-cache handle, if the cache is on. The cache is
    /// internally synchronized and revocation-invalidated, so a snapshot
    /// shares the handle rather than copying entries.
    pub(crate) fn verify_cache_handle(&self) -> Option<VerifyCache> {
        self.verify_cache.clone()
    }

    /// Attaches a persistent cert/CRL/ACL store. From here on, CRLs,
    /// revocations, ACL rows and first-seen request certificates are
    /// written to the store before their in-memory effect (store-before-
    /// effect). Existing objects' ACL rows are backfilled so the store
    /// reflects the server's current policy surface.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Store`] if the backfill write fails.
    pub fn attach_cert_store(&mut self, store: CertStore) -> Result<(), CoalitionError> {
        self.ensure_unpoisoned()?;
        for obj in &self.objects {
            store.put_acl(&obj.name, &obj.acl)?;
        }
        if let Some(m) = &self.metrics {
            store.set_metrics(&m.registry);
        }
        self.cert_store = Some(store);
        // Bump the state version so concurrent front-ends republish their
        // snapshot with the store handle aboard.
        self.touch();
        Ok(())
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn cert_store(&self) -> Option<&CertStore> {
        self.cert_store.as_ref()
    }

    /// A cloneable handle on the attached store (for decision snapshots;
    /// handles share one index and one lock-free epoch counter).
    pub(crate) fn cert_store_handle(&self) -> Option<CertStore> {
        self.cert_store.clone()
    }

    /// The pre-resolved crypto-phase histogram, when metrics are attached
    /// (snapshots record crypto latency off the writer lock).
    pub(crate) fn crypto_histogram(&self) -> Option<Arc<Histogram>> {
        self.metrics.as_ref().map(|m| Arc::clone(&m.crypto_ns))
    }

    /// Registers a jointly owned object with its ACL.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append or the
    /// cert-store ACL row fails (the server fail-stops: the record may be
    /// partially durable, so proceeding in memory would diverge from the
    /// log) — or when the server was already poisoned.
    pub fn add_object(&mut self, name: impl Into<String>, acl: Acl) -> Result<(), CoalitionError> {
        let name = name.into();
        self.touch();
        self.journal_append(&JournalRecord::ObjectAdded {
            name: name.clone(),
            acl: acl.clone(),
        })?;
        if let Some(cs) = self.cert_store.clone() {
            if let Err(e) = cs.put_acl(&name, &acl) {
                return Err(self.poison(format!("cert store ACL row failed: {e}")));
            }
        }
        self.objects.push(CoalitionObject {
            name,
            acl,
            version: 0,
            content: Vec::new(),
        });
        Ok(())
    }

    /// Looks up an object.
    #[must_use]
    pub fn object(&self, name: &str) -> Option<&CoalitionObject> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Replaces an object's ACL (policy-object update — itself subject to
    /// a granted `set-policy` request at the caller's layer).
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown object.
    pub fn set_acl(&mut self, name: &str, acl: Acl) -> Result<(), CoalitionError> {
        if !self.objects.iter().any(|o| o.name == name) {
            return Err(CoalitionError::Config(format!("unknown object {name}")));
        }
        self.touch();
        self.journal_append(&JournalRecord::AclSet {
            name: name.into(),
            acl: acl.clone(),
        })?;
        // The journal already has this record; a failed store row would
        // leave recovery and the live server disagreeing — fail-stop.
        if let Some(cs) = self.cert_store.clone() {
            if let Err(e) = cs.put_acl(name, &acl) {
                return Err(self.poison(format!("cert store ACL row failed: {e}")));
            }
        }
        let obj = self
            .objects
            .iter_mut()
            .find(|o| o.name == name)
            .expect("presence checked above");
        obj.acl = acl;
        Ok(())
    }

    /// Sets an object's contents.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown object.
    pub fn set_content(&mut self, name: &str, content: Vec<u8>) -> Result<(), CoalitionError> {
        if !self.objects.iter().any(|o| o.name == name) {
            return Err(CoalitionError::Config(format!("unknown object {name}")));
        }
        self.touch();
        self.journal_append(&JournalRecord::ContentSet {
            name: name.into(),
            content: content.clone(),
        })?;
        let obj = self
            .objects
            .iter_mut()
            .find(|o| o.name == name)
            .expect("presence checked above");
        obj.content = content;
        Ok(())
    }

    /// Advances the server clock. A no-op advance (`to == now`) is not
    /// journaled.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] on a clock regression (`to < now`);
    /// [`CoalitionError::Journal`] if the journal append fails.
    pub fn advance_clock(&mut self, to: Time) -> Result<(), CoalitionError> {
        if to == self.engine.now() {
            return Ok(());
        }
        if to < self.engine.now() {
            return Err(CoalitionError::Config(format!(
                "clock regression: cannot move from {:?} back to {to:?}",
                self.engine.now()
            )));
        }
        self.journal_append(&JournalRecord::ClockAdvance(to))?;
        self.engine
            .advance_clock(to)
            .map_err(|e| CoalitionError::Config(e.to_string()))
    }

    /// The server's current time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Enables/disables the logic layer (D3 ablation).
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_logic_checking(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::LogicChecking,
            i64::from(on),
        ))?;
        self.logic_checking = on;
        Ok(())
    }

    /// Enables/disables the certificate-verification cache. Turning it off
    /// drops all memoized entries.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_verification_cache(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::VerifyCache,
            i64::from(on),
        ))?;
        if on {
            if self.verify_cache.is_none() {
                let cache = match self.verify_cache_capacity {
                    Some(capacity) => VerifyCache::with_capacity(Some(capacity)),
                    None => VerifyCache::new(),
                };
                if let Some(m) = &self.metrics {
                    cache.set_metrics(Some(&m.registry));
                }
                self.verify_cache = Some(cache);
            }
        } else {
            self.verify_cache = None;
        }
        Ok(())
    }

    /// Sizes the certificate-verification cache (`None` restores the
    /// crate default, [`cache::DEFAULT_CACHE_CAPACITY`]). Applies to the
    /// live cache immediately, evicting oldest entries if the new bound
    /// is already exceeded, and to any cache created later by
    /// [`CoalitionServer::set_verification_cache`].
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_verify_cache_capacity(
        &mut self,
        capacity: Option<usize>,
    ) -> Result<(), CoalitionError> {
        self.touch();
        let encoded = capacity.and_then(|c| i64::try_from(c).ok()).unwrap_or(-1);
        self.journal_append(&JournalRecord::Config(
            ConfigKind::VerifyCacheCapacity,
            encoded,
        ))?;
        self.verify_cache_capacity = capacity;
        if let Some(cache) = &self.verify_cache {
            cache.set_capacity(Some(capacity.unwrap_or(cache::DEFAULT_CACHE_CAPACITY)));
        }
        Ok(())
    }

    /// The configured verification-cache bound (`None` = crate default).
    #[must_use]
    pub fn verify_cache_capacity(&self) -> Option<usize> {
        self.verify_cache_capacity
    }

    /// Enables/disables fixed-base window precomputation in the crypto
    /// phase. Tables are built lazily per (base, modulus) inside the trust
    /// store's shared verifier-precomp cache and reused across requests;
    /// accept/reject behavior is unchanged.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_crypto_precomp(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::CryptoPrecomp,
            i64::from(on),
        ))?;
        self.crypto_precomp = on;
        Ok(())
    }

    /// Whether fixed-base precomputation is on (decision snapshots capture
    /// this flag at publish).
    #[must_use]
    pub fn crypto_precomp(&self) -> bool {
        self.crypto_precomp
    }

    /// Enables/disables small-exponents batch signature verification for
    /// [`CoalitionServer::verify_batch`]: certificates sharing a modulus
    /// (and statements sharing a signer key) across the whole batch are
    /// screened with one randomly weighted combined exponentiation —
    /// settled with exact per-item checks on a pass, bisected on a
    /// failure — so verdicts, and therefore decisions and audit lines,
    /// stay identical to serial verification for every weight draw.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_batch_verify(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::BatchVerify,
            i64::from(on),
        ))?;
        self.batch_verify = on;
        Ok(())
    }

    /// Whether batch signature verification is on.
    #[must_use]
    pub fn batch_verify_enabled(&self) -> bool {
        self.batch_verify
    }

    /// Attaches a metrics registry: per-phase decision latencies
    /// (`server.phase.*_ns`, `server.decision_ns`), decision counters
    /// (`server.{decisions,granted,denied}`), replay-dedup counters
    /// (`server.replay.{hits,evictions}`), derivation-memo counters and
    /// size (`server.memo.{hits,misses,evictions,invalidations,entries}`),
    /// interner table sizes (`server.interner.*`) and — when the
    /// verification cache is on —
    /// `server.cache.{hits,misses,invalidations,evictions}`.
    /// Handles are resolved once here; pass `None` to detach, restoring a
    /// request path with zero metrics work.
    pub fn set_metrics(&mut self, registry: Option<&MetricsRegistry>) {
        self.metrics = registry.map(ServerMetrics::resolve);
        // Counters in a fresh registry start at zero; mirror only activity
        // from this point on.
        self.memo_mirrored = self.engine.derivation_memo_stats().unwrap_or_default();
        self.precomp_mirrored = self.store.precomp().stats().hits();
        if let Some(cache) = &self.verify_cache {
            cache.set_metrics(registry);
        }
        if let (Some(cs), Some(registry)) = (&self.cert_store, registry) {
            cs.set_metrics(registry);
        }
    }

    /// Turns the engine's derivation memo on or off (off by default, which
    /// preserves the fully re-derived logic path). See
    /// [`Engine::set_derivation_memo`].
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_derivation_memo(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::DerivationMemo,
            i64::from(on),
        ))?;
        self.engine.set_derivation_memo(on);
        self.memo_mirrored = MemoStats::default();
        Ok(())
    }

    /// Bounds the derivation memo (`None` = unbounded); no-op when off.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_derivation_memo_capacity(
        &mut self,
        capacity: Option<usize>,
    ) -> Result<(), CoalitionError> {
        self.touch();
        let encoded = capacity.and_then(|c| i64::try_from(c).ok()).unwrap_or(-1);
        self.journal_append(&JournalRecord::Config(
            ConfigKind::DerivationMemoCapacity,
            encoded,
        ))?;
        self.memo_capacity = capacity;
        self.engine.set_derivation_memo_capacity(capacity);
        Ok(())
    }

    /// Derivation-memo statistics, `None` when the memo is off.
    #[must_use]
    pub fn derivation_memo_stats(&self) -> Option<MemoStats> {
        self.engine.derivation_memo_stats()
    }

    /// Sizes of the engine's hash-consing arena tables.
    #[must_use]
    pub fn interner_stats(&self) -> jaap_core::syntax::InternStats {
        self.engine.interner_stats()
    }

    /// Re-bounds the replay-protection `seen` map (default
    /// [`DEFAULT_REPLAY_CAPACITY`]), evicting oldest decisions immediately
    /// if the new bound is already exceeded.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_replay_protection_capacity(
        &mut self,
        capacity: usize,
    ) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::ReplayCapacity,
            i64::try_from(capacity).unwrap_or(i64::MAX),
        ))?;
        self.seen_capacity = capacity.max(1);
        self.trim_seen();
        Ok(())
    }

    /// Applies one [`CapacityConfig`] across every bounded structure: the
    /// replay window, audit log, verification cache, derivation memo, and
    /// (when a [`CertStore`] is attached) the cold-tier page budget. Each
    /// bound goes through its journaled setter, so recovery rebuilds the
    /// same sizing.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when a journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn apply_capacity_config(&mut self, config: &CapacityConfig) -> Result<(), CoalitionError> {
        self.set_replay_protection_capacity(config.replay)?;
        self.set_audit_capacity(config.audit)?;
        self.set_verify_cache_capacity(config.verify_cache)?;
        if config.derivation_memo.is_some() {
            self.set_derivation_memo_capacity(config.derivation_memo)?;
        }
        if let (Some(pages), Some(cs)) = (config.store_cache_pages, &self.cert_store) {
            cs.set_cache_pages(pages);
        }
        Ok(())
    }

    /// Re-bounds the audit log (default [`DEFAULT_AUDIT_CAPACITY`]),
    /// rotating out oldest lines immediately if the new bound is already
    /// exceeded.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_audit_capacity(&mut self, capacity: usize) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::AuditCapacity,
            i64::try_from(capacity).unwrap_or(i64::MAX),
        ))?;
        self.audit_capacity = capacity.max(1);
        self.trim_audit();
        Ok(())
    }

    /// Audit lines rotated out so far (the log is bounded; see
    /// [`CoalitionServer::set_audit_capacity`]).
    #[must_use]
    pub fn audit_evictions(&self) -> u64 {
        self.audit_evicted
    }

    /// Remembered replay decisions (for capacity tests).
    #[must_use]
    pub fn replay_entries(&self) -> usize {
        self.seen.len()
    }

    /// The verification cache handle, when enabled (for stats inspection).
    #[must_use]
    pub fn verification_cache(&self) -> Option<&VerifyCache> {
        self.verify_cache.as_ref()
    }

    /// Enables/disables replay protection: with it on, a duplicate delivery
    /// of the *same* request (a network-level retry, recognized by
    /// [`JointAccessRequest::digest`]) returns the original decision without
    /// a second audit entry or version increment. Off by default so
    /// benchmarks measure real verification work.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_replay_protection(&mut self, on: bool) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(
            ConfigKind::ReplayProtection,
            i64::from(on),
        ))?;
        self.replay_protection = on;
        Ok(())
    }

    /// Requires revocation information (a CRL) no older than `window`
    /// ticks before any request is granted — §4.3: "It is essential to
    /// verify the most recent available revocation information before
    /// granting access."
    ///
    /// # Errors
    ///
    /// [`CoalitionError::JournalPoisoned`] when the journal append fails
    /// (the server fail-stops) or the server was already poisoned.
    pub fn set_revocation_recency(&mut self, window: i64) -> Result<(), CoalitionError> {
        self.touch();
        self.journal_append(&JournalRecord::Config(ConfigKind::RecencyWindow, window))?;
        self.revocation_recency = Some(window);
        Ok(())
    }

    /// Admits a CRL: verifies it, rejects sequence rollback, feeds every
    /// entry to the engine, refreshes the recency anchor, and drops any
    /// cached verification whose certificate grants a listed group.
    ///
    /// # Errors
    ///
    /// Propagates verification failures; [`CoalitionError::Config`] on a
    /// stale sequence number.
    pub fn admit_crl(&mut self, crl: &jaap_pki::Crl) -> Result<(), CoalitionError> {
        if let Some((seq, _)) = self.last_crl {
            if crl.sequence <= seq {
                return Err(CoalitionError::Config(format!(
                    "CRL sequence rollback: have #{seq}, got #{}",
                    crl.sequence
                )));
            }
        }
        let messages = self.store.idealize_crl(crl)?;
        self.touch();
        // Write-ahead: the CRL is durable before any entry takes effect, so
        // recovery replays exactly this admission loop — including a
        // partial admission when an entry fails mid-list. The persistent
        // store's anchor row lands under the same discipline.
        self.journal_append(&JournalRecord::Crl(crl.clone()))?;
        if let Some(cs) = self.cert_store.clone() {
            if let Err(e) = cs.put_crl(crl) {
                return Err(self.poison(format!("cert store CRL row failed: {e}")));
            }
        }
        for msg in &messages {
            self.engine
                .admit_certificate(msg)
                .map_err(|e| CoalitionError::Config(format!("CRL entry not admitted: {e}")))?;
        }
        if let Some(cache) = &self.verify_cache {
            for entry in &crl.entries {
                cache.invalidate_group(entry.group.as_str());
            }
        }
        self.last_crl = Some((crl.sequence, crl.timestamp));
        Ok(())
    }

    /// The audit log (most recent entries; bounded, oldest rotate out).
    #[must_use]
    pub fn audit_log(&self) -> &VecDeque<AuditEntry> {
        &self.audit
    }

    /// Direct engine access (used by soundness integration tests).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Admits an attribute revocation (from the RA): verifies it, feeds
    /// the idealization to the engine (believe-until-revoked), and drops
    /// any cached verification granting the revoked group.
    ///
    /// # Errors
    ///
    /// Propagates verification/idealization failures.
    pub fn admit_attribute_revocation(
        &mut self,
        rev: &AttributeRevocation,
    ) -> Result<(), CoalitionError> {
        let msg = self.store.idealize_attribute_revocation(rev)?;
        self.touch();
        self.journal_append(&JournalRecord::AttributeRevocation(rev.clone()))?;
        if let Some(cs) = self.cert_store.clone() {
            if let Err(e) = cs.put_attribute_revocation(rev) {
                return Err(self.poison(format!("cert store revocation row failed: {e}")));
            }
        }
        self.engine
            .admit_certificate(&msg)
            .map_err(|e| CoalitionError::Config(format!("revocation not admitted: {e}")))?;
        if let Some(cache) = &self.verify_cache {
            cache.invalidate_group(rev.group.as_str());
        }
        Ok(())
    }

    /// Admits an identity revocation from a domain CA, dropping any cached
    /// verification naming the revoked subject.
    ///
    /// # Errors
    ///
    /// Propagates verification/idealization failures.
    pub fn admit_identity_revocation(
        &mut self,
        rev: &IdentityRevocation,
    ) -> Result<(), CoalitionError> {
        let msg = self.store.idealize_identity_revocation(rev)?;
        self.touch();
        self.journal_append(&JournalRecord::IdentityRevocation(rev.clone()))?;
        if let Some(cs) = self.cert_store.clone() {
            if let Err(e) = cs.put_identity_revocation(rev) {
                return Err(self.poison(format!("cert store revocation row failed: {e}")));
            }
        }
        self.engine
            .admit_certificate(&msg)
            .map_err(|e| CoalitionError::Config(format!("revocation not admitted: {e}")))?;
        if let Some(cache) = &self.verify_cache {
            cache.invalidate_subject(&rev.subject);
        }
        Ok(())
    }

    /// Records a denial caused by coalition-side unavailability (a joint
    /// signing session that could not assemble its quorum), carrying the
    /// session's retry trace into the audit log. Returns the corresponding
    /// [`ServerDecision`] with `unavailable` set.
    pub fn record_unavailable(
        &mut self,
        principals: Vec<String>,
        operation: Operation,
        detail: impl Into<String>,
        retry_trace: Option<String>,
    ) -> ServerDecision {
        let detail = detail.into();
        if let Err(e) = self.journal_append(&JournalRecord::Decision(DecisionRecord {
            at: self.engine.now(),
            principals: principals.clone(),
            operation: operation.clone(),
            granted: false,
            detail: detail.clone(),
            cached_checks: 0,
            retry_trace: retry_trace.clone(),
            axioms: 0,
            signature_checks: 0,
            unavailable: true,
            version_bump: false,
            replay_digest: None,
        })) {
            // The append may be partially durable (or the server was
            // already poisoned): fail-stop and shed instead of recording.
            return self.shed_decision(principals, operation, ShedReason::JournalPoisoned, e);
        }
        self.push_audit(AuditEntry {
            at: self.engine.now(),
            principals,
            operation,
            granted: false,
            detail: detail.clone(),
            cached_checks: 0,
            retry_trace,
            shed: None,
        });
        ServerDecision {
            granted: false,
            detail: Some(detail),
            derivation: None,
            axiom_applications: 0,
            signature_checks: 0,
            cached_signature_checks: 0,
            response: None,
            unavailable: true,
            shed: None,
        }
    }

    /// Sheds a request without evaluating it: one (volatile) audit line,
    /// shed instruments, and a typed [`ServerDecision::shed`] — no journal
    /// record, no replay-window entry, no cache population.
    fn shed_decision(
        &mut self,
        principals: Vec<String>,
        operation: Operation,
        reason: ShedReason,
        detail: impl core::fmt::Display,
    ) -> ServerDecision {
        let detail = detail.to_string();
        self.push_audit(AuditEntry {
            at: self.engine.now(),
            principals,
            operation,
            granted: false,
            detail: detail.clone(),
            cached_checks: 0,
            retry_trace: None,
            shed: Some(reason),
        });
        if let Some(m) = &self.metrics {
            m.decisions.inc();
            match reason {
                ShedReason::Overloaded => m.shed_overloaded.inc(),
                ShedReason::DeadlineExceeded => m.shed_deadline.inc(),
                ShedReason::JournalPoisoned => m.shed_poisoned.inc(),
            }
        }
        ServerDecision::shed(reason, detail)
    }

    /// [`CoalitionServer::shed_decision`] with the principals/operation
    /// taken from the request.
    fn shed_request(
        &mut self,
        req: &JointAccessRequest,
        reason: ShedReason,
        detail: impl core::fmt::Display,
    ) -> ServerDecision {
        let principals = req.statements.iter().map(|s| s.principal.clone()).collect();
        self.shed_decision(principals, req.operation.clone(), reason, detail)
    }

    /// Handles a joint access request end to end.
    pub fn handle_request(&mut self, req: &JointAccessRequest) -> ServerDecision {
        // Fail-stop: a poisoned server refuses every decision until
        // recovery (the in-memory state may diverge from the durable log).
        if let Some(detail) = self.poisoned.clone() {
            return self.shed_request(req, ShedReason::JournalPoisoned, detail);
        }
        // Pre-crypto deadline gate: an exhausted budget sheds before any
        // signature work — and before the verify cache is even consulted.
        if let Some(deadline) = req.deadline {
            let now = Instant::now();
            if now >= deadline {
                return self.shed_request(
                    req,
                    ShedReason::DeadlineExceeded,
                    "deadline budget exhausted before the crypto phase",
                );
            }
            if let Some(m) = &self.metrics {
                m.deadline_slack_ns.record_duration(deadline - now);
            }
        }
        let started = self.metrics.as_ref().map(|_| Instant::now());
        if self.replay_protection {
            if let Some(cached) = self.seen.get(&req.digest()) {
                // Duplicate delivery: same decision, no second audit entry,
                // no second version increment.
                if let Some(m) = &self.metrics {
                    m.replay_hits.inc();
                }
                return cached.clone();
            }
        }
        let recency_started = started.map(|_| Instant::now());
        let recency = self.recency_error();
        if let (Some(m), Some(t)) = (&self.metrics, recency_started) {
            m.recency_ns.record_duration(t.elapsed());
        }
        let outcome = match recency {
            // A stale-recency refusal short-circuits before any crypto
            // work, exactly as in the serial pipeline of record.
            Some(detail) => CryptoOutcome::failed(detail),
            None => {
                let crypto_started = started.map(|_| Instant::now());
                let outcome = crypto_verify(
                    &self.store,
                    self.verify_cache.as_ref(),
                    self.engine.now(),
                    req,
                    self.crypto_precomp,
                    None,
                );
                if let (Some(m), Some(t)) = (&self.metrics, crypto_started) {
                    m.crypto_ns.record_duration(t.elapsed());
                }
                outcome
            }
        };
        let decision = self.finish_decision(req, outcome);
        if let (Some(m), Some(t)) = (&self.metrics, started) {
            m.decision_ns.record_duration(t.elapsed());
        }
        decision
    }

    /// Handles a batch of **independent** requests, fanning the crypto
    /// phase (certificate + statement signature verification) across up to
    /// `workers` threads of the shared persistent pool
    /// ([`WorkerPool::global`]) while the belief-engine phase runs serially
    /// in request order afterwards. Decisions are identical to calling
    /// [`CoalitionServer::handle_request`] on each request in order; only
    /// the split of checks between `signature_checks` and
    /// `cached_signature_checks` can differ when the cache is on, since
    /// workers racing on a cold cache may each verify the same certificate
    /// once.
    pub fn verify_batch(
        &mut self,
        requests: &[JointAccessRequest],
        workers: usize,
    ) -> Vec<ServerDecision> {
        // Fail-stop: don't fan out crypto work the commit tail will refuse.
        if let Some(detail) = self.poisoned.clone() {
            return requests
                .iter()
                .map(|req| self.shed_request(req, ShedReason::JournalPoisoned, &detail))
                .collect();
        }
        let workers = workers.max(1).min(requests.len().max(1));
        let recency_started = self.metrics.as_ref().map(|_| Instant::now());
        let recency_err = self.recency_error();
        if let (Some(m), Some(t)) = (&self.metrics, recency_started) {
            m.recency_ns.record_duration(t.elapsed());
        }
        let crypto_ns = self.metrics.as_ref().map(|m| Arc::clone(&m.crypto_ns));
        let now = self.engine.now();

        let outcomes: Vec<CryptoOutcome> = if let Some(detail) = recency_err {
            requests
                .iter()
                .map(|_| CryptoOutcome::failed(detail.clone()))
                .collect()
        } else {
            // Batch pre-pass (when enabled): one combined exponentiation
            // vouches for all signatures sharing a key across the whole
            // batch; the per-request phase below skips exactly the
            // individual checks the pre-pass already performed. Its cost
            // is crypto-phase work and is recorded as such, so the phase
            // histogram prices the accelerated path honestly.
            let precheck_started = crypto_ns.as_ref().map(|_| Instant::now());
            let prechecks = self.batch_precheck(requests);
            if let (Some(h), Some(t)) = (&crypto_ns, precheck_started) {
                if prechecks.is_some() {
                    h.record_duration(t.elapsed());
                }
            }
            let use_precomp = self.crypto_precomp;
            // The pool's scoped fan-out blocks until every worker is done,
            // so the closure can borrow the trust store, the cache handle,
            // and the request slice directly. `workers == 1` runs inline
            // inside `run_indexed`, keeping the serial path pool-free.
            let store = &self.store;
            let cache = self.verify_cache.clone();
            let prechecks = &prechecks;
            WorkerPool::global().run_indexed(requests.len(), workers, |i| {
                let t = crypto_ns.as_ref().map(|_| Instant::now());
                let outcome = crypto_verify(
                    store,
                    cache.as_ref(),
                    now,
                    &requests[i],
                    use_precomp,
                    prechecks.as_ref().map(|p| &p[i]),
                );
                if let (Some(h), Some(t)) = (&crypto_ns, t) {
                    h.record_duration(t.elapsed());
                }
                outcome
            })
        };

        requests
            .iter()
            .zip(outcomes)
            .map(|(req, outcome)| self.finish_decision(req, outcome))
            .collect()
    }

    /// The batch pre-pass behind [`CoalitionServer::set_batch_verify`]:
    /// groups every presented certificate by issuer across the whole
    /// batch, deduplicates byte-identical presentations, runs one
    /// randomly weighted combined screen per issuer group
    /// ([`batch::verify_batch`] — screened signatures settle with exact
    /// per-item checks, failures bisect, warm residues leaf-check over
    /// their ladders), and returns per-request positional vouchers for
    /// exactly the signatures that passed an exact check.
    /// Signatures that fail — or whose issuer cannot be resolved — are
    /// left unvouched and take the serial path, reproducing the serial
    /// error verbatim. Request statements are *not* batched: they are
    /// one-shot signatures, and with `e = 2¹⁶ + 1` an item's marginal
    /// share of a combined product already exceeds its serial check.
    /// `None` when batching is off.
    fn batch_precheck(&mut self, requests: &[JointAccessRequest]) -> Option<Vec<CryptoPrecheck>> {
        if !self.batch_verify || requests.is_empty() {
            return None;
        }
        /// Where a presented certificate sits: (request index, position).
        #[derive(Clone, Copy)]
        enum Slot {
            Id(usize, usize),
            Thr(usize, usize),
            Attr(usize, usize),
        }
        /// The exact artifact behind a batch item. Equality is full
        /// structural equality — body fields *and* signature — so a dedup
        /// hit proves the presentation is identical to the item already
        /// batched, without serializing its body again (`body_bytes` is a
        /// pure function of the compared fields).
        #[derive(PartialEq)]
        enum CertRef<'a> {
            Id(&'a jaap_pki::IdentityCertificate),
            Thr(&'a jaap_pki::ThresholdAttributeCertificate),
            Attr(&'a jaap_pki::AttributeCertificate),
        }
        impl CertRef<'_> {
            /// The canonical signed bytes — built once per unique item.
            fn body(&self) -> Vec<u8> {
                match self {
                    CertRef::Id(c) => jaap_pki::IdentityCertificate::body_bytes(
                        &c.issuer,
                        &c.subject,
                        &c.subject_key,
                        c.validity,
                        c.timestamp,
                    ),
                    CertRef::Thr(c) => jaap_pki::ThresholdAttributeCertificate::body_bytes(
                        &c.issuer,
                        &c.subject,
                        &c.group,
                        c.validity,
                        c.timestamp,
                    ),
                    CertRef::Attr(c) => jaap_pki::AttributeCertificate::body_bytes(
                        &c.issuer,
                        &c.subject,
                        &c.subject_key,
                        &c.group,
                        c.validity,
                        c.timestamp,
                    ),
                }
            }
        }
        struct Group<'a> {
            key: &'a RsaPublicKey,
            items: Vec<batch::BatchItem>,
            /// The artifact behind each item, parallel to `items`.
            certs: Vec<CertRef<'a>>,
            /// Every presentation of each item, parallel to `items`.
            slots: Vec<Vec<Slot>>,
            /// Signature residue → items carrying it; a structural match
            /// against one of them is a dedup hit. Keyed by reference:
            /// repeat presentations cost a hash and a field compare, no
            /// allocation.
            dedup: HashMap<&'a jaap_bigint::Nat, Vec<usize>>,
        }
        fn add<'a>(
            groups: &mut BTreeMap<&'a str, Group<'a>>,
            issuer: &'a str,
            key: &'a RsaPublicKey,
            cert: CertRef<'a>,
            sig: &'a RsaSignature,
            slot: Slot,
        ) {
            let group = groups.entry(issuer).or_insert_with(|| Group {
                key,
                items: Vec::new(),
                certs: Vec::new(),
                slots: Vec::new(),
                dedup: HashMap::new(),
            });
            let bucket = group.dedup.entry(sig.value()).or_default();
            let idx = match bucket.iter().copied().find(|&j| group.certs[j] == cert) {
                Some(j) => j,
                None => {
                    let j = group.items.len();
                    group.items.push(group.key.batch_item(&cert.body(), sig));
                    group.certs.push(cert);
                    group.slots.push(Vec::new());
                    bucket.push(j);
                    j
                }
            };
            group.slots[idx].push(slot);
        }
        // BTreeMap over issuer names: the weight RNG draws one seed per
        // group, so group order must be deterministic. The AA group keys
        // on "", which no domain name collides with.
        let store = &self.store;
        let mut groups: BTreeMap<&str, Group<'_>> = BTreeMap::new();
        let aa_rsa = store.aa_key().map(|k| k.rsa());
        for (i, req) in requests.iter().enumerate() {
            for (ci, cert) in req.identity_certs.iter().enumerate() {
                // An unresolvable issuer is left unvouched so the serial
                // path reproduces the exact `UnknownIssuer` error.
                let Some(ca) = store.ca_key(&cert.issuer) else {
                    continue;
                };
                let slot = Slot::Id(i, ci);
                add(
                    &mut groups,
                    &cert.issuer,
                    ca,
                    CertRef::Id(cert),
                    &cert.signature,
                    slot,
                );
            }
            if let Some(aa) = aa_rsa {
                for (ci, cert) in req.threshold_certs.iter().enumerate() {
                    let slot = Slot::Thr(i, ci);
                    add(
                        &mut groups,
                        "",
                        aa,
                        CertRef::Thr(cert),
                        &cert.signature,
                        slot,
                    );
                }
                for (ci, cert) in req.attribute_certs.iter().enumerate() {
                    let slot = Slot::Attr(i, ci);
                    add(
                        &mut groups,
                        "",
                        aa,
                        CertRef::Attr(cert),
                        &cert.signature,
                        slot,
                    );
                }
            }
        }
        let precomp = Arc::clone(store.precomp());
        let mut prechecks: Vec<CryptoPrecheck> = requests
            .iter()
            .map(|r| CryptoPrecheck {
                id: vec![false; r.identity_certs.len()],
                thr: vec![false; r.threshold_certs.len()],
                attr: vec![false; r.attribute_certs.len()],
            })
            .collect();
        let (mut combined, mut fallbacks) = (0u64, 0u64);
        for group in groups.into_values() {
            let Some(mp) = precomp.for_key(group.key.modulus(), group.key.exponent()) else {
                continue;
            };
            // Certificates are standing artifacts, so their residues are
            // recurring bases: single-item groups and bisection leaves
            // ride the fixed-base ladders.
            let outcome = batch::verify_batch(&mp, &group.items, self.batch_rng.next_u64(), true);
            combined += outcome.combined_checks;
            fallbacks += outcome.fallbacks;
            for (ok, slots) in outcome.results.iter().copied().zip(&group.slots) {
                if !ok {
                    continue;
                }
                for slot in slots {
                    match *slot {
                        Slot::Id(i, ci) => prechecks[i].id[ci] = true,
                        Slot::Thr(i, ci) => prechecks[i].thr[ci] = true,
                        Slot::Attr(i, ci) => prechecks[i].attr[ci] = true,
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.crypto_batch_verifies.add(combined);
            m.crypto_batch_fallbacks.add(fallbacks);
        }
        Some(prechecks)
    }

    /// The stale-revocation-information refusal, if the recency policy is
    /// on and unsatisfied (Stubblebine–Wright).
    pub(crate) fn recency_error(&self) -> Option<String> {
        let window = self.revocation_recency?;
        let fresh_enough = self
            .last_crl
            .is_some_and(|(_, ts)| self.engine.now().0.saturating_sub(ts.0) <= window);
        if fresh_enough {
            None
        } else {
            Some(format!(
                "revocation information stale: no CRL within the last {window} ticks"
            ))
        }
    }

    /// The serial tail of the pipeline: replay bookkeeping, the logic/ACL
    /// phase, version bump, read response, audit entry. Exposed to the
    /// crate so the concurrent front-end ([`crate::concurrent`]) can commit
    /// a crypto outcome computed off the writer lock.
    pub(crate) fn finish_decision(
        &mut self,
        req: &JointAccessRequest,
        outcome: CryptoOutcome,
    ) -> ServerDecision {
        // Fail-stop: the concurrent front-end computes `outcome` off-lock,
        // so the server may have been poisoned in between.
        if let Some(detail) = self.poisoned.clone() {
            return self.shed_request(req, ShedReason::JournalPoisoned, detail);
        }
        // Pre-logic deadline gate: runs before `authorize_verified` touches
        // the belief engine, so a shed decision structurally cannot
        // populate the derivation memo, admit certificates, or bump the
        // epoch — and below, before `insert_seen`, so it is never replayed.
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            return self.shed_request(
                req,
                ShedReason::DeadlineExceeded,
                "deadline budget exhausted before the logic phase",
            );
        }
        let digest = if self.replay_protection {
            let digest = req.digest();
            if let Some(cached) = self.seen.get(&digest) {
                if let Some(m) = &self.metrics {
                    m.replay_hits.inc();
                }
                return cached.clone();
            }
            Some(digest)
        } else {
            None
        };
        let CryptoOutcome {
            signature_checks,
            cached_signature_checks,
            result,
        } = outcome;
        let epoch_before = self.engine.epoch();
        let verdict = result.and_then(|verified| self.authorize_verified(req, verified));
        let (granted, detail, derivation, axioms) = match verdict {
            Ok((derivation, axioms)) => (true, None, derivation, axioms),
            Err(msg) => (false, Some(msg), None, 0),
        };
        // An epoch change means the logic phase admitted at least one new
        // certificate body — a belief change that must be durable. The raw
        // signed certificates go to the journal so recovery re-verifies
        // and re-admits them in this exact order (re-admissions of known
        // bodies are deduplicated by the engine, so repeats are free).
        if self.engine.epoch() != epoch_before {
            if let Err(e) = self.journal_append(&JournalRecord::RequestCerts {
                identity: req.identity_certs.clone(),
                threshold: req.threshold_certs.clone(),
                attribute: req.attribute_certs.clone(),
            }) {
                // The engine already admitted beliefs this append failed to
                // make durable: fail-stop so the divergence cannot serve
                // another decision, and shed this one — it rests on state
                // that is not on disk.
                return self.shed_request(req, ShedReason::JournalPoisoned, e);
            }
            // First sight of these certificate bodies: persist them so the
            // indexed store accumulates the certified population.
            if let Some(cs) = self.cert_store.clone() {
                let put = req
                    .identity_certs
                    .iter()
                    .try_for_each(|c| cs.put_identity_cert(c))
                    .and_then(|()| {
                        req.threshold_certs
                            .iter()
                            .try_for_each(|c| cs.put_threshold_cert(c))
                    })
                    .and_then(|()| {
                        req.attribute_certs
                            .iter()
                            .try_for_each(|c| cs.put_attribute_cert(c))
                    });
                if let Err(e) = put {
                    let e = self.poison(format!("cert store certificate row failed: {e}"));
                    return self.shed_request(req, ShedReason::JournalPoisoned, e);
                }
            }
        }
        let version_bump = granted
            && req.operation.action == "write"
            && self.objects.iter().any(|o| o.name == req.operation.object);
        if let Err(e) = self.journal_append(&JournalRecord::Decision(DecisionRecord {
            at: self.engine.now(),
            principals: req.statements.iter().map(|s| s.principal.clone()).collect(),
            operation: req.operation.clone(),
            granted,
            detail: detail.clone().unwrap_or_default(),
            cached_checks: cached_signature_checks,
            retry_trace: None,
            axioms,
            signature_checks,
            unavailable: false,
            version_bump,
            replay_digest: digest.clone(),
        })) {
            // WAL-before-effect: the version bump and audit line have not
            // happened yet, and after the fail-stop they never will — a
            // recovered server and this one agree the decision never
            // committed.
            return self.shed_request(req, ShedReason::JournalPoisoned, e);
        }
        if version_bump {
            if let Some(obj) = self
                .objects
                .iter_mut()
                .find(|o| o.name == req.operation.object)
            {
                obj.version += 1;
            }
        }
        // Figure 2(d): a granted read returns the object encrypted under
        // the requestor's certified public key.
        let mut response = None;
        if granted && req.operation.action == "read" {
            let reader_key = req.statements.first().and_then(|s| {
                req.identity_certs
                    .iter()
                    .find(|c| c.subject == s.principal)
                    .map(|c| c.subject_key.clone())
            });
            if let (Some(key), Some(obj)) = (
                reader_key,
                self.objects.iter().find(|o| o.name == req.operation.object),
            ) {
                response = key.encrypt(&mut self.rng, &obj.content).ok();
            }
        }
        self.push_audit(AuditEntry {
            at: self.engine.now(),
            principals: req.statements.iter().map(|s| s.principal.clone()).collect(),
            operation: req.operation.clone(),
            granted,
            detail: detail.clone().unwrap_or_default(),
            cached_checks: cached_signature_checks,
            retry_trace: None,
            shed: None,
        });
        let decision = ServerDecision {
            granted,
            detail,
            derivation,
            axiom_applications: axioms,
            signature_checks,
            cached_signature_checks,
            response,
            unavailable: false,
            shed: None,
        };
        if let Some(m) = &self.metrics {
            m.decisions.inc();
            if granted {
                m.granted.inc();
            } else {
                m.denied.inc();
            }
        }
        self.mirror_logic_instruments();
        if let Some(digest) = digest {
            if self.seen.insert(digest.clone(), decision.clone()).is_none() {
                self.seen_order.push_back(digest);
            }
            self.trim_seen();
        }
        decision
    }

    /// Mirrors the engine-owned derivation-memo and interner statistics
    /// into the attached registry: counters get the delta since the last
    /// mirror (they are monotone in the engine), gauges are set absolutely.
    /// No-op without a registry; the memo gauges stay untouched with the
    /// memo off.
    fn mirror_logic_instruments(&mut self) {
        let Some(m) = &self.metrics else { return };
        if let Some(stats) = self.engine.derivation_memo_stats() {
            let prev = self.memo_mirrored;
            m.memo_hits.add(stats.hits.saturating_sub(prev.hits));
            m.memo_misses.add(stats.misses.saturating_sub(prev.misses));
            m.memo_evictions
                .add(stats.evictions.saturating_sub(prev.evictions));
            m.memo_invalidations
                .add(stats.invalidations.saturating_sub(prev.invalidations));
            m.memo_entries
                .set(i64::try_from(stats.entries).unwrap_or(i64::MAX));
            self.memo_mirrored = stats;
        }
        // The verifier-precomp cache is shared (it lives in the trust
        // store and is exercised off-lock by snapshots too); mirror the
        // monotone hit counter by delta, like the memo counters above.
        let precomp_hits = self.store.precomp().stats().hits();
        m.crypto_precomp_hits
            .add(precomp_hits.saturating_sub(self.precomp_mirrored));
        self.precomp_mirrored = precomp_hits;
        let interner = self.engine.interner_stats();
        let as_i64 = |n: usize| i64::try_from(n).unwrap_or(i64::MAX);
        m.interner_symbols.set(as_i64(interner.symbols));
        m.interner_subjects.set(as_i64(interner.subjects));
        m.interner_messages.set(as_i64(interner.messages));
        m.interner_formulas.set(as_i64(interner.formulas));
    }

    /// Evicts oldest remembered decisions past the replay capacity. A
    /// dropped digest makes that request *re-processable* (it gets a fresh,
    /// identical decision and a second audit line), never wrongly replayed
    /// — the bound trades a little duplicate work for flat memory.
    fn trim_seen(&mut self) {
        while self.seen.len() > self.seen_capacity {
            let Some(old) = self.seen_order.pop_front() else {
                break;
            };
            if self.seen.remove(&old).is_some() {
                if let Some(m) = &self.metrics {
                    m.replay_evictions.inc();
                }
            }
        }
    }

    /// Remembers a replay-protection decision under its digest, evicting
    /// past capacity.
    fn insert_seen(&mut self, digest: String, decision: ServerDecision) {
        if self.seen.insert(digest.clone(), decision).is_none() {
            self.seen_order.push_back(digest);
        }
        self.trim_seen();
    }

    /// Appends an audit line, rotating out the oldest past capacity.
    fn push_audit(&mut self, entry: AuditEntry) {
        self.audit.push_back(entry);
        self.trim_audit();
    }

    /// Rotates out oldest audit lines past the capacity bound.
    fn trim_audit(&mut self) {
        while self.audit.len() > self.audit_capacity {
            self.audit.pop_front();
            self.audit_evicted += 1;
            if let Some(m) = &self.metrics {
                m.audit_evictions.inc();
            }
        }
    }

    /// The write-ahead step of every belief-changing mutation: encodes and
    /// appends `record` before the mutation takes effect in memory. No-op
    /// without an attached journal. Triggers an auto-snapshot when the log
    /// grows past the configured threshold.
    ///
    /// A failed append **poisons** the server: the bytes may be partially
    /// on the medium, so neither "the record is durable" nor "it is not"
    /// can be assumed, and the append is never retried (fsyncgate). Every
    /// caller propagates the error before applying the record's in-memory
    /// effect, so a poisoned server's state is exactly the durable prefix
    /// plus nothing.
    fn journal_append(&mut self, record: &JournalRecord) -> Result<(), CoalitionError> {
        self.ensure_unpoisoned()?;
        if self.journal.is_none() {
            return Ok(());
        }
        // A snapshot folds the log into current *in-memory* state, so it
        // must not run between a record's append and its effects. Deferred
        // crossings run here, just before the next record — every prior
        // record's effects are complete by then.
        if self.snapshot_pending {
            self.snapshot_journal()?;
        }
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let at = self.engine.now();
        let len = match self
            .journal
            .as_mut()
            .expect("journal presence checked above")
            .append(at, record)
        {
            Ok(len) => len,
            Err(e) => return Err(self.poison(format!("journal append failed: {e}"))),
        };
        if let Some(m) = &self.metrics {
            m.journal_appends.inc();
            m.journal_bytes.add(len as u64);
            if let Some(t) = started {
                m.journal_append_ns.record_duration(t.elapsed());
            }
        }
        if let Some(threshold) = self.snapshot_threshold {
            let over = self
                .journal
                .as_ref()
                .expect("journal presence checked above")
                .len_bytes()?
                > threshold;
            if over {
                self.snapshot_pending = true;
            }
        }
        Ok(())
    }

    /// Attaches a write-ahead journal to this server. The store must be
    /// empty (recovering an existing log is [`CoalitionServer::recover`]'s
    /// job); a bootstrap snapshot of the current configuration, objects,
    /// audit log, and replay window is written immediately so the log
    /// alone reconstructs the server.
    ///
    /// Certificates admitted *before* the journal is attached are not
    /// captured — attach the journal before serving requests.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store is non-empty or fails.
    pub fn attach_journal(
        &mut self,
        store: Box<dyn jaap_wal::JournalStore>,
    ) -> Result<(), CoalitionError> {
        if !store.is_empty()? {
            return Err(CoalitionError::Journal(
                "journal store is not empty; use CoalitionServer::recover".into(),
            ));
        }
        self.journal = Some(ServerJournal::new(store));
        self.snapshot_journal()
    }

    /// True when a journal is attached.
    #[must_use]
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// Sets the primary term stamped into every journal frame written
    /// from now on. A no-op without a journal. Replication promotes a
    /// replica by recovering from its shipped log and raising this term;
    /// the fencing rule acts on the terms carried by protocol messages.
    pub fn set_journal_term(&mut self, term: u64) {
        if let Some(journal) = self.journal.as_mut() {
            journal.set_term(term);
        }
    }

    /// The term stamped into new journal frames (`None` without a
    /// journal).
    #[must_use]
    pub fn journal_term(&self) -> Option<u64> {
        self.journal.as_ref().map(ServerJournal::term)
    }

    /// Framing-layer journal counters, when a journal is attached.
    #[must_use]
    pub fn journal_stats(&self) -> Option<jaap_wal::JournalStats> {
        self.journal.as_ref().map(ServerJournal::stats)
    }

    /// Current journal length in bytes, when a journal is attached.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store fails.
    pub fn journal_len_bytes(&self) -> Result<Option<u64>, CoalitionError> {
        self.journal
            .as_ref()
            .map(ServerJournal::len_bytes)
            .transpose()
    }

    /// Sets (or clears) the auto-snapshot threshold: after any append that
    /// pushes the journal past `bytes`, the log is compacted into a
    /// snapshot.
    pub fn set_snapshot_threshold(&mut self, bytes: Option<u64>) {
        self.snapshot_threshold = bytes;
    }

    /// Compacts the journal into a snapshot: current configuration, every
    /// retained admission (at its original clock, so recovery re-derives
    /// the same beliefs), final clock, object states, audit lines, and the
    /// replay window. Decision history is folded into its effects.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] without a journal;
    /// [`CoalitionError::Journal`] if the store fails.
    pub fn snapshot_journal(&mut self) -> Result<(), CoalitionError> {
        self.ensure_unpoisoned()?;
        let Some(journal) = &self.journal else {
            return Err(CoalitionError::Config("no journal attached".into()));
        };
        self.snapshot_pending = false;
        let memo_on = self.engine.derivation_memo_stats().is_some();
        let mut records = vec![
            JournalRecord::Config(ConfigKind::LogicChecking, i64::from(self.logic_checking)),
            JournalRecord::Config(
                ConfigKind::ReplayProtection,
                i64::from(self.replay_protection),
            ),
            JournalRecord::Config(
                ConfigKind::ReplayCapacity,
                i64::try_from(self.seen_capacity).unwrap_or(i64::MAX),
            ),
            JournalRecord::Config(
                ConfigKind::AuditCapacity,
                i64::try_from(self.audit_capacity).unwrap_or(i64::MAX),
            ),
            JournalRecord::Config(
                ConfigKind::VerifyCache,
                i64::from(self.verify_cache.is_some()),
            ),
            JournalRecord::Config(ConfigKind::DerivationMemo, i64::from(memo_on)),
            JournalRecord::Config(ConfigKind::CryptoPrecomp, i64::from(self.crypto_precomp)),
            JournalRecord::Config(ConfigKind::BatchVerify, i64::from(self.batch_verify)),
        ];
        if memo_on {
            records.push(JournalRecord::Config(
                ConfigKind::DerivationMemoCapacity,
                self.memo_capacity
                    .and_then(|c| i64::try_from(c).ok())
                    .unwrap_or(-1),
            ));
        }
        if self.verify_cache.is_some() {
            records.push(JournalRecord::Config(
                ConfigKind::VerifyCacheCapacity,
                self.verify_cache_capacity
                    .and_then(|c| i64::try_from(c).ok())
                    .unwrap_or(-1),
            ));
        }
        if let Some(window) = self.revocation_recency {
            records.push(JournalRecord::Config(ConfigKind::RecencyWindow, window));
        }
        // Admissions replay at their original clocks: belief derivations
        // depend on the observer's time, so the snapshot interleaves the
        // clock with the signed artifacts it retains verbatim.
        for (at, record) in journal.admissions() {
            records.push(JournalRecord::ClockAdvance(*at));
            records.push(record.clone());
        }
        records.push(JournalRecord::ClockAdvance(self.engine.now()));
        for obj in &self.objects {
            records.push(JournalRecord::ObjectState {
                name: obj.name.clone(),
                acl: obj.acl.clone(),
                version: obj.version,
                content: obj.content.clone(),
            });
        }
        // Audit lines survive as effect-free decision rows (the version
        // bumps they caused are already folded into the object states).
        // Shed lines are volatile Indeterminate outcomes — journal-cheap by
        // contract — and do not survive compaction.
        for entry in self.audit.iter().filter(|e| e.shed.is_none()) {
            records.push(JournalRecord::Decision(DecisionRecord {
                at: entry.at,
                principals: entry.principals.clone(),
                operation: entry.operation.clone(),
                granted: entry.granted,
                detail: entry.detail.clone(),
                cached_checks: entry.cached_checks,
                retry_trace: entry.retry_trace.clone(),
                axioms: 0,
                signature_checks: 0,
                unavailable: false,
                version_bump: false,
                replay_digest: None,
            }));
        }
        for digest in &self.seen_order {
            if let Some(d) = self.seen.get(digest) {
                records.push(JournalRecord::ReplaySeen(ReplayRecord {
                    digest: digest.clone(),
                    granted: d.granted,
                    detail: d.detail.clone(),
                    axioms: d.axiom_applications,
                    signature_checks: d.signature_checks,
                    cached_signature_checks: d.cached_signature_checks,
                    unavailable: d.unavailable,
                }));
            }
        }
        if let Err(e) = self
            .journal
            .as_mut()
            .expect("journal presence checked above")
            .rewrite(&records)
        {
            // A failed rewrite leaves the log in an indeterminate state
            // between two generations: fail-stop, recovery decides.
            return Err(self.poison(format!("journal snapshot rewrite failed: {e}")));
        }
        if let Some(m) = &self.metrics {
            m.journal_snapshots.inc();
        }
        Ok(())
    }

    /// Rebuilds a server from a journal left behind by a crashed one.
    ///
    /// `store` must be the same trust store the crashed server ran with
    /// (trust anchors are configuration, not journaled state): every
    /// journaled certificate is **re-verified** against it during replay
    /// rather than trusted from disk. A torn or corrupt journal tail is
    /// truncated, never replayed; the report says how much was dropped.
    ///
    /// The recovered server is decision-for-decision identical to one that
    /// never crashed, with two deliberate exceptions: the derivation-memo
    /// epoch is bumped and the verification cache restarts empty — derived
    /// state never survives a crash, it is always re-derived.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Journal`] if the store fails or a checksummed
    /// record is undecodable or no longer verifies.
    pub fn recover(
        name: impl Into<String>,
        store: TrustStore,
        journal_store: Box<dyn jaap_wal::JournalStore>,
    ) -> Result<(Self, RecoveryReport), CoalitionError> {
        let mut journal = ServerJournal::new(journal_store);
        let (records, replay) = journal.replay()?;
        let mut server = CoalitionServer::new(name, store);
        let records_replayed = records.len();
        let mut admissions = Vec::new();
        for record in records {
            if record.is_admission() {
                // The admission's original clock: ClockAdvance records
                // precede it in the log, so the engine is already there.
                admissions.push((server.engine.now(), record.clone()));
            }
            server.apply_record(record)?;
        }
        // Derived state never survives a crash: bump the belief epoch
        // (clears the derivation memo and retires any epoch-tagged state
        // of the pre-crash process) and restart the verify cache empty.
        server.engine.invalidate_derived_state();
        if server.verify_cache.is_some() {
            // Restart empty, but at the journaled capacity bound.
            let cache = match server.verify_cache_capacity {
                Some(capacity) => VerifyCache::with_capacity(Some(capacity)),
                None => VerifyCache::new(),
            };
            if let Some(m) = &server.metrics {
                cache.set_metrics(Some(&m.registry));
            }
            server.verify_cache = Some(cache);
        }
        journal.set_admissions(admissions);
        server.journal = Some(journal);
        Ok((
            server,
            RecoveryReport {
                records_replayed,
                bytes_scanned: replay.bytes_scanned,
                truncation: replay.truncation,
                truncated_bytes: replay.truncated_bytes,
            },
        ))
    }

    /// Applies one replayed record. The journal field is still `None`
    /// while this runs (recovery attaches it last), so the public
    /// mutators called here do not re-journal what they replay.
    fn apply_record(&mut self, record: JournalRecord) -> Result<(), CoalitionError> {
        match record {
            JournalRecord::ClockAdvance(to) => self.advance_clock(to)?,
            JournalRecord::Config(kind, value) => self.apply_config(kind, value)?,
            JournalRecord::ObjectAdded { name, acl } => self.add_object(name, acl)?,
            JournalRecord::AclSet { name, acl } => self.set_acl(&name, acl)?,
            JournalRecord::ContentSet { name, content } => self.set_content(&name, content)?,
            // Admission errors are ignored on replay: the record was
            // journaled before the original admission ran, so the original
            // server saw the identical error and kept running — replay
            // must reproduce the same partial effect, not halt.
            JournalRecord::IdentityRevocation(rev) => {
                let _ = self.admit_identity_revocation(&rev);
            }
            JournalRecord::AttributeRevocation(rev) => {
                let _ = self.admit_attribute_revocation(&rev);
            }
            JournalRecord::Crl(crl) => {
                let _ = self.admit_crl(&crl);
            }
            JournalRecord::RequestCerts {
                identity,
                threshold,
                attribute,
            } => self.replay_request_certs(&identity, &threshold, &attribute)?,
            JournalRecord::Decision(d) => self.replay_decision(d),
            JournalRecord::ObjectState {
                name,
                acl,
                version,
                content,
            } => {
                if let Some(obj) = self.objects.iter_mut().find(|o| o.name == name) {
                    obj.acl = acl;
                    obj.version = version;
                    obj.content = content;
                } else {
                    self.objects.push(CoalitionObject {
                        name,
                        acl,
                        version,
                        content,
                    });
                }
            }
            JournalRecord::ReplaySeen(r) => {
                let decision = ServerDecision {
                    granted: r.granted,
                    detail: r.detail,
                    derivation: None,
                    axiom_applications: r.axioms,
                    signature_checks: r.signature_checks,
                    cached_signature_checks: r.cached_signature_checks,
                    response: None,
                    unavailable: r.unavailable,
                    shed: None,
                };
                self.insert_seen(r.digest, decision);
            }
        }
        Ok(())
    }

    /// Applies a replayed configuration record via the public setters
    /// (which do not re-journal: no journal is attached during replay).
    fn apply_config(&mut self, kind: ConfigKind, value: i64) -> Result<(), CoalitionError> {
        let as_capacity = || usize::try_from(value).unwrap_or(usize::MAX);
        match kind {
            ConfigKind::LogicChecking => self.set_logic_checking(value != 0),
            ConfigKind::ReplayProtection => self.set_replay_protection(value != 0),
            ConfigKind::ReplayCapacity => self.set_replay_protection_capacity(as_capacity()),
            ConfigKind::AuditCapacity => self.set_audit_capacity(as_capacity()),
            ConfigKind::VerifyCache => self.set_verification_cache(value != 0),
            ConfigKind::DerivationMemo => self.set_derivation_memo(value != 0),
            ConfigKind::RecencyWindow => self.set_revocation_recency(value),
            ConfigKind::DerivationMemoCapacity => {
                let capacity = (value >= 0).then(|| usize::try_from(value).unwrap_or(usize::MAX));
                self.set_derivation_memo_capacity(capacity)
            }
            ConfigKind::VerifyCacheCapacity => {
                let capacity = (value >= 0).then(|| usize::try_from(value).unwrap_or(usize::MAX));
                self.set_verify_cache_capacity(capacity)
            }
            ConfigKind::CryptoPrecomp => self.set_crypto_precomp(value != 0),
            ConfigKind::BatchVerify => self.set_batch_verify(value != 0),
        }
    }

    /// Re-verifies and re-admits a journaled request's certificates in the
    /// exact order the original authorization did: identity certificates
    /// first (stopping at the first admission error, as step 1 of §4.3
    /// does), then threshold + single-subject attribute certificates
    /// (stopping likewise, as step 2 does). Re-admissions of
    /// already-known bodies are deduplicated by the engine.
    fn replay_request_certs(
        &mut self,
        identity: &[jaap_pki::IdentityCertificate],
        threshold: &[jaap_pki::ThresholdAttributeCertificate],
        attribute: &[jaap_pki::AttributeCertificate],
    ) -> Result<(), CoalitionError> {
        let reverify = |e: jaap_pki::PkiError| {
            CoalitionError::Journal(format!("journaled certificate no longer verifies: {e}"))
        };
        let mut identity_msgs = Vec::with_capacity(identity.len());
        for cert in identity {
            identity_msgs.push(self.store.idealize_identity(cert).map_err(reverify)?);
        }
        let mut attribute_msgs = Vec::with_capacity(threshold.len() + attribute.len());
        for cert in threshold {
            attribute_msgs.push(
                self.store
                    .idealize_threshold_attribute(cert)
                    .map_err(reverify)?,
            );
        }
        for cert in attribute {
            attribute_msgs.push(self.store.idealize_attribute(cert).map_err(reverify)?);
        }
        for msg in &identity_msgs {
            if self.engine.admit_certificate(msg).is_err() {
                return Ok(());
            }
        }
        for msg in &attribute_msgs {
            if self.engine.admit_certificate(msg).is_err() {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Replays a decision record: audit line, version bump, replay-window
    /// entry. No cryptography or logic re-runs — the decision's effects
    /// are applied verbatim.
    fn replay_decision(&mut self, d: DecisionRecord) {
        if d.version_bump {
            if let Some(obj) = self
                .objects
                .iter_mut()
                .find(|o| o.name == d.operation.object)
            {
                obj.version += 1;
            }
        }
        if let Some(digest) = d.replay_digest.clone() {
            let decision = ServerDecision {
                granted: d.granted,
                detail: (!d.granted).then(|| d.detail.clone()),
                derivation: None,
                axiom_applications: d.axioms,
                signature_checks: d.signature_checks,
                cached_signature_checks: d.cached_checks,
                response: None,
                unavailable: d.unavailable,
                shed: None,
            };
            self.insert_seen(digest, decision);
        }
        self.push_audit(AuditEntry {
            at: d.at,
            principals: d.principals,
            operation: d.operation,
            granted: d.granted,
            detail: d.detail,
            cached_checks: d.cached_checks,
            retry_trace: d.retry_trace,
            shed: None,
        });
    }

    /// ACL lookup plus the §4.3 logic phase (or the D3 crypto-only check)
    /// over already-verified artifacts.
    fn authorize_verified(
        &mut self,
        req: &JointAccessRequest,
        verified: CryptoVerified,
    ) -> Result<(Option<Arc<Derivation>>, usize), String> {
        let acl_started = self.metrics.as_ref().map(|_| Instant::now());
        let acl = self
            .object(&req.operation.object)
            .map(|o| o.acl.clone())
            .ok_or_else(|| format!("unknown object {}", req.operation.object));
        if let (Some(m), Some(t)) = (&self.metrics, acl_started) {
            m.acl_ns.record_duration(t.elapsed());
        }
        let acl = acl?;

        if !self.logic_checking {
            // D3 ablation: crypto-only monitor does a direct structural
            // check: some threshold cert grants an ACL group and enough
            // distinct signers are members.
            return crypto_only_decision(req, &acl).map(|()| (None, 0));
        }

        // Logic step: the four-step §4.3 protocol.
        let request = AccessRequest {
            identity_certs: verified.identity_msgs,
            attribute_certs: verified.attribute_msgs,
            signed_statements: verified.signed_statements,
            operation: req.operation.clone(),
            at: req.at,
        };
        let logic_started = self.metrics.as_ref().map(|_| Instant::now());
        let decision = protocol::authorize(&mut self.engine, &request, &acl);
        if let (Some(m), Some(t)) = (&self.metrics, logic_started) {
            m.logic_ns.record_duration(t.elapsed());
        }
        if decision.granted {
            Ok((decision.derivation, decision.axiom_applications))
        } else {
            Err(decision
                .reason
                .map_or_else(|| "denied".to_string(), |r| r.to_string()))
        }
    }
}

/// The crypto phase: verify and idealize every certificate (through the
/// cache when one is supplied) and verify every statement signature. Pure
/// in the server state — safe to run on worker threads.
///
/// `use_precomp` routes individual verifications through the trust
/// store's shared fixed-base precomputation cache; `precheck` carries the
/// batch pre-pass vouchers ([`CoalitionServer::batch_precheck`]). Both
/// accept/reject exactly as the plain path and leave the check counters
/// unchanged, so decisions and audit lines are byte-identical either way.
pub(crate) fn crypto_verify(
    store: &TrustStore,
    cache: Option<&VerifyCache>,
    now: Time,
    req: &JointAccessRequest,
    use_precomp: bool,
    precheck: Option<&CryptoPrecheck>,
) -> CryptoOutcome {
    let mut checks = 0usize;
    let mut cached = 0usize;
    let result = crypto_verify_inner(
        store,
        cache,
        now,
        req,
        use_precomp,
        precheck,
        &mut checks,
        &mut cached,
    );
    CryptoOutcome {
        signature_checks: checks,
        cached_signature_checks: cached,
        result,
    }
}

#[allow(clippy::too_many_arguments)]
fn crypto_verify_inner(
    store: &TrustStore,
    cache: Option<&VerifyCache>,
    now: Time,
    req: &JointAccessRequest,
    use_precomp: bool,
    precheck: Option<&CryptoPrecheck>,
    checks: &mut usize,
    cached: &mut usize,
) -> Result<CryptoVerified, String> {
    // Crypto step 1: verify and idealize certificates.
    let mut identity_msgs = Vec::new();
    for (ci, cert) in req.identity_certs.iter().enumerate() {
        let digest = cache.is_some().then(|| cache::identity_digest(cert));
        let key = cache
            .and_then(|_| store.ca_key(&cert.issuer))
            .and_then(|ca_key| digest.clone().map(|d| (d, key_name(ca_key).to_string())));
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            if let Some(msg) = cache.lookup(key, now) {
                *cached += 1;
                identity_msgs.push(msg);
                continue;
            }
        }
        let vouched = precheck.is_some_and(|p| p.id.get(ci).copied().unwrap_or(false));
        *checks += 1;
        let msg = store
            .idealize_identity_with(cert, use_precomp, vouched)
            .map_err(|e| format!("identity certificate: {e}"))?;
        // A batch-vouched certificate never populates the cache: cache
        // entries must rest on an individual verification.
        if !vouched {
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.insert(
                    key,
                    msg.clone(),
                    cert.validity.end,
                    vec![cert.subject.clone()],
                    None,
                );
            }
        }
        identity_msgs.push(msg);
    }
    let aa_key_id = || store.aa_key().map(|k| key_name(k.rsa()).to_string());
    let mut attribute_msgs = Vec::new();
    for (ci, cert) in req.threshold_certs.iter().enumerate() {
        let digest = cache.is_some().then(|| cache::threshold_digest(cert));
        let key = cache
            .and_then(|_| aa_key_id())
            .and_then(|kid| digest.clone().map(|d| (d, kid)));
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            if let Some(msg) = cache.lookup(key, now) {
                *cached += 1;
                attribute_msgs.push(msg);
                continue;
            }
        }
        let vouched = precheck.is_some_and(|p| p.thr.get(ci).copied().unwrap_or(false));
        *checks += 1;
        let msg = store
            .idealize_threshold_attribute_with(cert, use_precomp, vouched)
            .map_err(|e| format!("threshold attribute certificate: {e}"))?;
        if !vouched {
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.insert(
                    key,
                    msg.clone(),
                    cert.validity.end,
                    cert.subject
                        .members
                        .iter()
                        .map(|(name, _)| name.clone())
                        .collect(),
                    Some(cert.group.as_str().to_string()),
                );
            }
        }
        attribute_msgs.push(msg);
    }
    for (ci, cert) in req.attribute_certs.iter().enumerate() {
        let digest = cache.is_some().then(|| cache::attribute_digest(cert));
        let key = cache
            .and_then(|_| aa_key_id())
            .and_then(|kid| digest.clone().map(|d| (d, kid)));
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            if let Some(msg) = cache.lookup(key, now) {
                *cached += 1;
                attribute_msgs.push(msg);
                continue;
            }
        }
        let vouched = precheck.is_some_and(|p| p.attr.get(ci).copied().unwrap_or(false));
        *checks += 1;
        let msg = store
            .idealize_attribute_with(cert, use_precomp, vouched)
            .map_err(|e| format!("attribute certificate: {e}"))?;
        if !vouched {
            if let (Some(cache), Some(key)) = (cache, key) {
                cache.insert(
                    key,
                    msg.clone(),
                    cert.validity.end,
                    vec![cert.subject.clone()],
                    Some(cert.group.as_str().to_string()),
                );
            }
        }
        attribute_msgs.push(msg);
    }

    // Crypto step 2: verify the request-statement signatures against the
    // keys certified for the signers. Statements are fresh per request and
    // never cached (and `recurring = false` below: a one-shot residue
    // earns no fixed-base ladder, only the shared Montgomery context).
    let mut signed_statements = Vec::new();
    for stmt in &req.statements {
        let cert = req
            .identity_certs
            .iter()
            .find(|c| c.subject == stmt.principal)
            .ok_or_else(|| format!("no identity certificate presented for {}", stmt.principal))?;
        let body = statement_bytes(&stmt.principal, &req.operation, stmt.at);
        *checks += 1;
        let ok = if use_precomp {
            cert.subject_key.verify_with(
                Some(store.precomp().as_ref()),
                false,
                &body,
                &stmt.signature,
            )
        } else {
            cert.subject_key.verify(&body, &stmt.signature)
        };
        if !ok {
            return Err(format!(
                "request signature by {} does not verify",
                stmt.principal
            ));
        }
        signed_statements.push(SignedStatement::new(
            stmt.principal.as_str(),
            key_name(&cert.subject_key),
            &req.operation,
            stmt.at,
        ));
    }

    Ok(CryptoVerified {
        identity_msgs,
        attribute_msgs,
        signed_statements,
    })
}

/// The crypto-only baseline monitor (no derivations, no revocation
/// reasoning — exactly what the ablation measures the absence of).
fn crypto_only_decision(req: &JointAccessRequest, acl: &Acl) -> Result<(), String> {
    for cert in &req.threshold_certs {
        if !acl.permits(&cert.group, &req.operation.action) {
            continue;
        }
        if !(cert.validity.contains(req.at)) {
            continue;
        }
        let distinct_signers = cert
            .subject
            .members
            .iter()
            .filter(|(name, _)| req.statements.iter().any(|s| &s.principal == name))
            .count();
        if distinct_signers >= cert.subject.m {
            return Ok(());
        }
    }
    for cert in &req.attribute_certs {
        if acl.permits(&cert.group, &req.operation.action)
            && cert.validity.contains(req.at)
            && req.statements.iter().any(|s| s.principal == cert.subject)
        {
            return Ok(());
        }
    }
    Err("crypto-only monitor: no certificate authorizes the request".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CoalitionBuilder;

    #[test]
    fn scenario_server_grants_and_audits() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(1)
            .build()
            .expect("build");
        let d = c.request_write(&["User_D1", "User_D2"]).expect("request");
        assert!(d.granted);
        assert!(d.signature_checks >= 5); // 2 id certs + 1 AC + 2 statements
        assert_eq!(d.cached_signature_checks, 0); // cache off by default
        assert!(d.axiom_applications > 0);
        let server = c.server();
        assert_eq!(server.audit_log().len(), 1);
        assert!(server.audit_log()[0].granted);
        assert_eq!(server.audit_log()[0].cached_checks, 0);
        assert_eq!(server.object("Object O").expect("obj").version, 1);
    }

    #[test]
    fn denied_request_leaves_version_unchanged() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(2)
            .build()
            .expect("build");
        let d = c.request_write(&["User_D1"]).expect("request");
        assert!(!d.granted);
        assert_eq!(c.server().object("Object O").expect("obj").version, 0);
        assert!(!c.server().audit_log()[0].granted);
    }

    #[test]
    fn crypto_only_ablation_grants_but_produces_no_proof() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(3)
            .build()
            .expect("build");
        c.server_mut().set_logic_checking(false).expect("config");
        let d = c.request_write(&["User_D1", "User_D3"]).expect("request");
        assert!(d.granted);
        assert!(d.derivation.is_none());
        assert_eq!(d.axiom_applications, 0);
        let denied = c.request_write(&["User_D2"]).expect("request");
        assert!(!denied.granted);
    }

    #[test]
    fn unknown_object_denied() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(4)
            .build()
            .expect("build");
        let d = c
            .request_operation(&["User_D1", "User_D2"], Operation::new("write", "Ghost"))
            .expect("request");
        assert!(!d.granted);
        assert!(d.detail.expect("detail").contains("unknown object"));
    }

    #[test]
    fn second_identical_presentation_hits_cache() {
        let mut c = CoalitionBuilder::new()
            .domains(&["D1", "D2", "D3"])
            .key_bits(192)
            .seed(11)
            .build()
            .expect("build");
        c.server_mut().set_verification_cache(true).expect("config");
        let first = c.request_write(&["User_D1", "User_D2"]).expect("first");
        assert!(first.granted);
        assert_eq!(first.cached_signature_checks, 0);
        c.advance_time(Time(12)).expect("clock");
        let second = c.request_write(&["User_D1", "User_D2"]).expect("second");
        assert!(second.granted);
        // 2 identity certs + 1 threshold AC come from the cache; the two
        // statement signatures are always verified afresh.
        assert_eq!(second.cached_signature_checks, 3);
        assert_eq!(second.signature_checks, 2);
        let stats = c.server().verification_cache().expect("cache on").stats();
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn verify_batch_matches_serial_decisions() {
        let build = || {
            CoalitionBuilder::new()
                .domains(&["D1", "D2", "D3"])
                .key_bits(192)
                .seed(12)
                .build()
                .expect("build")
        };
        let mut serial = build();
        let mut batch = build();
        let mut requests = Vec::new();
        for (t, signers) in [
            (20, vec!["User_D1", "User_D2"]),
            (21, vec!["User_D3"]),
            (22, vec!["User_D2", "User_D3"]),
            (23, vec!["User_D1"]),
        ] {
            serial.advance_time(Time(t)).expect("clock");
            batch.advance_time(Time(t)).expect("clock");
            requests.push(
                batch
                    .build_request(&signers, Operation::new("write", "Object O"))
                    .expect("request"),
            );
        }
        let expected: Vec<ServerDecision> = requests
            .iter()
            .map(|r| serial.server_mut().handle_request(r))
            .collect();
        let got = batch.server_mut().verify_batch(&requests, 4);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.granted, e.granted);
            assert_eq!(g.detail, e.detail);
            assert_eq!(g.signature_checks, e.signature_checks);
        }
        assert_eq!(
            batch.server().object("Object O").expect("obj").version,
            serial.server().object("Object O").expect("obj").version
        );
        assert_eq!(batch.server().audit_log().len(), 4);
    }
}
