//! Member domains: each runs its own identity CA and registers users
//! (Requirement I — "each autonomous domain will typically have its own
//! identity certificate authority for distributing and revoking identity
//! certificates to users registered in that domain").

use jaap_core::certs::Validity;
use jaap_core::syntax::Time;
use jaap_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use jaap_pki::{CertificateAuthority, IdentityCertificate};
use rand::RngCore;

use crate::CoalitionError;

/// A coalition user: a principal with a signing key pair, registered in
/// exactly one domain.
#[derive(Debug, Clone)]
pub struct UserAgent {
    name: String,
    domain: String,
    keypair: RsaKeyPair,
}

impl UserAgent {
    /// Creates a user with a fresh key pair.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new(
        name: impl Into<String>,
        domain: impl Into<String>,
        rng: &mut dyn RngCore,
        bits: usize,
    ) -> Result<Self, CoalitionError> {
        Ok(UserAgent {
            name: name.into(),
            domain: domain.into(),
            keypair: RsaKeyPair::generate(rng, bits)?,
        })
    }

    /// The user's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The user's home domain.
    #[must_use]
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The user's public key.
    #[must_use]
    pub fn public(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Signs canonical bytes (used for access-request statements).
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn sign(&self, body: &[u8]) -> Result<RsaSignature, CoalitionError> {
        Ok(self.keypair.sign(body)?)
    }

    /// Replaces the user's key pair (used after identity revocation).
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn rekey(&mut self, rng: &mut dyn RngCore, bits: usize) -> Result<(), CoalitionError> {
        self.keypair = RsaKeyPair::generate(rng, bits)?;
        Ok(())
    }
}

/// A member domain: a name, an identity CA, and registered users.
#[derive(Debug)]
pub struct Domain {
    name: String,
    ca: CertificateAuthority,
    users: Vec<UserAgent>,
}

impl Domain {
    /// Creates a domain with a fresh CA.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new(
        name: impl Into<String>,
        rng: &mut dyn RngCore,
        bits: usize,
    ) -> Result<Self, CoalitionError> {
        let name = name.into();
        let ca = CertificateAuthority::new(format!("CA_{name}"), rng, bits)
            .map_err(CoalitionError::Crypto)?;
        Ok(Domain {
            name,
            ca,
            users: Vec::new(),
        })
    }

    /// The domain name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain's identity CA.
    #[must_use]
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// Registers a user and issues them an identity certificate.
    ///
    /// # Errors
    ///
    /// Propagates key-generation and signing failures.
    pub fn register_user(
        &mut self,
        name: impl Into<String>,
        rng: &mut dyn RngCore,
        bits: usize,
        validity: Validity,
        now: Time,
    ) -> Result<IdentityCertificate, CoalitionError> {
        let user = UserAgent::new(name, &self.name, rng, bits)?;
        let cert = self
            .ca
            .issue_identity(user.name(), user.public(), validity, now)?;
        self.users.push(user);
        Ok(cert)
    }

    /// Looks up a registered user.
    #[must_use]
    pub fn user(&self, name: &str) -> Option<&UserAgent> {
        self.users.iter().find(|u| u.name() == name)
    }

    /// Mutable lookup.
    #[must_use]
    pub fn user_mut(&mut self, name: &str) -> Option<&mut UserAgent> {
        self.users.iter_mut().find(|u| u.name() == name)
    }

    /// All registered users.
    #[must_use]
    pub fn users(&self) -> &[UserAgent] {
        &self.users
    }

    /// Re-issues an identity certificate for an existing user (e.g. after
    /// coalition dynamics force re-keying).
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown user; signing failures.
    pub fn reissue_identity(
        &self,
        user_name: &str,
        validity: Validity,
        now: Time,
    ) -> Result<IdentityCertificate, CoalitionError> {
        let user = self
            .user(user_name)
            .ok_or_else(|| CoalitionError::Config(format!("unknown user {user_name}")))?;
        Ok(self
            .ca
            .issue_identity(user.name(), user.public(), validity, now)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn domain_registers_users_with_certificates() {
        let mut r = rng();
        let mut d = Domain::new("D1", &mut r, 192).expect("domain");
        let cert = d
            .register_user(
                "User_D1",
                &mut r,
                192,
                Validity::new(Time(0), Time(100)),
                Time(1),
            )
            .expect("register");
        assert_eq!(cert.issuer, "CA_D1");
        assert_eq!(cert.subject, "User_D1");
        assert!(cert.verify(d.ca().public()).is_ok());
        assert!(d.user("User_D1").is_some());
        assert!(d.user("Nobody").is_none());
        assert_eq!(d.users().len(), 1);
    }

    #[test]
    fn user_signs_verifiably() {
        let mut r = rng();
        let u = UserAgent::new("U", "D", &mut r, 192).expect("user");
        let sig = u.sign(b"request").expect("sign");
        assert!(u.public().verify(b"request", &sig));
        assert_eq!(u.domain(), "D");
    }

    #[test]
    fn rekey_invalidates_old_signatures() {
        let mut r = rng();
        let mut u = UserAgent::new("U", "D", &mut r, 192).expect("user");
        let old_pub = u.public().clone();
        let sig = u.sign(b"before").expect("sign");
        u.rekey(&mut r, 192).expect("rekey");
        assert!(old_pub.verify(b"before", &sig));
        assert!(!u.public().verify(b"before", &sig));
        assert_ne!(u.public(), &old_pub);
    }

    #[test]
    fn reissue_identity_for_known_user_only() {
        let mut r = rng();
        let mut d = Domain::new("D1", &mut r, 192).expect("domain");
        d.register_user("U", &mut r, 192, Validity::new(Time(0), Time(10)), Time(1))
            .expect("register");
        assert!(d
            .reissue_identity("U", Validity::new(Time(10), Time(20)), Time(10))
            .is_ok());
        assert!(matches!(
            d.reissue_identity("ghost", Validity::new(Time(0), Time(1)), Time(0)),
            Err(CoalitionError::Config(_))
        ));
    }
}
