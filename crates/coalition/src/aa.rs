//! The coalition Attribute Authority.
//!
//! Two implementations, mirroring §2.2:
//!
//! * [`CoalitionAa`] — **Case II**: the AA's private key is shared among
//!   the member domains ([`jaap_crypto::shared`]); every certificate it
//!   distributes is signed with the joint signature protocol, so *no*
//!   domain can unilaterally issue privileges.
//! * [`LockboxAa`] — **Case I baseline**: a conventional key pair held in a
//!   (software-simulated) hardware lockbox that only signs when presented
//!   with *all* operator passwords. The paper's attack surfaces are
//!   explicit methods: an external penetration of the single host, or a
//!   single privileged insider with maintenance access, exposes the key.

use jaap_core::certs::Validity;
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::joint;
use jaap_crypto::rsa::{RsaKeyPair, RsaSignature};
use jaap_crypto::session::{SessionConfig, SessionReport, SigningSession};
use jaap_crypto::shared::{KeyShare, SharedPublicKey, SharedRsaKey};
use jaap_net::FaultPlan;
use jaap_obs::MetricsRegistry;
use jaap_pki::attribute::{AttributeCertificate, ThresholdAttributeCertificate, ThresholdSubject};
use rand::RngCore;

use crate::CoalitionError;

/// How the AA applies joint signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigningMode {
    /// Combine shares in-process (fast path for tests/benches).
    #[default]
    Local,
    /// Run the §3.2 requestor/co-signer protocol over the simulated
    /// network.
    Networked,
}

/// The Case II coalition AA: a shared public key whose private-exponent
/// shares are held by the member domains.
#[derive(Debug, Clone)]
pub struct CoalitionAa {
    name: String,
    public: SharedPublicKey,
    /// Per-domain shares, indexed in domain order. In a real deployment
    /// each share lives inside its domain; the struct holds them together
    /// because the simulation *is* all the domains.
    shares: Vec<KeyShare>,
    domains: Vec<String>,
    mode: SigningMode,
    /// Fault model applied to networked signing sessions.
    fault_plan: FaultPlan,
    /// Timeout/retry policy of networked signing sessions.
    session_config: SessionConfig,
    /// When set, networked signing sessions record round latencies,
    /// retries/backoff, failovers and per-link network outcomes here.
    metrics: Option<MetricsRegistry>,
}

impl CoalitionAa {
    /// Establishes the AA with a dealer-based key split (fast path).
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn establish_dealt(
        name: impl Into<String>,
        domains: Vec<String>,
        rng: &mut dyn RngCore,
        bits: usize,
    ) -> Result<Self, CoalitionError> {
        let (public, shares) = SharedRsaKey::deal(rng, bits, domains.len())?;
        Ok(CoalitionAa {
            name: name.into(),
            public,
            shares,
            domains,
            mode: SigningMode::Local,
            fault_plan: FaultPlan::reliable(),
            session_config: SessionConfig::default(),
            metrics: None,
        })
    }

    /// Establishes the AA by running the full Boneh–Franklin distributed
    /// key generation among the domains ("without a trusted server",
    /// Requirement II).
    ///
    /// # Errors
    ///
    /// Propagates protocol failures.
    pub fn establish_distributed(
        name: impl Into<String>,
        domains: Vec<String>,
        bits: usize,
        seed: u64,
    ) -> Result<(Self, jaap_crypto::shared::KeygenStats), CoalitionError> {
        let (public, shares, stats) = SharedRsaKey::generate(bits, domains.len(), seed)?;
        Ok((
            CoalitionAa {
                name: name.into(),
                public,
                shares,
                domains,
                mode: SigningMode::Local,
                fault_plan: FaultPlan::reliable(),
                session_config: SessionConfig::default(),
                metrics: None,
            },
            stats,
        ))
    }

    /// Selects how joint signatures are applied.
    pub fn set_signing_mode(&mut self, mode: SigningMode) {
        self.mode = mode;
    }

    /// The current signing mode.
    #[must_use]
    pub fn signing_mode(&self) -> SigningMode {
        self.mode
    }

    /// Sets the fault model applied to networked signing sessions.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Sets the timeout/retry policy of networked signing sessions.
    pub fn set_session_config(&mut self, config: SessionConfig) {
        self.session_config = config;
    }

    /// Attaches (or detaches, with `None`) the registry networked signing
    /// sessions report into.
    pub fn set_metrics(&mut self, metrics: Option<MetricsRegistry>) {
        self.metrics = metrics;
    }

    /// The AA's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared public key.
    #[must_use]
    pub fn public(&self) -> &SharedPublicKey {
        &self.public
    }

    /// The member domains (shareholders).
    #[must_use]
    pub fn domains(&self) -> &[String] {
        &self.domains
    }

    /// One domain's key share (for refresh / collusion experiments).
    #[must_use]
    pub fn share_of(&self, domain: &str) -> Option<&KeyShare> {
        self.domains
            .iter()
            .position(|d| d == domain)
            .and_then(|i| self.shares.get(i))
    }

    /// All shares (simulation-only accessor).
    #[must_use]
    pub fn shares(&self) -> &[KeyShare] {
        &self.shares
    }

    /// Mutable access for proactive refresh.
    #[must_use]
    pub fn shares_mut(&mut self) -> &mut [KeyShare] {
        &mut self.shares
    }

    /// Applies the joint signature of all domains to `body`.
    ///
    /// # Errors
    ///
    /// Propagates joint-signing failures; in [`SigningMode::Networked`] this
    /// includes [`jaap_crypto::CryptoError::QuorumUnreachable`] when the
    /// configured fault plan keeps a co-signer silent past the retry budget.
    pub fn joint_sign(&self, body: &[u8]) -> Result<RsaSignature, CoalitionError> {
        self.joint_sign_with_report(body).0
    }

    /// Like [`CoalitionAa::joint_sign`], but also returns the
    /// [`SessionReport`] — populated in [`SigningMode::Networked`], default
    /// in [`SigningMode::Local`] — so callers can audit retries and
    /// failovers even when signing fails.
    pub fn joint_sign_with_report(
        &self,
        body: &[u8],
    ) -> (Result<RsaSignature, CoalitionError>, SessionReport) {
        match self.mode {
            SigningMode::Local => (
                joint::sign_locally(&self.public, &self.shares, body).map_err(CoalitionError::from),
                SessionReport::default(),
            ),
            SigningMode::Networked => {
                let (outcome, report, _stats) = SigningSession::run_compound_observed(
                    &self.public,
                    &self.shares,
                    0,
                    body,
                    self.fault_plan.clone(),
                    &self.session_config,
                    self.metrics.as_ref(),
                );
                (outcome.map_err(CoalitionError::from), report)
            }
        }
    }

    /// Issues a threshold attribute certificate, jointly signed by all
    /// member domains (Requirement III: consensus on privilege
    /// distribution).
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn issue_threshold_certificate(
        &self,
        subject: ThresholdSubject,
        group: GroupId,
        validity: Validity,
        timestamp: Time,
    ) -> Result<ThresholdAttributeCertificate, CoalitionError> {
        let body = ThresholdAttributeCertificate::body_bytes(
            &self.name, &subject, &group, validity, timestamp,
        );
        let signature = self.joint_sign(&body)?;
        Ok(ThresholdAttributeCertificate {
            issuer: self.name.clone(),
            subject,
            group,
            validity,
            timestamp,
            signature,
        })
    }

    /// Issues a single-subject attribute certificate (still jointly
    /// signed).
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn issue_attribute_certificate(
        &self,
        subject: impl Into<String>,
        subject_key: &jaap_crypto::rsa::RsaPublicKey,
        group: GroupId,
        validity: Validity,
        timestamp: Time,
    ) -> Result<AttributeCertificate, CoalitionError> {
        let subject = subject.into();
        let body = AttributeCertificate::body_bytes(
            &self.name,
            &subject,
            subject_key,
            &group,
            validity,
            timestamp,
        );
        let signature = self.joint_sign(&body)?;
        Ok(AttributeCertificate {
            issuer: self.name.clone(),
            subject,
            subject_key: subject_key.clone(),
            group,
            validity,
            timestamp,
            signature,
        })
    }

    /// A *unilateral* issuance attempt by one domain: signs with only that
    /// domain's share. Returns the forged certificate so tests can confirm
    /// it does **not** verify — the executable form of Requirement III.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] for an unknown domain.
    pub fn unilateral_issue_attempt(
        &self,
        domain: &str,
        subject: ThresholdSubject,
        group: GroupId,
        validity: Validity,
        timestamp: Time,
    ) -> Result<ThresholdAttributeCertificate, CoalitionError> {
        let share = self
            .share_of(domain)
            .ok_or_else(|| CoalitionError::Config(format!("unknown domain {domain}")))?;
        let body = ThresholdAttributeCertificate::body_bytes(
            &self.name, &subject, &group, validity, timestamp,
        );
        let partial = share.sign_share(&body)?;
        Ok(ThresholdAttributeCertificate {
            issuer: self.name.clone(),
            subject,
            group,
            validity,
            timestamp,
            signature: RsaSignature::from_value(partial),
        })
    }
}

/// The Case I baseline: a conventional AA key inside a simulated hardware
/// lockbox.
#[derive(Debug)]
pub struct LockboxAa {
    name: String,
    keypair: RsaKeyPair,
    /// Operator credentials: all must be presented for a signing operation.
    operators: Vec<(String, String)>,
}

impl LockboxAa {
    /// Creates the lockbox AA with one operator password per domain.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn establish(
        name: impl Into<String>,
        operators: Vec<(String, String)>,
        rng: &mut dyn RngCore,
        bits: usize,
    ) -> Result<Self, CoalitionError> {
        Ok(LockboxAa {
            name: name.into(),
            keypair: RsaKeyPair::generate(rng, bits)?,
            operators,
        })
    }

    /// The AA name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The conventional public key.
    #[must_use]
    pub fn public(&self) -> &jaap_crypto::rsa::RsaPublicKey {
        self.keypair.public()
    }

    /// Signs `body` iff *all* operator credentials are presented — the
    /// "joint cryptographic request" of Case I.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] if any operator credential is missing or
    /// wrong.
    pub fn sign_with_credentials(
        &self,
        body: &[u8],
        presented: &[(String, String)],
    ) -> Result<RsaSignature, CoalitionError> {
        for (op, pw) in &self.operators {
            let ok = presented.iter().any(|(o, p)| o == op && p == pw);
            if !ok {
                return Err(CoalitionError::Config(format!(
                    "lockbox refuses: missing or wrong credential for operator {op}"
                )));
            }
        }
        Ok(self.keypair.sign(body)?)
    }

    /// **Attack surface**: external penetration of the AA host. The paper:
    /// "compromise of coalition AA's private key by external penetrations
    /// would result in the AA being a single point of trust failure."
    /// Returns the whole key pair — one compromise, full signing power.
    #[must_use]
    pub fn external_penetration(&self) -> RsaKeyPair {
        self.keypair.clone()
    }

    /// **Attack surface**: a privileged insider "who has access at the
    /// coalition AA for maintenance purposes". Any single legitimate
    /// operator suffices.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] if the credential is not a valid
    /// operator credential.
    pub fn insider_extraction(
        &self,
        operator: &str,
        password: &str,
    ) -> Result<RsaKeyPair, CoalitionError> {
        if self
            .operators
            .iter()
            .any(|(o, p)| o == operator && p == password)
        {
            Ok(self.keypair.clone())
        } else {
            Err(CoalitionError::Config("not a valid operator".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domains() -> Vec<String> {
        vec!["D1".into(), "D2".into(), "D3".into()]
    }

    fn subject(rng: &mut StdRng) -> ThresholdSubject {
        let members = (1..=3)
            .map(|i| {
                let kp = RsaKeyPair::generate(rng, 128).expect("key");
                (format!("User_D{i}"), kp.public().clone())
            })
            .collect();
        ThresholdSubject::new(members, 2).expect("subject")
    }

    #[test]
    fn jointly_issued_certificate_verifies() {
        let mut rng = StdRng::seed_from_u64(1);
        let aa = CoalitionAa::establish_dealt("AA", domains(), &mut rng, 192).expect("aa");
        let cert = aa
            .issue_threshold_certificate(
                subject(&mut rng),
                GroupId::new("G_write"),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        assert!(cert.verify(aa.public()).is_ok());
    }

    #[test]
    fn unilateral_issuance_does_not_verify() {
        // Requirement III, executable: one domain's share alone cannot
        // produce a valid AA signature.
        let mut rng = StdRng::seed_from_u64(2);
        let aa = CoalitionAa::establish_dealt("AA", domains(), &mut rng, 192).expect("aa");
        let forged = aa
            .unilateral_issue_attempt(
                "D1",
                subject(&mut rng),
                GroupId::new("G_write"),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("attempt");
        assert!(forged.verify(aa.public()).is_err());
    }

    #[test]
    fn networked_signing_mode_matches_local() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut aa = CoalitionAa::establish_dealt("AA", domains(), &mut rng, 192).expect("aa");
        let local = aa.joint_sign(b"body").expect("local");
        aa.set_signing_mode(SigningMode::Networked);
        let networked = aa.joint_sign(b"body").expect("networked");
        assert_eq!(local, networked);
    }

    #[test]
    fn distributed_establishment_works() {
        let (aa, stats) = CoalitionAa::establish_distributed("AA", domains(), 64, 42).expect("bf");
        assert!(stats.candidates_tried >= 1);
        let sig = aa.joint_sign(b"hello").expect("sign");
        assert!(aa.public().verify(b"hello", &sig));
    }

    #[test]
    fn share_lookup_by_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        let aa = CoalitionAa::establish_dealt("AA", domains(), &mut rng, 192).expect("aa");
        assert!(aa.share_of("D2").is_some());
        assert!(aa.share_of("D9").is_none());
        assert_eq!(aa.shares().len(), 3);
    }

    #[test]
    fn lockbox_requires_all_operators() {
        let mut rng = StdRng::seed_from_u64(5);
        let ops = vec![
            ("admin_D1".to_string(), "pw1".to_string()),
            ("admin_D2".to_string(), "pw2".to_string()),
            ("admin_D3".to_string(), "pw3".to_string()),
        ];
        let aa = LockboxAa::establish("AA", ops.clone(), &mut rng, 192).expect("aa");
        // All credentials: signs.
        let sig = aa.sign_with_credentials(b"body", &ops).expect("sign");
        assert!(aa.public().verify(b"body", &sig));
        // Missing one: refuses.
        assert!(aa.sign_with_credentials(b"body", &ops[..2]).is_err());
        // Wrong password: refuses.
        let mut bad = ops.clone();
        bad[0].1 = "wrong".into();
        assert!(aa.sign_with_credentials(b"body", &bad).is_err());
    }

    #[test]
    fn lockbox_attack_surfaces_expose_full_key() {
        let mut rng = StdRng::seed_from_u64(6);
        let ops = vec![("admin_D1".to_string(), "pw1".to_string())];
        let aa = LockboxAa::establish("AA", ops, &mut rng, 192).expect("aa");
        // External penetration: full signing power without any credentials.
        let stolen = aa.external_penetration();
        let sig = stolen.sign(b"forged policy").expect("sign");
        assert!(aa.public().verify(b"forged policy", &sig));
        // One insider: same result.
        let insider = aa.insider_extraction("admin_D1", "pw1").expect("insider");
        let sig = insider.sign(b"insider forgery").expect("sign");
        assert!(aa.public().verify(b"insider forgery", &sig));
        // A non-operator cannot use the insider path.
        assert!(aa.insider_extraction("mallory", "guess").is_err());
    }
}
