//! Coalition dynamics: domains joining and leaving (§6).
//!
//! > "Coalitions can be dynamic in that member domains may leave and new
//! > ones may join. In our scenario this would require re-keying the
//! > Attribute Authority whenever coalition dynamics occur. […] coalition
//! > dynamics would require establishing a new, shared public-key and
//! > consequently would require large-scale revocation and re-distribution
//! > of certificates."
//!
//! [`Coalition::join_domain`] and [`Coalition::leave_domain`] implement
//! exactly that: revoke the standing ACs, establish a fresh shared key
//! among the new member set, re-anchor the server's trust, and re-issue the
//! threshold certificates — reporting the costs (experiment E10).

use std::time::{Duration, Instant};

use jaap_core::protocol::Acl;
use jaap_core::syntax::{GroupId, Time};
use jaap_pki::attribute::ThresholdSubject;
use jaap_pki::TrustStore;

use crate::aa::CoalitionAa;
use crate::domain::Domain;
use crate::scenario::{Coalition, OBJECT_O};
use crate::server::CoalitionServer;
use crate::CoalitionError;

/// Cost report for one dynamics event.
#[derive(Debug, Clone)]
pub struct DynamicsReport {
    /// Member-domain count after the event.
    pub domain_count: usize,
    /// Wall time to establish the new shared AA key.
    pub rekey_wall: Duration,
    /// Certificates revoked (standing ACs under the old key).
    pub certs_revoked: usize,
    /// Certificates re-issued under the new key (each one a joint
    /// signature by all members).
    pub certs_reissued: usize,
    /// Wall time for the whole event.
    pub total_wall: Duration,
}

impl Coalition {
    /// A new domain joins the coalition: register it (with a CA and a
    /// user), then re-key the AA and re-issue certificates.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] if the domain already exists; crypto/PKI
    /// failures.
    pub fn join_domain(&mut self, name: &str) -> Result<DynamicsReport, CoalitionError> {
        if self.domains.iter().any(|d| d.name() == name) {
            return Err(CoalitionError::Config(format!(
                "domain {name} is already a member"
            )));
        }
        let start = Instant::now();
        let mut domain = Domain::new(name, &mut self.rng, self.key_bits)?;
        let cert = domain.register_user(
            format!("User_{name}"),
            &mut self.rng,
            self.key_bits,
            self.validity,
            self.server.now(),
        )?;
        self.identity_certs.push(cert);
        self.domains.push(domain);
        self.rekey(start)
    }

    /// A member domain leaves: drop it, then re-key and re-issue.
    ///
    /// # Errors
    ///
    /// [`CoalitionError::Config`] if the domain is unknown or the coalition
    /// would drop below two members.
    pub fn leave_domain(&mut self, name: &str) -> Result<DynamicsReport, CoalitionError> {
        let idx = self
            .domains
            .iter()
            .position(|d| d.name() == name)
            .ok_or_else(|| CoalitionError::Config(format!("unknown domain {name}")))?;
        if self.domains.len() <= 2 {
            return Err(CoalitionError::Config(
                "a coalition needs at least two domains".into(),
            ));
        }
        let start = Instant::now();
        let removed = self.domains.remove(idx);
        self.identity_certs
            .retain(|c| !removed.users().iter().any(|u| u.name() == c.subject));
        self.rekey(start)
    }

    /// Re-keys the AA for the current member set and re-issues the
    /// standing threshold ACs (the "large-scale revocation and
    /// re-distribution" of §6).
    fn rekey(&mut self, start: Instant) -> Result<DynamicsReport, CoalitionError> {
        let domain_names: Vec<String> = self.domains.iter().map(|d| d.name().to_string()).collect();
        let now = self.server.now();

        // 1. Revoke the standing ACs under the old key.
        let mut certs_revoked = 0;
        for ac in [&self.write_ac, &self.read_ac] {
            let rev = self
                .ra
                .revoke_attribute(&ac.subject, ac.group.clone(), now, now)?;
            self.server.admit_attribute_revocation(&rev)?;
            certs_revoked += 1;
        }

        // 2. Establish the new shared key among the new member set.
        let rekey_start = Instant::now();
        let aa =
            CoalitionAa::establish_dealt("AA", domain_names.clone(), &mut self.rng, self.key_bits)?;
        let rekey_wall = rekey_start.elapsed();

        // 3. Re-anchor the server's trust on the new key (new initial
        // beliefs; objects and audit log survive).
        let mut store = TrustStore::new(Time(0));
        for d in &self.domains {
            store.trust_ca(d.ca().name(), d.ca().public().clone());
        }
        store.trust_aa("AA", aa.public().clone(), domain_names);
        store.trust_ra("RA", "AA", self.ra.public().clone());
        let old_server = std::mem::replace(&mut self.server, CoalitionServer::new("P", store));
        let mut acl = Acl::new();
        acl.permit(GroupId::new("G_write"), "write");
        acl.permit(GroupId::new("G_read"), "read");
        self.server.add_object(OBJECT_O, acl)?;
        self.server.advance_clock(old_server.now())?;

        // 4. Re-issue the threshold ACs under the new key.
        let members: Vec<(String, jaap_crypto::rsa::RsaPublicKey)> = self
            .domains
            .iter()
            .map(|d| {
                let u = &d.users()[0];
                (u.name().to_string(), u.public().clone())
            })
            .collect();
        let old_m = self.write_ac.subject.m.min(members.len());
        let write_subject = ThresholdSubject::new(members.clone(), old_m)?;
        let read_subject = ThresholdSubject::new(members, 1)?;
        self.write_ac = aa.issue_threshold_certificate(
            write_subject,
            GroupId::new("G_write"),
            self.validity,
            self.server.now(),
        )?;
        self.read_ac = aa.issue_threshold_certificate(
            read_subject,
            GroupId::new("G_read"),
            self.validity,
            self.server.now(),
        )?;
        self.aa = aa;

        Ok(DynamicsReport {
            domain_count: self.domains.len(),
            rekey_wall,
            certs_revoked,
            certs_reissued: 2,
            total_wall: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CoalitionBuilder;

    fn coalition(seed: u64) -> Coalition {
        CoalitionBuilder::new()
            .seed(seed)
            .key_bits(192)
            .build()
            .expect("build")
    }

    #[test]
    fn join_rekeys_and_new_member_can_sign() {
        let mut c = coalition(1);
        let old_key_id = c.aa().public().key_id();
        let report = c.join_domain("D4").expect("join");
        assert_eq!(report.domain_count, 4);
        assert_eq!(report.certs_revoked, 2);
        assert_eq!(report.certs_reissued, 2);
        assert_ne!(c.aa().public().key_id(), old_key_id, "AA must be re-keyed");
        // The new member participates in writes.
        assert!(
            c.request_write(&["User_D4", "User_D1"])
                .expect("write")
                .granted
        );
    }

    #[test]
    fn leave_removes_signing_power() {
        let mut c = coalition(2);
        c.leave_domain("D2").expect("leave");
        assert_eq!(c.domains().len(), 2);
        // The departed user is gone: requests naming them fail.
        assert!(matches!(
            c.request_write(&["User_D2", "User_D1"]),
            Err(CoalitionError::Config(_))
        ));
        // Remaining members still satisfy 2-of-2.
        assert!(
            c.request_write(&["User_D1", "User_D3"])
                .expect("write")
                .granted
        );
    }

    #[test]
    fn old_certificates_rejected_after_rekey() {
        let mut c = coalition(3);
        let old_write_ac = c.write_ac().clone();
        c.join_domain("D4").expect("join");
        // A request presenting the *old* AC (signed by the old key) fails.
        let mut req = c
            .build_request(
                &["User_D1", "User_D2"],
                jaap_core::protocol::Operation::new("write", OBJECT_O),
            )
            .expect("request");
        req.threshold_certs = vec![old_write_ac];
        let d = c.server_mut().handle_request(&req);
        assert!(!d.granted);
        assert!(d.detail.expect("detail").contains("threshold attribute"));
    }

    #[test]
    fn cannot_shrink_below_two_domains() {
        let mut c = coalition(4);
        c.leave_domain("D3").expect("leave");
        assert!(matches!(
            c.leave_domain("D2"),
            Err(CoalitionError::Config(_))
        ));
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut c = coalition(5);
        assert!(matches!(
            c.join_domain("D1"),
            Err(CoalitionError::Config(_))
        ));
    }

    #[test]
    fn audit_and_objects_survive_rekey() {
        let mut c = coalition(6);
        let _ = c.request_write(&["User_D1", "User_D2"]).expect("write");
        c.join_domain("D4").expect("join");
        // New server instance: audit restarted is acceptable, but the
        // object must exist and be writable again.
        assert!(c.server().object(OBJECT_O).is_some());
        assert!(
            c.request_write(&["User_D1", "User_D4"])
                .expect("write")
                .granted
        );
    }
}
