//! Certificate revocation lists with recency.
//!
//! The paper (§4.3): "It is essential to verify the most recent available
//! revocation information before granting access to an object." Its
//! revocation model builds on Stubblebine–Wright [25], where verifiers
//! enforce *recency* on revocation data. A [`Crl`] batches attribute
//! revocations under one RA signature with a sequence number and timestamp;
//! the coalition server can require its revocation information to be no
//! older than a recency window.

use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};

use crate::attribute::ThresholdSubject;
use crate::encoding::Encoder;
use crate::PkiError;

/// One CRL entry: a revoked threshold attribute certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrlEntry {
    /// The revoked certificate's subject.
    pub subject: ThresholdSubject,
    /// The group whose membership is withdrawn.
    pub group: GroupId,
    /// Effective revocation time `t'`.
    pub revoked_from: Time,
}

/// A signed certificate revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Crl {
    /// Issuing revocation authority.
    pub issuer: String,
    /// Monotone sequence number (replay/rollback detection).
    pub sequence: u64,
    /// Issuance timestamp (recency anchor).
    pub timestamp: Time,
    /// The revocations.
    pub entries: Vec<CrlEntry>,
    /// RA signature over [`Crl::body_bytes`].
    pub signature: RsaSignature,
}

impl Crl {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        sequence: u64,
        timestamp: Time,
        entries: &[CrlEntry],
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-crl-v1");
        e.put_str(issuer).put_u64(sequence).put_i64(timestamp.0);
        e.put_list(entries.len());
        for entry in entries {
            e.put_str(entry.group.as_str());
            entry.subject.encode(&mut e);
            e.put_i64(entry.revoked_from.0);
        }
        e.finish()
    }

    /// Verifies the RA signature.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, ra_key: &RsaPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(&self.issuer, self.sequence, self.timestamp, &self.entries);
        if ra_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "CRL #{} by {}",
                self.sequence, self.issuer
            )))
        }
    }
}

impl crate::authority::RevocationAuthority {
    /// Issues a signed CRL.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn issue_crl(
        &self,
        sequence: u64,
        timestamp: Time,
        entries: Vec<CrlEntry>,
    ) -> Result<Crl, PkiError> {
        let body = Crl::body_bytes(self.name(), sequence, timestamp, &entries);
        let signature = self
            .sign(&body)
            .map_err(|e| PkiError::BadSignature(format!("RA signing failed: {e}")))?;
        Ok(Crl {
            issuer: self.name().to_string(),
            sequence,
            timestamp,
            entries,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::RevocationAuthority;
    use jaap_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (RevocationAuthority, Vec<CrlEntry>) {
        let mut rng = StdRng::seed_from_u64(1);
        let ra = RevocationAuthority::new("RA", "AA", &mut rng, 192).expect("ra");
        let user = RsaKeyPair::generate(&mut rng, 128).expect("user");
        let subject = ThresholdSubject::new(vec![("User_D1".into(), user.public().clone())], 1)
            .expect("subject");
        let entries = vec![CrlEntry {
            subject,
            group: GroupId::new("G_write"),
            revoked_from: Time(20),
        }];
        (ra, entries)
    }

    #[test]
    fn issue_and_verify() {
        let (ra, entries) = fixture();
        let crl = ra.issue_crl(1, Time(20), entries).expect("crl");
        assert!(crl.verify(ra.public()).is_ok());
    }

    #[test]
    fn tampered_crl_rejected() {
        let (ra, entries) = fixture();
        let mut crl = ra.issue_crl(1, Time(20), entries).expect("crl");
        crl.sequence = 2;
        assert!(crl.verify(ra.public()).is_err());
        let mut crl2 = ra.issue_crl(1, Time(20), vec![]).expect("crl");
        crl2.entries = fixture().1;
        assert!(crl2.verify(ra.public()).is_err());
    }

    #[test]
    fn empty_crl_is_valid_heartbeat() {
        // An empty CRL is how an RA asserts "nothing newly revoked" —
        // essential for recency enforcement.
        let (ra, _) = fixture();
        let crl = ra.issue_crl(7, Time(30), vec![]).expect("crl");
        assert!(crl.verify(ra.public()).is_ok());
        assert!(crl.entries.is_empty());
    }

    #[test]
    fn wrong_ra_key_rejected() {
        let (ra, entries) = fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let other = RevocationAuthority::new("RA2", "AA", &mut rng, 192).expect("ra2");
        let crl = ra.issue_crl(1, Time(20), entries).expect("crl");
        assert!(crl.verify(other.public()).is_err());
    }
}
