//! Certificate-issuing authorities: per-domain identity CAs and revocation
//! authorities.
//!
//! The coalition Attribute Authority is *not* here: its private key is
//! shared among the domains, so AA issuance is a joint act orchestrated at
//! the coalition layer (see `jaap-coalition`), using the body builders in
//! [`crate::attribute`].

use jaap_core::certs::Validity;
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use jaap_crypto::CryptoError;
use rand::RngCore;

use crate::attribute::{AttributeRevocation, ThresholdSubject};
use crate::identity::{IdentityCertificate, IdentityRevocation};
use crate::PkiError;

/// A domain's identity certificate authority.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    name: String,
    keypair: RsaKeyPair,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh key pair.
    ///
    /// # Errors
    ///
    /// Propagates key generation failures.
    pub fn new(
        name: impl Into<String>,
        rng: &mut dyn RngCore,
        bits: usize,
    ) -> Result<Self, CryptoError> {
        Ok(CertificateAuthority {
            name: name.into(),
            keypair: RsaKeyPair::generate(rng, bits)?,
        })
    }

    /// The CA's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CA's verification key.
    #[must_use]
    pub fn public(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Issues an identity certificate.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn issue_identity(
        &self,
        subject: impl Into<String>,
        subject_key: &RsaPublicKey,
        validity: Validity,
        timestamp: Time,
    ) -> Result<IdentityCertificate, PkiError> {
        let subject = subject.into();
        let body =
            IdentityCertificate::body_bytes(&self.name, &subject, subject_key, validity, timestamp);
        let signature = self
            .keypair
            .sign(&body)
            .map_err(|e| PkiError::BadSignature(format!("CA signing failed: {e}")))?;
        Ok(IdentityCertificate {
            issuer: self.name.clone(),
            subject,
            subject_key: subject_key.clone(),
            validity,
            timestamp,
            signature,
        })
    }

    /// Issues an identity revocation.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn revoke_identity(
        &self,
        subject: impl Into<String>,
        subject_key: &RsaPublicKey,
        revoked_from: Time,
        timestamp: Time,
    ) -> Result<IdentityRevocation, PkiError> {
        let subject = subject.into();
        let body = IdentityRevocation::body_bytes(
            &self.name,
            &subject,
            subject_key,
            revoked_from,
            timestamp,
        );
        let signature = self
            .keypair
            .sign(&body)
            .map_err(|e| PkiError::BadSignature(format!("CA signing failed: {e}")))?;
        Ok(IdentityRevocation {
            issuer: self.name.clone(),
            subject,
            subject_key: subject_key.clone(),
            revoked_from,
            timestamp,
            signature,
        })
    }
}

/// A revocation authority "authorized to provide revocation information on
/// behalf of AA" (§4.3).
#[derive(Debug, Clone)]
pub struct RevocationAuthority {
    name: String,
    on_behalf_of: String,
    keypair: RsaKeyPair,
}

impl RevocationAuthority {
    /// Creates an RA acting for authority `on_behalf_of`.
    ///
    /// # Errors
    ///
    /// Propagates key generation failures.
    pub fn new(
        name: impl Into<String>,
        on_behalf_of: impl Into<String>,
        rng: &mut dyn RngCore,
        bits: usize,
    ) -> Result<Self, CryptoError> {
        Ok(RevocationAuthority {
            name: name.into(),
            on_behalf_of: on_behalf_of.into(),
            keypair: RsaKeyPair::generate(rng, bits)?,
        })
    }

    /// The RA's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The authority this RA speaks for.
    #[must_use]
    pub fn on_behalf_of(&self) -> &str {
        &self.on_behalf_of
    }

    /// The RA's verification key.
    #[must_use]
    pub fn public(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Signs canonical bytes with the RA key (used by revocations and
    /// CRLs).
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub(crate) fn sign(&self, body: &[u8]) -> Result<jaap_crypto::rsa::RsaSignature, CryptoError> {
        self.keypair.sign(body)
    }

    /// Issues a revocation of a threshold attribute certificate.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn revoke_attribute(
        &self,
        subject: &ThresholdSubject,
        group: GroupId,
        revoked_from: Time,
        timestamp: Time,
    ) -> Result<AttributeRevocation, PkiError> {
        let body =
            AttributeRevocation::body_bytes(&self.name, subject, &group, revoked_from, timestamp);
        let signature = self
            .keypair
            .sign(&body)
            .map_err(|e| PkiError::BadSignature(format!("RA signing failed: {e}")))?;
        Ok(AttributeRevocation {
            issuer: self.name.clone(),
            subject: subject.clone(),
            group,
            revoked_from,
            timestamp,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ca_accessors() {
        let mut rng = StdRng::seed_from_u64(1);
        let ca = CertificateAuthority::new("CA1", &mut rng, 128).expect("ca");
        assert_eq!(ca.name(), "CA1");
        assert!(!ca.public().key_id().is_empty());
    }

    #[test]
    fn ra_acts_on_behalf_of_aa() {
        let mut rng = StdRng::seed_from_u64(2);
        let ra = RevocationAuthority::new("RA", "AA", &mut rng, 128).expect("ra");
        assert_eq!(ra.name(), "RA");
        assert_eq!(ra.on_behalf_of(), "AA");
    }
}
