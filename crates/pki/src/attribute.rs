//! Attribute certificates: single-subject and threshold, plus revocations.
//!
//! Threshold attribute certificates are the paper's central object (§4.2):
//! they are signed with the coalition AA's *shared* key via the joint
//! signature protocol, and they name the member principals together with
//! the public keys that must sign access requests (selective distribution
//! of privileges, "CP = {P1|K1, P2|K2, P3|K3}").

use jaap_core::certs::{Certs, Validity};
use jaap_core::syntax::{GroupId, Message, Subject, Time};
use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};
use jaap_crypto::shared::SharedPublicKey;

use crate::encoding::Encoder;
use crate::{key_name, PkiError};

/// The subject of a threshold attribute certificate: named principals bound
/// to their public keys, with a threshold `m`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThresholdSubject {
    /// `(principal name, bound public key)` pairs.
    pub members: Vec<(String, RsaPublicKey)>,
    /// The threshold `m`.
    pub m: usize,
}

impl ThresholdSubject {
    /// Creates a threshold subject.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] unless `1 <= m <= members.len()`.
    pub fn new(members: Vec<(String, RsaPublicKey)>, m: usize) -> Result<Self, PkiError> {
        if members.is_empty() || m == 0 || m > members.len() {
            return Err(PkiError::Malformed(format!(
                "threshold subject needs 1 <= m <= n, got m={m}, n={}",
                members.len()
            )));
        }
        Ok(ThresholdSubject { members, m })
    }

    /// The logic-level subject: `{P1|K1, …, Pn|Kn}_{m,n}`.
    #[must_use]
    pub fn to_logic(&self) -> Subject {
        Subject::threshold(
            self.members
                .iter()
                .map(|(name, key)| Subject::principal(name).bound(key_name(key)))
                .collect(),
            self.m,
        )
    }

    /// Encodes the subject into an encoder (part of signed bodies).
    pub(crate) fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.m as u64);
        e.put_list(self.members.len());
        for (name, key) in &self.members {
            e.put_str(name);
            e.put_bytes(&key.modulus().to_bytes_be());
            e.put_bytes(&key.exponent().to_bytes_be());
        }
    }

    /// Looks up the bound key for a member name.
    #[must_use]
    pub fn key_of(&self, name: &str) -> Option<&RsaPublicKey> {
        self.members.iter().find(|(n, _)| n == name).map(|(_, k)| k)
    }
}

/// A threshold attribute certificate, jointly signed by all member domains
/// with the AA's shared key.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThresholdAttributeCertificate {
    /// Issuer name (the coalition AA).
    pub issuer: String,
    /// The threshold subject.
    pub subject: ThresholdSubject,
    /// The group whose membership is granted.
    pub group: GroupId,
    /// Validity period.
    pub validity: Validity,
    /// AA timestamp `t_AA`.
    pub timestamp: Time,
    /// Joint signature under the shared key.
    pub signature: RsaSignature,
}

impl ThresholdAttributeCertificate {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        subject: &ThresholdSubject,
        group: &GroupId,
        validity: Validity,
        timestamp: Time,
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-threshold-attribute-cert-v1");
        e.put_str(issuer).put_str(group.as_str());
        subject.encode(&mut e);
        e.put_i64(validity.begin.0)
            .put_i64(validity.end.0)
            .put_i64(timestamp.0);
        e.finish()
    }

    /// Verifies the joint signature against the AA's shared public key.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, aa_key: &SharedPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.group,
            self.validity,
            self.timestamp,
        );
        if aa_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "threshold attribute certificate for {} by {}",
                self.group, self.issuer
            )))
        }
    }

    /// Like [`ThresholdAttributeCertificate::verify`], through a shared
    /// verifier precomputation cache (`recurring = true` — standing certs
    /// earn fixed-base ladders). Accepts/rejects identically to `verify`.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify_with(
        &self,
        aa_key: &SharedPublicKey,
        precomp: Option<&jaap_crypto::precomp::VerifierPrecomp>,
    ) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.group,
            self.validity,
            self.timestamp,
        );
        if aa_key.verify_with(precomp, true, &body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "threshold attribute certificate for {} by {}",
                self.group, self.issuer
            )))
        }
    }

    /// The idealized certificate:
    /// `⟨AA says_tAA (CP_{m,n} ⇒ [tb,te] G)⟩_{K_AA⁻¹}`.
    #[must_use]
    pub fn idealize(&self, aa_key: &SharedPublicKey) -> Message {
        Certs::threshold_attribute(
            self.issuer.as_str(),
            key_name(aa_key.rsa()),
            self.subject.to_logic(),
            self.group.clone(),
            self.timestamp,
            self.validity,
        )
    }
}

/// A single-subject attribute certificate (`P|K ⇒ G`), also jointly signed
/// by the AA.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeCertificate {
    /// Issuer name (the coalition AA).
    pub issuer: String,
    /// Subject name.
    pub subject: String,
    /// The key the privilege is selectively bound to.
    pub subject_key: RsaPublicKey,
    /// The group.
    pub group: GroupId,
    /// Validity period.
    pub validity: Validity,
    /// AA timestamp.
    pub timestamp: Time,
    /// Joint signature under the shared key.
    pub signature: RsaSignature,
}

impl AttributeCertificate {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        subject: &str,
        subject_key: &RsaPublicKey,
        group: &GroupId,
        validity: Validity,
        timestamp: Time,
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-attribute-cert-v1");
        e.put_str(issuer)
            .put_str(subject)
            .put_bytes(&subject_key.modulus().to_bytes_be())
            .put_bytes(&subject_key.exponent().to_bytes_be())
            .put_str(group.as_str())
            .put_i64(validity.begin.0)
            .put_i64(validity.end.0)
            .put_i64(timestamp.0);
        e.finish()
    }

    /// Verifies the joint signature.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, aa_key: &SharedPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.subject_key,
            &self.group,
            self.validity,
            self.timestamp,
        );
        if aa_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "attribute certificate for {} by {}",
                self.subject, self.issuer
            )))
        }
    }

    /// Like [`AttributeCertificate::verify`], through a shared verifier
    /// precomputation cache (`recurring = true`). Accepts/rejects
    /// identically to `verify`.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify_with(
        &self,
        aa_key: &SharedPublicKey,
        precomp: Option<&jaap_crypto::precomp::VerifierPrecomp>,
    ) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.subject_key,
            &self.group,
            self.validity,
            self.timestamp,
        );
        if aa_key.verify_with(precomp, true, &body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "attribute certificate for {} by {}",
                self.subject, self.issuer
            )))
        }
    }

    /// The idealized certificate: `⟨AA says_t (P|K ⇒ [tb,te] G)⟩_{K_AA⁻¹}`.
    #[must_use]
    pub fn idealize(&self, aa_key: &SharedPublicKey) -> Message {
        Certs::attribute(
            self.issuer.as_str(),
            key_name(aa_key.rsa()),
            Subject::principal(&self.subject).bound(key_name(&self.subject_key)),
            self.group.clone(),
            self.timestamp,
            self.validity,
        )
    }
}

/// An attribute certificate for a *group of users owning a shared public
/// key* — the paper's "alternate mechanism" for distributing privileges
/// (§2.2): `CP|K_cp ⇒ G`, where access requests are jointly signed under
/// `K_cp` (axiom A37).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompoundAttributeCertificate {
    /// Issuer name (the coalition AA).
    pub issuer: String,
    /// Names of the group's member principals.
    pub member_names: Vec<String>,
    /// The group's shared public key (all members hold exponent shares).
    pub shared_key: RsaPublicKey,
    /// The group whose membership is granted.
    pub group: GroupId,
    /// Validity period.
    pub validity: Validity,
    /// AA timestamp.
    pub timestamp: Time,
    /// Joint signature of the AA's shareholders.
    pub signature: RsaSignature,
}

impl CompoundAttributeCertificate {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        member_names: &[String],
        shared_key: &RsaPublicKey,
        group: &GroupId,
        validity: Validity,
        timestamp: Time,
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-compound-attribute-cert-v1");
        e.put_str(issuer).put_str(group.as_str());
        e.put_list(member_names.len());
        for name in member_names {
            e.put_str(name);
        }
        e.put_bytes(&shared_key.modulus().to_bytes_be())
            .put_bytes(&shared_key.exponent().to_bytes_be())
            .put_i64(validity.begin.0)
            .put_i64(validity.end.0)
            .put_i64(timestamp.0);
        e.finish()
    }

    /// Verifies the AA's joint signature.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, aa_key: &SharedPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.member_names,
            &self.shared_key,
            &self.group,
            self.validity,
            self.timestamp,
        );
        if aa_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "compound attribute certificate for {} by {}",
                self.group, self.issuer
            )))
        }
    }

    /// The logic-level subject `{P1, …, Pn}|K_cp`.
    #[must_use]
    pub fn to_logic_subject(&self) -> Subject {
        Subject::compound(self.member_names.iter().map(Subject::principal).collect())
            .bound(key_name(&self.shared_key))
    }

    /// The idealized certificate: `⟨AA says_t (CP|K ⇒ [tb,te] G)⟩_{K_AA⁻¹}`.
    #[must_use]
    pub fn idealize(&self, aa_key: &SharedPublicKey) -> Message {
        Certs::attribute(
            self.issuer.as_str(),
            key_name(aa_key.rsa()),
            self.to_logic_subject(),
            self.group.clone(),
            self.timestamp,
            self.validity,
        )
    }
}

/// A revocation of a threshold attribute certificate, issued by a
/// revocation authority (§4.3 Message 2).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeRevocation {
    /// Issuer (the RA).
    pub issuer: String,
    /// The revoked subject.
    pub subject: ThresholdSubject,
    /// The group.
    pub group: GroupId,
    /// Revocation effective time `t'`.
    pub revoked_from: Time,
    /// RA timestamp.
    pub timestamp: Time,
    /// RA signature.
    pub signature: RsaSignature,
}

impl AttributeRevocation {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        subject: &ThresholdSubject,
        group: &GroupId,
        revoked_from: Time,
        timestamp: Time,
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-attribute-revocation-v1");
        e.put_str(issuer).put_str(group.as_str());
        subject.encode(&mut e);
        e.put_i64(revoked_from.0).put_i64(timestamp.0);
        e.finish()
    }

    /// Verifies the RA signature.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, ra_key: &RsaPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.group,
            self.revoked_from,
            self.timestamp,
        );
        if ra_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "attribute revocation for {} by {}",
                self.group, self.issuer
            )))
        }
    }

    /// The idealized revocation:
    /// `⟨RA says_tRA ¬(CP_{m,n} ⇒ t' G)⟩_{K_RA⁻¹}`.
    #[must_use]
    pub fn idealize(&self, ra_key: &RsaPublicKey) -> Message {
        Certs::attribute_revocation(
            self.issuer.as_str(),
            key_name(ra_key),
            self.subject.to_logic(),
            self.group.clone(),
            self.timestamp,
            self.revoked_from,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_crypto::joint;
    use jaap_crypto::rsa::RsaKeyPair;
    use jaap_crypto::shared::SharedRsaKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn subject(rng: &mut StdRng, m: usize) -> ThresholdSubject {
        let members = (1..=3)
            .map(|i| {
                let kp = RsaKeyPair::generate(rng, 128).expect("user key");
                (format!("User_D{i}"), kp.public().clone())
            })
            .collect();
        ThresholdSubject::new(members, m).expect("subject")
    }

    #[test]
    fn threshold_subject_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = subject(&mut rng, 2);
        assert!(ThresholdSubject::new(s.members.clone(), 0).is_err());
        assert!(ThresholdSubject::new(s.members.clone(), 4).is_err());
        assert!(ThresholdSubject::new(Vec::new(), 1).is_err());
    }

    #[test]
    fn to_logic_produces_bound_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = subject(&mut rng, 2);
        let logic = s.to_logic();
        assert_eq!(logic.required_signers(), 2);
        assert_eq!(logic.arity(), 3);
        assert!(logic.members().iter().all(|m| m.binding_key().is_some()));
    }

    #[test]
    fn jointly_signed_threshold_ac_verifies() {
        let mut rng = StdRng::seed_from_u64(3);
        let (aa_key, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let s = subject(&mut rng, 2);
        let group = GroupId::new("G_write");
        let validity = Validity::new(Time(0), Time(100));
        let body = ThresholdAttributeCertificate::body_bytes("AA", &s, &group, validity, Time(6));
        let signature = joint::sign_locally(&aa_key, &shares, &body).expect("joint sign");
        let cert = ThresholdAttributeCertificate {
            issuer: "AA".into(),
            subject: s,
            group,
            validity,
            timestamp: Time(6),
            signature,
        };
        assert!(cert.verify(&aa_key).is_ok());

        // Tampering with the group breaks the signature.
        let mut bad = cert.clone();
        bad.group = GroupId::new("G_read");
        assert!(bad.verify(&aa_key).is_err());
    }

    #[test]
    fn idealized_threshold_ac_parses_in_core() {
        let mut rng = StdRng::seed_from_u64(4);
        let (aa_key, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let s = subject(&mut rng, 2);
        let group = GroupId::new("G_write");
        let validity = Validity::new(Time(0), Time(100));
        let body = ThresholdAttributeCertificate::body_bytes("AA", &s, &group, validity, Time(6));
        let signature = joint::sign_locally(&aa_key, &shares, &body).expect("joint sign");
        let cert = ThresholdAttributeCertificate {
            issuer: "AA".into(),
            subject: s,
            group,
            validity,
            timestamp: Time(6),
            signature,
        };
        let msg = cert.idealize(&aa_key);
        let view = jaap_core::certs::CertView::parse(&msg).expect("parse");
        assert!(matches!(
            view,
            jaap_core::certs::CertView::Attribute { negated: false, .. }
        ));
    }

    #[test]
    fn key_of_lookup() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = subject(&mut rng, 2);
        assert!(s.key_of("User_D1").is_some());
        assert!(s.key_of("Nobody").is_none());
    }
}
