//! Identity certificates and their revocations.

use jaap_core::certs::{Certs, Validity};
use jaap_core::syntax::{Message, Time};
use jaap_crypto::rsa::{RsaPublicKey, RsaSignature};

use crate::encoding::Encoder;
use crate::{key_name, PkiError};

/// A byte-level identity certificate: binds a user name to a public key for
/// a validity period, signed by a domain CA.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdentityCertificate {
    /// Issuing CA name.
    pub issuer: String,
    /// Subject (user) name.
    pub subject: String,
    /// The certified public key.
    pub subject_key: RsaPublicKey,
    /// Validity period.
    pub validity: Validity,
    /// CA timestamp `t_CA` ("time when the certificate information was
    /// deemed accurate by the CA").
    pub timestamp: Time,
    /// CA signature over [`IdentityCertificate::body_bytes`].
    pub signature: RsaSignature,
}

impl IdentityCertificate {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        subject: &str,
        subject_key: &RsaPublicKey,
        validity: Validity,
        timestamp: Time,
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-identity-cert-v1");
        e.put_str(issuer)
            .put_str(subject)
            .put_bytes(&subject_key.modulus().to_bytes_be())
            .put_bytes(&subject_key.exponent().to_bytes_be())
            .put_i64(validity.begin.0)
            .put_i64(validity.end.0)
            .put_i64(timestamp.0);
        e.finish()
    }

    /// Verifies the CA signature.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.subject_key,
            self.validity,
            self.timestamp,
        );
        if issuer_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "identity certificate for {} by {}",
                self.subject, self.issuer
            )))
        }
    }

    /// Like [`IdentityCertificate::verify`], but through a shared verifier
    /// precomputation cache with `recurring = true`: standing certificates
    /// are re-presented on every request, so their signature residues earn
    /// fixed-base ladders. Accepts/rejects identically to `verify`.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify_with(
        &self,
        issuer_key: &RsaPublicKey,
        precomp: Option<&jaap_crypto::precomp::VerifierPrecomp>,
    ) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.subject_key,
            self.validity,
            self.timestamp,
        );
        if issuer_key.verify_with(precomp, true, &body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "identity certificate for {} by {}",
                self.subject, self.issuer
            )))
        }
    }

    /// The idealized certificate (paper §4.2):
    /// `⟨CA says_tCA (K_P ⇒ [tb,te] P)⟩_{K_CA⁻¹}`.
    #[must_use]
    pub fn idealize(&self, issuer_key: &RsaPublicKey) -> Message {
        Certs::identity(
            self.issuer.as_str(),
            key_name(issuer_key),
            key_name(&self.subject_key),
            self.subject.as_str(),
            self.timestamp,
            self.validity,
        )
    }
}

/// Revocation of an identity certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdentityRevocation {
    /// Issuing CA name.
    pub issuer: String,
    /// Subject whose certificate is revoked.
    pub subject: String,
    /// The revoked key.
    pub subject_key: RsaPublicKey,
    /// Revocation effective time `t'`.
    pub revoked_from: Time,
    /// CA timestamp.
    pub timestamp: Time,
    /// CA signature.
    pub signature: RsaSignature,
}

impl IdentityRevocation {
    /// The canonical signed bytes.
    #[must_use]
    pub fn body_bytes(
        issuer: &str,
        subject: &str,
        subject_key: &RsaPublicKey,
        revoked_from: Time,
        timestamp: Time,
    ) -> Vec<u8> {
        let mut e = Encoder::new("jaap-identity-revocation-v1");
        e.put_str(issuer)
            .put_str(subject)
            .put_bytes(&subject_key.modulus().to_bytes_be())
            .put_i64(revoked_from.0)
            .put_i64(timestamp.0);
        e.finish()
    }

    /// Verifies the CA signature.
    ///
    /// # Errors
    ///
    /// [`PkiError::BadSignature`] if verification fails.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), PkiError> {
        let body = Self::body_bytes(
            &self.issuer,
            &self.subject,
            &self.subject_key,
            self.revoked_from,
            self.timestamp,
        );
        if issuer_key.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(PkiError::BadSignature(format!(
                "identity revocation for {} by {}",
                self.subject, self.issuer
            )))
        }
    }

    /// The idealized revocation:
    /// `⟨CA says_tCA ¬(K_P ⇒ t' P)⟩_{K_CA⁻¹}`.
    #[must_use]
    pub fn idealize(&self, issuer_key: &RsaPublicKey) -> Message {
        Certs::identity_revocation(
            self.issuer.as_str(),
            key_name(issuer_key),
            key_name(&self.subject_key),
            self.subject.as_str(),
            self.timestamp,
            self.revoked_from,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use jaap_core::certs::CertView;
    use jaap_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CertificateAuthority, RsaKeyPair) {
        let mut rng = StdRng::seed_from_u64(42);
        let ca = CertificateAuthority::new("CA1", &mut rng, 192).expect("ca");
        let user = RsaKeyPair::generate(&mut rng, 192).expect("user");
        (ca, user)
    }

    #[test]
    fn issue_verify_roundtrip() {
        let (ca, user) = setup();
        let cert = ca
            .issue_identity(
                "User_D1",
                user.public(),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        assert!(cert.verify(ca.public()).is_ok());
    }

    #[test]
    fn tampered_certificate_fails() {
        let (ca, user) = setup();
        let mut cert = ca
            .issue_identity(
                "User_D1",
                user.public(),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        cert.subject = "Mallory".into();
        assert!(matches!(
            cert.verify(ca.public()),
            Err(PkiError::BadSignature(_))
        ));
    }

    #[test]
    fn wrong_issuer_key_fails() {
        let (ca, user) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let other = RsaKeyPair::generate(&mut rng, 192).expect("other");
        let cert = ca
            .issue_identity(
                "User_D1",
                user.public(),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        assert!(cert.verify(other.public()).is_err());
    }

    #[test]
    fn idealization_matches_paper_shape() {
        let (ca, user) = setup();
        let cert = ca
            .issue_identity(
                "User_D1",
                user.public(),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        let msg = cert.idealize(ca.public());
        let CertView::Identity {
            issuer,
            subject,
            negated,
            ..
        } = CertView::parse(&msg).expect("parse")
        else {
            panic!("expected identity view");
        };
        assert_eq!(issuer.as_str(), "CA1");
        assert_eq!(subject, jaap_core::syntax::Subject::principal("User_D1"));
        assert!(!negated);
    }

    #[test]
    fn revocation_roundtrip_and_idealization() {
        let (ca, user) = setup();
        let rev = ca
            .revoke_identity("User_D1", user.public(), Time(50), Time(50))
            .expect("revoke");
        assert!(rev.verify(ca.public()).is_ok());
        let msg = rev.idealize(ca.public());
        let CertView::Identity { negated, .. } = CertView::parse(&msg).expect("parse") else {
            panic!("expected identity view");
        };
        assert!(negated);
    }
}
