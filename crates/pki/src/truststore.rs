//! The verifier's trust store: trusted verification keys, and the bridge
//! from cryptographic verification to logical idealization.
//!
//! A coalition server configures a [`TrustStore`] with the per-domain CA
//! keys, the coalition AA's shared public key, and any revocation-authority
//! keys. The store then offers:
//!
//! * [`TrustStore::assumptions`] — the engine's initial beliefs
//!   (Statements 1–11 of Appendix E) derived from the trusted keys;
//! * `idealize_*` — verify a byte-level certificate's signature and, only
//!   on success, produce the idealized message the logic engine consumes.
//!   This is the boundary where "crypto says the signature is valid"
//!   becomes "`P received ⟨… ⟩_{K⁻¹}`" in the logic.

use std::sync::Arc;

use jaap_core::engine::TrustAssumptions;
use jaap_core::syntax::{Message, Subject, Time};
use jaap_crypto::precomp::VerifierPrecomp;
use jaap_crypto::rsa::RsaPublicKey;
use jaap_crypto::shared::SharedPublicKey;

use crate::attribute::{AttributeCertificate, AttributeRevocation, ThresholdAttributeCertificate};
use crate::identity::{IdentityCertificate, IdentityRevocation};
use crate::{key_name, PkiError};

/// Trusted verification keys for a coalition server.
#[derive(Debug, Clone)]
pub struct TrustStore {
    t_star: Time,
    cas: Vec<(String, RsaPublicKey)>,
    aa: Option<AaEntry>,
    ras: Vec<(String, String, RsaPublicKey)>,
    /// Shared verifier precomputation (DESIGN §5h). Lives *inside* the
    /// store so a decision snapshot's trust-store `Arc` carries its
    /// tables with it: a trust-store swap or key rotation hashes to new
    /// `(N, e)` entries and can never serve a stale table. Clones share
    /// the cache (keys are pure functions of the key material, so
    /// sharing across stores is always sound).
    precomp: Arc<VerifierPrecomp>,
}

#[derive(Debug, Clone)]
struct AaEntry {
    name: String,
    key: SharedPublicKey,
    domains: Vec<String>,
}

impl TrustStore {
    /// Creates an empty trust store anchored at `t_star`.
    #[must_use]
    pub fn new(t_star: Time) -> Self {
        TrustStore {
            t_star,
            cas: Vec::new(),
            aa: None,
            ras: Vec::new(),
            precomp: Arc::new(VerifierPrecomp::new()),
        }
    }

    /// The store's shared verifier precomputation cache.
    #[must_use]
    pub fn precomp(&self) -> &Arc<VerifierPrecomp> {
        &self.precomp
    }

    /// Trusts a domain CA for identity certificates.
    pub fn trust_ca(&mut self, name: impl Into<String>, key: RsaPublicKey) -> &mut Self {
        self.cas.push((name.into(), key));
        self
    }

    /// Trusts the coalition AA: its shared public key is owned n-of-n by
    /// the member `domains` (Statement 1).
    pub fn trust_aa(
        &mut self,
        name: impl Into<String>,
        key: SharedPublicKey,
        domains: Vec<String>,
    ) -> &mut Self {
        self.aa = Some(AaEntry {
            name: name.into(),
            key,
            domains,
        });
        self
    }

    /// Trusts a revocation authority acting for `on_behalf_of`.
    pub fn trust_ra(
        &mut self,
        name: impl Into<String>,
        on_behalf_of: impl Into<String>,
        key: RsaPublicKey,
    ) -> &mut Self {
        self.ras.push((name.into(), on_behalf_of.into(), key));
        self
    }

    /// The AA's shared public key, if configured.
    #[must_use]
    pub fn aa_key(&self) -> Option<&SharedPublicKey> {
        self.aa.as_ref().map(|e| &e.key)
    }

    /// The CA key for `name`, if trusted.
    #[must_use]
    pub fn ca_key(&self, name: &str) -> Option<&RsaPublicKey> {
        self.cas.iter().find(|(n, _)| n == name).map(|(_, k)| k)
    }

    /// Builds the engine's initial beliefs (Statements 1–11).
    #[must_use]
    pub fn assumptions(&self) -> TrustAssumptions {
        let mut a = TrustAssumptions::new(self.t_star);
        for (name, key) in &self.cas {
            a.own_key(key_name(key), Subject::principal(name));
            a.identity_authority(name.as_str());
        }
        if let Some(aa) = &self.aa {
            let n = aa.domains.len();
            let cp = Subject::threshold(aa.domains.iter().map(Subject::principal).collect(), n);
            // Statement 1: K_AA ⇒ CP_{n,n}; plus the paper's reading
            // convenience "we say that AA signs messages with K_AA as well".
            a.own_key(key_name(aa.key.rsa()), cp);
            a.own_key(key_name(aa.key.rsa()), Subject::principal(&aa.name));
            a.group_authority(aa.name.as_str());
        }
        for (ra, behalf, key) in &self.ras {
            a.own_key(key_name(key), Subject::principal(ra));
            a.revocation_authority(ra.as_str(), behalf.as_str());
        }
        a
    }

    /// Verifies and idealizes an identity certificate.
    ///
    /// # Errors
    ///
    /// [`PkiError::UnknownIssuer`] if the CA is not trusted;
    /// [`PkiError::BadSignature`] on verification failure.
    pub fn idealize_identity(&self, cert: &IdentityCertificate) -> Result<Message, PkiError> {
        self.idealize_identity_with(cert, false, false)
    }

    /// [`TrustStore::idealize_identity`] with explicit crypto-path knobs:
    /// `use_precomp` routes the signature check through the store's
    /// [`VerifierPrecomp`]; `sig_prechecked` skips the signature check
    /// entirely because the caller already verified it cryptographically
    /// (a batch combined check) — issuer resolution still runs, so an
    /// untrusted issuer is rejected identically either way.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_identity_with(
        &self,
        cert: &IdentityCertificate,
        use_precomp: bool,
        sig_prechecked: bool,
    ) -> Result<Message, PkiError> {
        let key = self
            .ca_key(&cert.issuer)
            .ok_or_else(|| PkiError::UnknownIssuer(cert.issuer.clone()))?;
        if !sig_prechecked {
            if use_precomp {
                cert.verify_with(key, Some(&self.precomp))?;
            } else {
                cert.verify(key)?;
            }
        }
        Ok(cert.idealize(key))
    }

    /// Verifies and idealizes an identity revocation.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_identity_revocation(
        &self,
        rev: &IdentityRevocation,
    ) -> Result<Message, PkiError> {
        let key = self
            .ca_key(&rev.issuer)
            .ok_or_else(|| PkiError::UnknownIssuer(rev.issuer.clone()))?;
        rev.verify(key)?;
        Ok(rev.idealize(key))
    }

    /// Verifies and idealizes a threshold attribute certificate.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_threshold_attribute(
        &self,
        cert: &ThresholdAttributeCertificate,
    ) -> Result<Message, PkiError> {
        self.idealize_threshold_attribute_with(cert, false, false)
    }

    /// [`TrustStore::idealize_threshold_attribute`] with crypto-path
    /// knobs; see [`TrustStore::idealize_identity_with`].
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_threshold_attribute_with(
        &self,
        cert: &ThresholdAttributeCertificate,
        use_precomp: bool,
        sig_prechecked: bool,
    ) -> Result<Message, PkiError> {
        let aa = self
            .aa
            .as_ref()
            .filter(|e| e.name == cert.issuer)
            .ok_or_else(|| PkiError::UnknownIssuer(cert.issuer.clone()))?;
        if !sig_prechecked {
            if use_precomp {
                cert.verify_with(&aa.key, Some(&self.precomp))?;
            } else {
                cert.verify(&aa.key)?;
            }
        }
        Ok(cert.idealize(&aa.key))
    }

    /// Verifies and idealizes a single-subject attribute certificate.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_attribute(&self, cert: &AttributeCertificate) -> Result<Message, PkiError> {
        self.idealize_attribute_with(cert, false, false)
    }

    /// [`TrustStore::idealize_attribute`] with crypto-path knobs; see
    /// [`TrustStore::idealize_identity_with`].
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_attribute_with(
        &self,
        cert: &AttributeCertificate,
        use_precomp: bool,
        sig_prechecked: bool,
    ) -> Result<Message, PkiError> {
        let aa = self
            .aa
            .as_ref()
            .filter(|e| e.name == cert.issuer)
            .ok_or_else(|| PkiError::UnknownIssuer(cert.issuer.clone()))?;
        if !sig_prechecked {
            if use_precomp {
                cert.verify_with(&aa.key, Some(&self.precomp))?;
            } else {
                cert.verify(&aa.key)?;
            }
        }
        Ok(cert.idealize(&aa.key))
    }

    /// Verifies and idealizes a compound (shared-user-key) attribute
    /// certificate, additionally returning the ownership binding the engine
    /// needs (`K_cp ⇒ CP`) so it can be registered as a trust assumption.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_compound_attribute(
        &self,
        cert: &crate::attribute::CompoundAttributeCertificate,
    ) -> Result<Message, PkiError> {
        let aa = self
            .aa
            .as_ref()
            .filter(|e| e.name == cert.issuer)
            .ok_or_else(|| PkiError::UnknownIssuer(cert.issuer.clone()))?;
        cert.verify(&aa.key)?;
        Ok(cert.idealize(&aa.key))
    }

    /// Verifies a CRL and idealizes each entry into the revocation messages
    /// the engine consumes.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_crl(&self, crl: &crate::crl::Crl) -> Result<Vec<Message>, PkiError> {
        let key = self
            .ras
            .iter()
            .find(|(n, _, _)| *n == crl.issuer)
            .map(|(_, _, k)| k)
            .ok_or_else(|| PkiError::UnknownIssuer(crl.issuer.clone()))?;
        crl.verify(key)?;
        Ok(crl
            .entries
            .iter()
            .map(|entry| {
                jaap_core::certs::Certs::attribute_revocation(
                    crl.issuer.as_str(),
                    crate::key_name(key),
                    entry.subject.to_logic(),
                    entry.group.clone(),
                    crl.timestamp,
                    entry.revoked_from,
                )
            })
            .collect())
    }

    /// Verifies and idealizes an attribute revocation from an RA.
    ///
    /// # Errors
    ///
    /// See [`TrustStore::idealize_identity`].
    pub fn idealize_attribute_revocation(
        &self,
        rev: &AttributeRevocation,
    ) -> Result<Message, PkiError> {
        let key = self
            .ras
            .iter()
            .find(|(n, _, _)| *n == rev.issuer)
            .map(|(_, _, k)| k)
            .ok_or_else(|| PkiError::UnknownIssuer(rev.issuer.clone()))?;
        rev.verify(key)?;
        Ok(rev.idealize(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::ThresholdSubject;
    use crate::authority::{CertificateAuthority, RevocationAuthority};
    use jaap_core::certs::Validity;
    use jaap_core::syntax::GroupId;
    use jaap_crypto::joint;
    use jaap_crypto::rsa::RsaKeyPair;
    use jaap_crypto::shared::SharedRsaKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        store: TrustStore,
        ca: CertificateAuthority,
        ra: RevocationAuthority,
        aa_key: jaap_crypto::shared::SharedPublicKey,
        shares: Vec<jaap_crypto::shared::KeyShare>,
        user: RsaKeyPair,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(7);
        let ca = CertificateAuthority::new("CA1", &mut rng, 192).expect("ca");
        let ra = RevocationAuthority::new("RA", "AA", &mut rng, 192).expect("ra");
        let (aa_key, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let user = RsaKeyPair::generate(&mut rng, 192).expect("user");
        let mut store = TrustStore::new(Time(0));
        store
            .trust_ca("CA1", ca.public().clone())
            .trust_aa(
                "AA",
                aa_key.clone(),
                vec!["D1".into(), "D2".into(), "D3".into()],
            )
            .trust_ra("RA", "AA", ra.public().clone());
        Fixture {
            store,
            ca,
            ra,
            aa_key,
            shares,
            user,
        }
    }

    #[test]
    fn assumptions_cover_statements_1_to_11() {
        let f = fixture();
        let a = f.store.assumptions();
        // K_AA is owned by both the domain compound and the AA alias.
        let aa_owners = a.owners_of(&key_name(f.aa_key.rsa()));
        assert_eq!(aa_owners.len(), 2);
        assert!(aa_owners
            .iter()
            .any(|s| matches!(s, Subject::Threshold { .. })));
        // CA key registered.
        assert_eq!(a.owners_of(&key_name(f.ca.public())).len(), 1);
    }

    #[test]
    fn verified_identity_idealizes() {
        let f = fixture();
        let cert =
            f.ca.issue_identity(
                "User_D1",
                f.user.public(),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        let msg = f.store.idealize_identity(&cert).expect("idealize");
        assert!(jaap_core::certs::CertView::parse(&msg).is_some());
    }

    #[test]
    fn unknown_issuer_rejected() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(8);
        let rogue = CertificateAuthority::new("RogueCA", &mut rng, 192).expect("rogue");
        let cert = rogue
            .issue_identity(
                "User_D1",
                f.user.public(),
                Validity::new(Time(0), Time(100)),
                Time(5),
            )
            .expect("issue");
        assert!(matches!(
            f.store.idealize_identity(&cert),
            Err(PkiError::UnknownIssuer(_))
        ));
    }

    #[test]
    fn forged_threshold_ac_rejected() {
        let f = fixture();
        let subject = ThresholdSubject::new(vec![("User_D1".into(), f.user.public().clone())], 1)
            .expect("subject");
        let validity = Validity::new(Time(0), Time(100));
        let body = ThresholdAttributeCertificate::body_bytes(
            "AA",
            &subject,
            &GroupId::new("G_write"),
            validity,
            Time(6),
        );
        // Signed with only 2 of 3 shares — combination fails, so forge a
        // garbage signature instead.
        let _ = &body;
        let cert = ThresholdAttributeCertificate {
            issuer: "AA".into(),
            subject,
            group: GroupId::new("G_write"),
            validity,
            timestamp: Time(6),
            signature: jaap_crypto::rsa::RsaSignature::from_value(jaap_bigint::Nat::from(12345u64)),
        };
        assert!(matches!(
            f.store.idealize_threshold_attribute(&cert),
            Err(PkiError::BadSignature(_))
        ));
    }

    #[test]
    fn properly_jointly_signed_ac_idealizes() {
        let f = fixture();
        let subject = ThresholdSubject::new(vec![("User_D1".into(), f.user.public().clone())], 1)
            .expect("subject");
        let validity = Validity::new(Time(0), Time(100));
        let body = ThresholdAttributeCertificate::body_bytes(
            "AA",
            &subject,
            &GroupId::new("G_write"),
            validity,
            Time(6),
        );
        let signature = joint::sign_locally(&f.aa_key, &f.shares, &body).expect("sign");
        let cert = ThresholdAttributeCertificate {
            issuer: "AA".into(),
            subject,
            group: GroupId::new("G_write"),
            validity,
            timestamp: Time(6),
            signature,
        };
        assert!(f.store.idealize_threshold_attribute(&cert).is_ok());
    }

    #[test]
    fn ra_revocation_idealizes() {
        let f = fixture();
        let subject = ThresholdSubject::new(vec![("User_D1".into(), f.user.public().clone())], 1)
            .expect("subject");
        let rev =
            f.ra.revoke_attribute(&subject, GroupId::new("G_write"), Time(20), Time(20))
                .expect("revoke");
        let msg = f
            .store
            .idealize_attribute_revocation(&rev)
            .expect("idealize");
        let view = jaap_core::certs::CertView::parse(&msg).expect("parse");
        assert!(matches!(
            view,
            jaap_core::certs::CertView::Attribute { negated: true, .. }
        ));
    }
}
