//! Byte-level PKI for the coalition: certificates with real (threshold-)RSA
//! signatures, and their idealization into the logic.
//!
//! The layering follows the paper:
//!
//! * Each domain runs an identity **CA** ([`CertificateAuthority`]) issuing
//!   [`IdentityCertificate`]s to its users (Requirement I: "all coalition
//!   application servers trust each domain's pre-established identity CA").
//! * The coalition **AA**'s key is *shared*; [`ThresholdAttributeCertificate`]
//!   bodies are canonical byte strings signed with the joint signature
//!   protocol of `jaap-crypto` (§3.2).
//! * A **revocation authority** ([`RevocationAuthority`]) issues revocation
//!   certificates on behalf of the AA (§4.3).
//! * A [`TrustStore`] holds the verification keys a coalition server trusts
//!   and converts *cryptographically verified* certificates into the
//!   idealized messages of `jaap-core` ([`TrustStore::idealize`]), plus the
//!   engine's [`jaap_core::engine::TrustAssumptions`].
//!
//! Certificates are encoded with a deterministic TLV scheme
//! ([`encoding::Encoder`]) so signatures are over canonical bytes — no
//! serde/JSON dependency.

pub mod attribute;
pub mod authority;
pub mod crl;
pub mod encoding;
pub mod identity;
pub mod truststore;

pub use attribute::{
    AttributeCertificate, AttributeRevocation, CompoundAttributeCertificate,
    ThresholdAttributeCertificate, ThresholdSubject,
};
pub use authority::{CertificateAuthority, RevocationAuthority};
pub use crl::{Crl, CrlEntry};
pub use identity::{IdentityCertificate, IdentityRevocation};
pub use truststore::TrustStore;

use jaap_core::syntax::KeyId;
use jaap_crypto::rsa::RsaPublicKey;

/// Errors raised by certificate verification and idealization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// A signature did not verify.
    BadSignature(String),
    /// The verifier has no trusted key for the claimed issuer.
    UnknownIssuer(String),
    /// Structural problems (empty member lists, bad thresholds, ...).
    Malformed(String),
}

impl core::fmt::Display for PkiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PkiError::BadSignature(m) => write!(f, "bad signature: {m}"),
            PkiError::UnknownIssuer(m) => write!(f, "unknown issuer: {m}"),
            PkiError::Malformed(m) => write!(f, "malformed certificate: {m}"),
        }
    }
}

impl std::error::Error for PkiError {}

/// The logic-level name of an RSA public key: `K:<first 12 hex of key id>`.
///
/// The paper identifies keys by "the hash of N and the public exponent e"
/// (§3.2); this is that hash, truncated for readable derivations.
#[must_use]
pub fn key_name(key: &RsaPublicKey) -> KeyId {
    KeyId::new(format!("K:{}", &key.key_id()[..12]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaap_crypto::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_names_are_stable_and_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = RsaKeyPair::generate(&mut rng, 128).expect("a");
        let b = RsaKeyPair::generate(&mut rng, 128).expect("b");
        assert_eq!(key_name(a.public()), key_name(a.public()));
        assert_ne!(key_name(a.public()), key_name(b.public()));
        assert!(key_name(a.public()).as_str().starts_with("K:"));
    }

    #[test]
    fn error_display() {
        assert!(PkiError::BadSignature("x".into())
            .to_string()
            .contains("bad signature"));
        assert!(PkiError::UnknownIssuer("y".into())
            .to_string()
            .contains("unknown issuer"));
    }
}
