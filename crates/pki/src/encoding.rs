//! Deterministic TLV encoding for certificate bodies.
//!
//! Signatures must be over canonical bytes; this tiny tag-length-value
//! scheme is the canonical form. Every field is written as
//! `tag(1) || len(4, big-endian) || value`, so distinct field sequences can
//! never collide.
//!
//! The [`Decoder`] reads the same format back. Certificate *verification*
//! never needs it (bodies are re-encoded from parsed fields and compared
//! under the signature), but durable storage does: the coalition journal
//! serializes whole certificates — signature included — as TLV and decodes
//! them on crash recovery.

use crate::PkiError;

/// Field tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// UTF-8 string.
    Str = 1,
    /// Unsigned 64-bit integer.
    U64 = 2,
    /// Signed 64-bit integer (times).
    I64 = 3,
    /// Raw bytes.
    Bytes = 4,
    /// List header (value is the element count; elements follow).
    List = 5,
}

/// Canonical encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder seeded with a domain-separation label.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut e = Encoder { buf: Vec::new() };
        e.put_str(domain);
        e
    }

    /// Appends a string field.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put(Tag::Str, s.as_bytes())
    }

    /// Appends a `u64` field.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.put(Tag::U64, &v.to_be_bytes())
    }

    /// Appends an `i64` field (timestamps).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.put(Tag::I64, &v.to_be_bytes())
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.put(Tag::Bytes, b)
    }

    /// Appends a list header for `count` elements.
    pub fn put_list(&mut self, count: usize) -> &mut Self {
        self.put(Tag::List, &(count as u64).to_be_bytes())
    }

    /// The canonical bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn put(&mut self, tag: Tag, value: &[u8]) -> &mut Self {
        self.buf.push(tag as u8);
        self.buf.extend_from_slice(
            &u32::try_from(value.len())
                .expect("field too long")
                .to_be_bytes(),
        );
        self.buf.extend_from_slice(value);
        self
    }
}

/// Canonical decoder: reads fields back in the order — and with the tags —
/// they were written. Any mismatch (wrong tag, short buffer, bad UTF-8) is
/// a [`PkiError::Malformed`]; the caller treats the whole buffer as
/// corrupt.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding a buffer produced by [`Encoder::new`] with the same
    /// domain-separation label.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] if the leading domain field is absent or
    /// differs.
    pub fn new(buf: &'a [u8], domain: &str) -> Result<Self, PkiError> {
        let mut d = Decoder { buf, pos: 0 };
        let got = d.take_str()?;
        if got != domain {
            return Err(PkiError::Malformed(format!(
                "domain mismatch: expected {domain:?}, found {got:?}"
            )));
        }
        Ok(d)
    }

    /// Reads a string field.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] on tag/length/UTF-8 mismatch.
    pub fn take_str(&mut self) -> Result<String, PkiError> {
        let raw = self.take(Tag::Str)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| PkiError::Malformed("string field is not UTF-8".into()))
    }

    /// Reads a `u64` field.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] on tag/length mismatch.
    pub fn take_u64(&mut self) -> Result<u64, PkiError> {
        let raw = self.take(Tag::U64)?;
        let arr: [u8; 8] = raw
            .try_into()
            .map_err(|_| PkiError::Malformed("u64 field is not 8 bytes".into()))?;
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads an `i64` field.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] on tag/length mismatch.
    pub fn take_i64(&mut self) -> Result<i64, PkiError> {
        let raw = self.take(Tag::I64)?;
        let arr: [u8; 8] = raw
            .try_into()
            .map_err(|_| PkiError::Malformed("i64 field is not 8 bytes".into()))?;
        Ok(i64::from_be_bytes(arr))
    }

    /// Reads a raw-bytes field.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] on tag/length mismatch.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, PkiError> {
        Ok(self.take(Tag::Bytes)?.to_vec())
    }

    /// Reads a list header, returning the element count.
    ///
    /// # Errors
    ///
    /// [`PkiError::Malformed`] on tag/length mismatch or a count that
    /// cannot fit in `usize`.
    pub fn take_list(&mut self) -> Result<usize, PkiError> {
        let raw = self.take(Tag::List)?;
        let arr: [u8; 8] = raw
            .try_into()
            .map_err(|_| PkiError::Malformed("list header is not 8 bytes".into()))?;
        usize::try_from(u64::from_be_bytes(arr))
            .map_err(|_| PkiError::Malformed("list count overflows usize".into()))
    }

    /// `true` when every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, want: Tag) -> Result<&'a [u8], PkiError> {
        let header_end = self.pos.checked_add(5).filter(|&e| e <= self.buf.len());
        let Some(header_end) = header_end else {
            return Err(PkiError::Malformed("truncated field header".into()));
        };
        let tag = self.buf[self.pos];
        if tag != want as u8 {
            return Err(PkiError::Malformed(format!(
                "expected tag {want:?} ({}), found {tag}",
                want as u8
            )));
        }
        let len = u32::from_be_bytes(
            self.buf[self.pos + 1..header_end]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        let value_end = header_end.checked_add(len).filter(|&e| e <= self.buf.len());
        let Some(value_end) = value_end else {
            return Err(PkiError::Malformed("truncated field value".into()));
        };
        let value = &self.buf[header_end..value_end];
        self.pos = value_end;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Encoder::new("test");
        a.put_str("x").put_u64(5);
        let mut b = Encoder::new("test");
        b.put_str("x").put_u64(5);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn field_order_matters() {
        let mut a = Encoder::new("test");
        a.put_str("x").put_str("y");
        let mut b = Encoder::new("test");
        b.put_str("y").put_str("x");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn no_concatenation_ambiguity() {
        // ("ab","c") must differ from ("a","bc").
        let mut a = Encoder::new("t");
        a.put_str("ab").put_str("c");
        let mut b = Encoder::new("t");
        b.put_str("a").put_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn types_are_tagged() {
        // The string "\0\0\0\0\0\0\0\x05" differs from u64 5.
        let mut a = Encoder::new("t");
        a.put_str("\0\0\0\0\0\0\0\u{5}");
        let mut b = Encoder::new("t");
        b.put_u64(5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domains_separate() {
        let a = Encoder::new("identity-cert").finish();
        let b = Encoder::new("attribute-cert").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn i64_roundtrip_encoding_of_negative_times() {
        let mut a = Encoder::new("t");
        a.put_i64(-5);
        let mut b = Encoder::new("t");
        b.put_i64(5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn list_header_disambiguates() {
        let mut a = Encoder::new("t");
        a.put_list(2).put_str("x").put_str("y");
        let mut b = Encoder::new("t");
        b.put_list(1).put_str("x");
        b.put_str("y");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn decoder_roundtrips_every_field_type() {
        let mut e = Encoder::new("round");
        e.put_str("alice")
            .put_u64(42)
            .put_i64(-7)
            .put_bytes(&[1, 2, 3])
            .put_list(2)
            .put_str("x")
            .put_str("y");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes, "round").expect("domain");
        assert_eq!(d.take_str().expect("str"), "alice");
        assert_eq!(d.take_u64().expect("u64"), 42);
        assert_eq!(d.take_i64().expect("i64"), -7);
        assert_eq!(d.take_bytes().expect("bytes"), vec![1, 2, 3]);
        assert_eq!(d.take_list().expect("list"), 2);
        assert_eq!(d.take_str().expect("x"), "x");
        assert_eq!(d.take_str().expect("y"), "y");
        assert!(d.is_empty());
    }

    #[test]
    fn decoder_rejects_wrong_domain() {
        let bytes = Encoder::new("a").finish();
        assert!(Decoder::new(&bytes, "b").is_err());
    }

    #[test]
    fn decoder_rejects_wrong_tag() {
        let mut e = Encoder::new("t");
        e.put_u64(5);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes, "t").expect("domain");
        assert!(d.take_str().is_err());
    }

    #[test]
    fn decoder_rejects_truncation_at_every_cut() {
        let mut e = Encoder::new("t");
        e.put_str("hello").put_u64(9);
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            let decoded = Decoder::new(prefix, "t")
                .and_then(|mut d| {
                    d.take_str()?;
                    d.take_u64()
                })
                .is_ok();
            assert!(!decoded, "truncation at {cut} must not decode cleanly");
        }
    }
}
