//! Deterministic TLV encoding for certificate bodies.
//!
//! Signatures must be over canonical bytes; this tiny tag-length-value
//! scheme is the canonical form. Every field is written as
//! `tag(1) || len(4, big-endian) || value`, so distinct field sequences can
//! never collide.

/// Field tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// UTF-8 string.
    Str = 1,
    /// Unsigned 64-bit integer.
    U64 = 2,
    /// Signed 64-bit integer (times).
    I64 = 3,
    /// Raw bytes.
    Bytes = 4,
    /// List header (value is the element count; elements follow).
    List = 5,
}

/// Canonical encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder seeded with a domain-separation label.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut e = Encoder { buf: Vec::new() };
        e.put_str(domain);
        e
    }

    /// Appends a string field.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put(Tag::Str, s.as_bytes())
    }

    /// Appends a `u64` field.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.put(Tag::U64, &v.to_be_bytes())
    }

    /// Appends an `i64` field (timestamps).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.put(Tag::I64, &v.to_be_bytes())
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.put(Tag::Bytes, b)
    }

    /// Appends a list header for `count` elements.
    pub fn put_list(&mut self, count: usize) -> &mut Self {
        self.put(Tag::List, &(count as u64).to_be_bytes())
    }

    /// The canonical bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn put(&mut self, tag: Tag, value: &[u8]) -> &mut Self {
        self.buf.push(tag as u8);
        self.buf.extend_from_slice(
            &u32::try_from(value.len())
                .expect("field too long")
                .to_be_bytes(),
        );
        self.buf.extend_from_slice(value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Encoder::new("test");
        a.put_str("x").put_u64(5);
        let mut b = Encoder::new("test");
        b.put_str("x").put_u64(5);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn field_order_matters() {
        let mut a = Encoder::new("test");
        a.put_str("x").put_str("y");
        let mut b = Encoder::new("test");
        b.put_str("y").put_str("x");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn no_concatenation_ambiguity() {
        // ("ab","c") must differ from ("a","bc").
        let mut a = Encoder::new("t");
        a.put_str("ab").put_str("c");
        let mut b = Encoder::new("t");
        b.put_str("a").put_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn types_are_tagged() {
        // The string "\0\0\0\0\0\0\0\x05" differs from u64 5.
        let mut a = Encoder::new("t");
        a.put_str("\0\0\0\0\0\0\0\u{5}");
        let mut b = Encoder::new("t");
        b.put_u64(5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domains_separate() {
        let a = Encoder::new("identity-cert").finish();
        let b = Encoder::new("attribute-cert").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn i64_roundtrip_encoding_of_negative_times() {
        let mut a = Encoder::new("t");
        a.put_i64(-5);
        let mut b = Encoder::new("t");
        b.put_i64(5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn list_header_disambiguates() {
        let mut a = Encoder::new("t");
        a.put_list(2).put_str("x").put_str("y");
        let mut b = Encoder::new("t");
        b.put_list(1).put_str("x");
        b.put_str("y");
        assert_ne!(a.finish(), b.finish());
    }
}
