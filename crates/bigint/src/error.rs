//! Error types for parsing.

use core::fmt;

/// Error returned when parsing a [`crate::Nat`] or [`crate::Int`] from a
/// string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError {
    pub(crate) kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    Empty,
    InvalidDigit { ch: char, radix: u32 },
}

impl ParseNatError {
    pub(crate) fn empty() -> Self {
        ParseNatError {
            kind: ParseErrorKind::Empty,
        }
    }

    pub(crate) fn invalid_digit(ch: char, radix: u32) -> Self {
        ParseNatError {
            kind: ParseErrorKind::InvalidDigit { ch, radix },
        }
    }
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit { ch, radix } => {
                write!(f, "invalid digit {ch:?} for radix {radix}")
            }
        }
    }
}

impl std::error::Error for ParseNatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ParseNatError::empty().to_string(),
            "cannot parse integer from empty string"
        );
        assert_eq!(
            ParseNatError::invalid_digit('z', 10).to_string(),
            "invalid digit 'z' for radix 10"
        );
    }
}
