//! Random [`Nat`] generation from any [`rand::RngCore`].
//!
//! Only the `RngCore` trait surface is used so the crate is insulated from
//! `rand` API churn between minor versions.

use rand::RngCore;

use crate::Nat;

/// A uniformly random `Nat` with at most `bits` bits (i.e. in `0..2^bits`).
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(7);
/// let n = jaap_bigint::random_nat(&mut rng, 100);
/// assert!(n.bit_len() <= 100);
/// ```
#[must_use]
pub fn random_nat(rng: &mut dyn RngCore, bits: usize) -> Nat {
    if bits == 0 {
        return Nat::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut out = Vec::with_capacity(limbs);
    for _ in 0..limbs {
        out.push(rng.next_u64());
    }
    let top_bits = bits % 64;
    if top_bits != 0 {
        let last = out.last_mut().expect("at least one limb");
        *last &= u64::MAX >> (64 - top_bits);
    }
    Nat::from_limbs(out)
}

/// A uniformly random `Nat` with *exactly* `bits` bits (top bit forced).
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn random_nat_exact(rng: &mut dyn RngCore, bits: usize) -> Nat {
    assert!(bits > 0, "cannot force the top bit of a 0-bit number");
    let mut n = random_nat(rng, bits);
    n.set_bit(bits - 1, true);
    n
}

/// A uniformly random `Nat` in `0..bound` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
#[must_use]
pub fn random_below(rng: &mut dyn RngCore, bound: &Nat) -> Nat {
    assert!(!bound.is_zero(), "random_below bound must be positive");
    let bits = bound.bit_len();
    loop {
        let candidate = random_nat(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_nat_respects_bit_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [0usize, 1, 63, 64, 65, 130] {
            for _ in 0..20 {
                assert!(random_nat(&mut rng, bits).bit_len() <= bits);
            }
        }
    }

    #[test]
    fn random_nat_exact_forces_top_bit() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [1usize, 64, 65, 257] {
            for _ in 0..20 {
                assert_eq!(random_nat_exact(&mut rng, bits).bit_len(), bits);
            }
        }
    }

    #[test]
    fn random_below_is_reduced() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = Nat::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_below_hits_small_range() {
        // With bound 2 both values should appear quickly.
        let mut rng = StdRng::seed_from_u64(4);
        let bound = Nat::two();
        let mut seen = [false, false];
        for _ in 0..64 {
            let v = random_below(&mut rng, &bound).to_u64().expect("small");
            seen[v as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_nat(&mut StdRng::seed_from_u64(42), 256);
        let b = random_nat(&mut StdRng::seed_from_u64(42), 256);
        assert_eq!(a, b);
    }
}
