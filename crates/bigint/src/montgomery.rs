//! Montgomery-form modular arithmetic for odd moduli.
//!
//! A [`MontgomeryContext`] precomputes, for an odd modulus `n` of `k`
//! 64-bit limbs, the word inverse `n' = -n⁻¹ mod 2⁶⁴` and `R² mod n`
//! (with `R = 2^{64k}`). Products are then reduced word by word with the
//! CIOS (coarsely integrated operand scanning) method — one multiply-add
//! sweep per limb instead of a full-width `div_rem` after every partial
//! product, which is what makes `modpow` over RSA-sized moduli cheap.
//!
//! Values inside the context live in Montgomery form `aR mod n`; the
//! context converts on the way in ([`MontgomeryContext::to_mont`]) and out
//! ([`MontgomeryContext::from_mont`]). [`MontgomeryContext::modpow`] runs a
//! sliding-window exponentiation entirely in Montgomery form, squaring via
//! the dedicated [`Nat::square`] routine followed by a word-by-word REDC.

use crate::Nat;

/// Precomputed reduction context for one odd modulus.
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    /// The modulus `n` (odd, > 1).
    n: Nat,
    /// Limb count `k` of the modulus.
    k: usize,
    /// `-n⁻¹ mod 2⁶⁴` (Dussé–Kaliski word inverse).
    n0_inv: u64,
    /// `R² mod n`, used to convert into Montgomery form.
    r2: Nat,
    /// `R mod n` — the Montgomery representation of 1.
    one: Nat,
}

impl MontgomeryContext {
    /// Builds a context for `n`. Returns `None` unless `n` is odd and > 1
    /// (Montgomery reduction requires `gcd(n, 2⁶⁴) = 1`).
    #[must_use]
    pub fn new(n: &Nat) -> Option<Self> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let k = n.limbs().len();
        let n0_inv = word_inverse(n.limbs()[0]).wrapping_neg();
        // R² mod n with R = 2^(64k): one shift + one division at setup.
        let r2 = Nat::one().shl_bits(128 * k).rem_nat(n);
        let one = Nat::one().shl_bits(64 * k).rem_nat(n);
        Some(MontgomeryContext {
            n: n.clone(),
            k,
            n0_inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    #[must_use]
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// Converts `a` (any natural) into Montgomery form `aR mod n`.
    #[must_use]
    pub fn to_mont(&self, a: &Nat) -> Nat {
        let a = if a >= &self.n {
            a.rem_nat(&self.n)
        } else {
            a.clone()
        };
        self.mont_mul(&a, &self.r2)
    }

    /// Converts `aR mod n` back to the ordinary residue `a mod n`.
    #[must_use]
    pub fn from_mont(&self, a: &Nat) -> Nat {
        self.mont_mul(a, &Nat::one())
    }

    /// Montgomery product `abR⁻¹ mod n` by CIOS: the reduction word is
    /// folded into each row of the schoolbook product.
    #[must_use]
    pub fn mont_mul(&self, a: &Nat, b: &Nat) -> Nat {
        let k = self.k;
        let nl = self.n.limbs();
        let al = a.limbs();
        let bl = b.limbs();
        debug_assert!(al.len() <= k && bl.len() <= k);
        // t has room for k limbs plus two carry words.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = al.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut c = 0u64;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = bl.get(j).copied().unwrap_or(0);
                let s = u128::from(*tj) + u128::from(ai) * u128::from(bj) + u128::from(c);
                *tj = s as u64;
                c = (s >> 64) as u64;
            }
            let s = u128::from(t[k]) + u128::from(c);
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;
            // m chosen so t + m*n clears the low word; then shift one word.
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = u128::from(t[0]) + u128::from(m) * u128::from(nl[0]);
            let mut c = (s >> 64) as u64;
            for j in 1..k {
                let s = u128::from(t[j]) + u128::from(m) * u128::from(nl[j]) + u128::from(c);
                t[j - 1] = s as u64;
                c = (s >> 64) as u64;
            }
            let s = u128::from(t[k]) + u128::from(c);
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + ((s >> 64) as u64);
            t[k + 1] = 0;
        }
        self.final_reduce(t)
    }

    /// Montgomery square `a²R⁻¹ mod n`: the triangular [`Nat::square`]
    /// computes the double-width product (about half the partial products
    /// of a general multiply), then a word-by-word REDC folds it back.
    #[must_use]
    pub fn mont_sqr(&self, a: &Nat) -> Nat {
        self.redc(a.square())
    }

    /// Word-by-word Montgomery reduction of a value `< nR` (e.g. a full
    /// double-width product of two reduced operands): returns `tR⁻¹ mod n`.
    #[must_use]
    pub fn redc(&self, t: Nat) -> Nat {
        let k = self.k;
        let nl = self.n.limbs();
        let mut t = t.limbs().to_vec();
        t.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv);
            let mut c = 0u64;
            for j in 0..k {
                let s = u128::from(t[i + j]) + u128::from(m) * u128::from(nl[j]) + u128::from(c);
                t[i + j] = s as u64;
                c = (s >> 64) as u64;
            }
            let mut idx = i + k;
            while c != 0 {
                let s = u128::from(t[idx]) + u128::from(c);
                t[idx] = s as u64;
                c = (s >> 64) as u64;
                idx += 1;
            }
        }
        self.final_reduce(t[k..].to_vec())
    }

    /// Sliding-window modular exponentiation `base^exp mod n` through the
    /// Montgomery machinery. `base` need not be reduced.
    #[must_use]
    pub fn modpow(&self, base: &Nat, exp: &Nat) -> Nat {
        if exp.is_zero() {
            return Nat::one().rem_nat(&self.n);
        }
        let b = self.to_mont(base);
        if b.is_zero() {
            return Nat::zero();
        }
        let w = crate::modular::window_bits(exp.bit_len());
        // Odd powers b^1, b^3, …, b^(2^w - 1) in Montgomery form.
        let b2 = self.mont_sqr(&b);
        let mut table = Vec::with_capacity(1 << (w - 1));
        table.push(b);
        for i in 1..(1usize << (w - 1)) {
            let prev = &table[i - 1];
            table.push(self.mont_mul(prev, &b2));
        }
        let mut acc = self.one.clone();
        let mut started = false;
        let mut i = exp.bit_len() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if started {
                    acc = self.mont_sqr(&acc);
                }
                i -= 1;
                continue;
            }
            // Take the widest window [l..=i] (≤ w bits) ending on a set bit.
            let mut l = (i - w as isize + 1).max(0);
            while !exp.bit(l as usize) {
                l += 1;
            }
            let width = (i - l + 1) as usize;
            if started {
                for _ in 0..width {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut val = 0usize;
            for j in (l..=i).rev() {
                val = (val << 1) | usize::from(exp.bit(j as usize));
            }
            debug_assert!(val & 1 == 1);
            acc = if started {
                self.mont_mul(&acc, &table[val >> 1])
            } else {
                table[val >> 1].clone()
            };
            started = true;
            i = l - 1;
        }
        self.from_mont(&acc)
    }

    /// Normalizes a limb buffer (≥ k limbs plus carries) to a `Nat < n`.
    /// After CIOS/REDC the value is `< 2n`, so a single conditional
    /// subtraction suffices.
    fn final_reduce(&self, limbs: Vec<u64>) -> Nat {
        let v = Nat::from_limbs(limbs);
        debug_assert!(v < self.n.shl_bits(1), "Montgomery output out of range");
        if v >= self.n {
            &v - &self.n
        } else {
            v
        }
    }
}

/// Inverse of an odd word mod 2⁶⁴ by Newton–Hensel lifting: each step
/// doubles the number of correct low bits, so five steps from a 5-bit-exact
/// seed cover 64 bits.
fn word_inverse(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 5 bits for odd x (x*x ≡ 1 mod 32)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryContext::new(&nat(10)).is_none());
        assert!(MontgomeryContext::new(&Nat::one()).is_none());
        assert!(MontgomeryContext::new(&Nat::zero()).is_none());
        assert!(MontgomeryContext::new(&nat(9)).is_some());
    }

    #[test]
    fn word_inverse_random_odds() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..50 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let odd = x | 1;
            assert_eq!(odd.wrapping_mul(word_inverse(odd)), 1);
        }
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let m: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("m");
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        for v in [0u128, 1, 2, 0xDEADBEEF, u128::MAX - 17] {
            let a = nat(v).rem_nat(&m);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        }
    }

    #[test]
    fn mont_mul_matches_mulm() {
        let m: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("m");
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        let a = nat(0x1234_5678_9ABC_DEF0_1111);
        let b = nat(0xFEDC_BA98_7654_3210_2222);
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        assert_eq!(ctx.from_mont(&ctx.mont_mul(&am, &bm)), a.mulm(&b, &m));
        assert_eq!(ctx.from_mont(&ctx.mont_sqr(&am)), a.mulm(&a, &m));
    }

    #[test]
    fn modpow_matches_plain_on_fermat() {
        // 2^128 - 159 is prime: a^(p-1) ≡ 1 (mod p).
        let p: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("p");
        let e = &p - &Nat::one();
        let ctx = MontgomeryContext::new(&p).expect("ctx");
        for a in [2u128, 3, 65_537, 0xDEADBEEF] {
            assert_eq!(ctx.modpow(&nat(a), &e), Nat::one());
            assert_eq!(ctx.modpow(&nat(a), &e), nat(a).modpow_plain(&e, &p));
        }
    }

    #[test]
    fn modpow_edge_exponents() {
        let m = nat(1_000_003); // odd prime
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        assert_eq!(ctx.modpow(&nat(5), &Nat::zero()), Nat::one());
        assert_eq!(ctx.modpow(&nat(5), &Nat::one()), nat(5));
        assert_eq!(ctx.modpow(&Nat::zero(), &nat(12)), Nat::zero());
        // Base larger than the modulus reduces first.
        assert_eq!(
            ctx.modpow(&nat(1_000_003 + 7), &nat(3)),
            nat(7).modpow_plain(&nat(3), &m)
        );
    }

    #[test]
    fn redc_of_wide_product_reduces() {
        let m: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("m");
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        let a = ctx.to_mont(&nat(0xABCDEF));
        let b = ctx.to_mont(&nat(0x123456));
        assert_eq!(ctx.redc(a.mul_nat(&b)), ctx.mont_mul(&a, &b));
    }
}
