//! Montgomery-form modular arithmetic for odd moduli.
//!
//! A [`MontgomeryContext`] precomputes, for an odd modulus `n` of `k`
//! 64-bit limbs, the word inverse `n' = -n⁻¹ mod 2⁶⁴` and `R² mod n`
//! (with `R = 2^{64k}`). Products are then reduced word by word with the
//! CIOS (coarsely integrated operand scanning) method — one multiply-add
//! sweep per limb instead of a full-width `div_rem` after every partial
//! product, which is what makes `modpow` over RSA-sized moduli cheap.
//!
//! Values inside the context live in Montgomery form `aR mod n`; the
//! context converts on the way in ([`MontgomeryContext::to_mont`]) and out
//! ([`MontgomeryContext::from_mont`]). [`MontgomeryContext::modpow`] runs a
//! sliding-window exponentiation entirely in Montgomery form, squaring via
//! the dedicated [`Nat::square`] routine followed by a word-by-word REDC.

use crate::Nat;

/// Precomputed reduction context for one odd modulus.
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    /// The modulus `n` (odd, > 1).
    n: Nat,
    /// Limb count `k` of the modulus.
    k: usize,
    /// `-n⁻¹ mod 2⁶⁴` (Dussé–Kaliski word inverse).
    n0_inv: u64,
    /// `R² mod n`, used to convert into Montgomery form.
    r2: Nat,
    /// `R mod n` — the Montgomery representation of 1.
    one: Nat,
}

impl MontgomeryContext {
    /// Builds a context for `n`. Returns `None` unless `n` is odd and > 1
    /// (Montgomery reduction requires `gcd(n, 2⁶⁴) = 1`).
    #[must_use]
    pub fn new(n: &Nat) -> Option<Self> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let k = n.limbs().len();
        let n0_inv = word_inverse(n.limbs()[0]).wrapping_neg();
        // R² mod n with R = 2^(64k): one shift + one division at setup.
        let r2 = Nat::one().shl_bits(128 * k).rem_nat(n);
        let one = Nat::one().shl_bits(64 * k).rem_nat(n);
        Some(MontgomeryContext {
            n: n.clone(),
            k,
            n0_inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    #[must_use]
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// Converts `a` (any natural) into Montgomery form `aR mod n`.
    #[must_use]
    pub fn to_mont(&self, a: &Nat) -> Nat {
        let a = if a >= &self.n {
            a.rem_nat(&self.n)
        } else {
            a.clone()
        };
        self.mont_mul(&a, &self.r2)
    }

    /// Converts `aR mod n` back to the ordinary residue `a mod n`.
    #[must_use]
    pub fn from_mont(&self, a: &Nat) -> Nat {
        self.mont_mul(a, &Nat::one())
    }

    /// Montgomery product `abR⁻¹ mod n` by CIOS: the reduction word is
    /// folded into each row of the schoolbook product.
    #[must_use]
    pub fn mont_mul(&self, a: &Nat, b: &Nat) -> Nat {
        let k = self.k;
        let nl = self.n.limbs();
        let al = a.limbs();
        let bl = b.limbs();
        debug_assert!(al.len() <= k && bl.len() <= k);
        // t has room for k limbs plus two carry words.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = al.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut c = 0u64;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = bl.get(j).copied().unwrap_or(0);
                let s = u128::from(*tj) + u128::from(ai) * u128::from(bj) + u128::from(c);
                *tj = s as u64;
                c = (s >> 64) as u64;
            }
            let s = u128::from(t[k]) + u128::from(c);
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;
            // m chosen so t + m*n clears the low word; then shift one word.
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = u128::from(t[0]) + u128::from(m) * u128::from(nl[0]);
            let mut c = (s >> 64) as u64;
            for j in 1..k {
                let s = u128::from(t[j]) + u128::from(m) * u128::from(nl[j]) + u128::from(c);
                t[j - 1] = s as u64;
                c = (s >> 64) as u64;
            }
            let s = u128::from(t[k]) + u128::from(c);
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + ((s >> 64) as u64);
            t[k + 1] = 0;
        }
        self.final_reduce(t)
    }

    /// Montgomery square `a²R⁻¹ mod n`: the triangular [`Nat::square`]
    /// computes the double-width product (about half the partial products
    /// of a general multiply), then a word-by-word REDC folds it back.
    #[must_use]
    pub fn mont_sqr(&self, a: &Nat) -> Nat {
        self.redc(a.square())
    }

    /// Word-by-word Montgomery reduction of a value `< nR` (e.g. a full
    /// double-width product of two reduced operands): returns `tR⁻¹ mod n`.
    #[must_use]
    pub fn redc(&self, t: Nat) -> Nat {
        let k = self.k;
        let nl = self.n.limbs();
        let mut t = t.limbs().to_vec();
        t.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv);
            let mut c = 0u64;
            for j in 0..k {
                let s = u128::from(t[i + j]) + u128::from(m) * u128::from(nl[j]) + u128::from(c);
                t[i + j] = s as u64;
                c = (s >> 64) as u64;
            }
            let mut idx = i + k;
            while c != 0 {
                let s = u128::from(t[idx]) + u128::from(c);
                t[idx] = s as u64;
                c = (s >> 64) as u64;
                idx += 1;
            }
        }
        self.final_reduce(t[k..].to_vec())
    }

    /// Sliding-window modular exponentiation `base^exp mod n` through the
    /// Montgomery machinery. `base` need not be reduced.
    #[must_use]
    pub fn modpow(&self, base: &Nat, exp: &Nat) -> Nat {
        if exp.is_zero() {
            return Nat::one().rem_nat(&self.n);
        }
        let b = self.to_mont(base);
        if b.is_zero() {
            return Nat::zero();
        }
        let w = crate::modular::window_bits(exp.bit_len());
        // Odd powers b^1, b^3, …, b^(2^w - 1) in Montgomery form.
        let b2 = self.mont_sqr(&b);
        let mut table = Vec::with_capacity(1 << (w - 1));
        table.push(b);
        for i in 1..(1usize << (w - 1)) {
            let prev = &table[i - 1];
            table.push(self.mont_mul(prev, &b2));
        }
        let mut acc = self.one.clone();
        let mut started = false;
        let mut i = exp.bit_len() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if started {
                    acc = self.mont_sqr(&acc);
                }
                i -= 1;
                continue;
            }
            // Take the widest window [l..=i] (≤ w bits) ending on a set bit.
            let mut l = (i - w as isize + 1).max(0);
            while !exp.bit(l as usize) {
                l += 1;
            }
            let width = (i - l + 1) as usize;
            if started {
                for _ in 0..width {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut val = 0usize;
            for j in (l..=i).rev() {
                val = (val << 1) | usize::from(exp.bit(j as usize));
            }
            debug_assert!(val & 1 == 1);
            acc = if started {
                self.mont_mul(&acc, &table[val >> 1])
            } else {
                table[val >> 1].clone()
            };
            started = true;
            i = l - 1;
        }
        self.from_mont(&acc)
    }

    /// Builds a fixed-base ladder `base^(2^i) mod n` (in Montgomery form)
    /// sized for exponents up to `max_exp_bits` bits. Building costs
    /// `max_exp_bits - 1` Montgomery squarings **once**; every later
    /// [`FixedBaseWindow::modpow`] with this base is then one Montgomery
    /// multiply per *set* exponent bit and zero squarings — the right
    /// trade when the same base (a verification key residue, a standing
    /// certificate signature) is exponentiated again and again.
    #[must_use]
    pub fn fixed_base(&self, base: &Nat, max_exp_bits: usize) -> FixedBaseWindow {
        let b = self.to_mont(base);
        if b.is_zero() {
            // base ≡ 0 mod n: the empty ladder is the sentinel.
            return FixedBaseWindow { pow2: Vec::new() };
        }
        let len = max_exp_bits.max(1);
        let mut pow2 = Vec::with_capacity(len);
        pow2.push(b);
        for i in 1..len {
            let sq = self.mont_sqr(&pow2[i - 1]);
            pow2.push(sq);
        }
        FixedBaseWindow { pow2 }
    }

    /// Straus/Shamir interleaved multi-exponentiation:
    /// `Π baseᵢ^expᵢ mod n` with one **shared** squaring chain across all
    /// bases instead of one chain per base. Each base gets a full
    /// `2^w - 1`-entry digit table; the exponents are scanned in aligned
    /// `w`-bit windows from the top, squaring `w` times per window and
    /// multiplying in each base's digit. For m bases of b-bit exponents
    /// this is `b` squarings + ~`m·b/w` multiplies versus `m·b` squarings
    /// serially — the recombination shape of joint/threshold signing
    /// (`S = Π Mᵢ^{dᵢ}`) and of batched verification.
    #[must_use]
    pub fn multi_modpow(&self, pairs: &[(&Nat, &Nat)]) -> Nat {
        let mut active: Vec<(Nat, &Nat)> = Vec::with_capacity(pairs.len());
        let mut max_bits = 0usize;
        for (base, exp) in pairs {
            if exp.is_zero() {
                continue; // factor of 1
            }
            let b = self.to_mont(base);
            if b.is_zero() {
                return Nat::zero(); // 0^e (e > 0) annihilates the product
            }
            max_bits = max_bits.max(exp.bit_len());
            active.push((b, exp));
        }
        if active.is_empty() {
            return Nat::one().rem_nat(&self.n);
        }
        // Pick the window by total multiply count for *this* shape: per
        // base a `2^w - 2`-multiply table plus one multiply per nonzero
        // `w`-bit digit (`⌈b/w⌉ · (1 - 2^{-w})` on average). For short
        // exponents (batch-verification weights are 32 bits) wide windows
        // lose — the tables dominate — so w=2 wins there, while long
        // recombination exponents still get w=4.
        let m = active.len() as f64;
        let b = max_bits as f64;
        let w = (1usize..=4)
            .min_by_key(|&w| {
                let table = m * (f64::from(1u32 << w) - 2.0);
                let digits = m * (b / w as f64).ceil() * (1.0 - f64::from(1u32 << w).recip());
                (table + digits) as u64
            })
            .unwrap_or(2);
        // Full digit tables: tables[i][d-1] = baseᵢ^d for d in 1..2^w.
        let tables: Vec<Vec<Nat>> = active
            .iter()
            .map(|(b, _)| {
                let mut t = Vec::with_capacity((1usize << w) - 1);
                t.push(b.clone());
                for d in 2..(1usize << w) {
                    t.push(self.mont_mul(&t[d - 2], b));
                }
                t
            })
            .collect();
        let windows = max_bits.div_ceil(w);
        let mut acc: Option<Nat> = None;
        for win in (0..windows).rev() {
            if let Some(a) = acc.take() {
                let mut sq = a;
                for _ in 0..w {
                    sq = self.mont_sqr(&sq);
                }
                acc = Some(sq);
            }
            let lo = win * w;
            let hi = ((win + 1) * w).min(max_bits);
            for (i, (_, exp)) in active.iter().enumerate() {
                let mut d = 0usize;
                for j in (lo..hi).rev() {
                    d = (d << 1) | usize::from(exp.bit(j));
                }
                if d != 0 {
                    acc = Some(match acc.take() {
                        Some(a) => self.mont_mul(&a, &tables[i][d - 1]),
                        None => tables[i][d - 1].clone(),
                    });
                }
            }
        }
        match acc {
            Some(a) => self.from_mont(&a),
            None => Nat::one().rem_nat(&self.n),
        }
    }

    /// Normalizes a limb buffer (≥ k limbs plus carries) to a `Nat < n`.
    /// After CIOS/REDC the value is `< 2n`, so a single conditional
    /// subtraction suffices.
    fn final_reduce(&self, limbs: Vec<u64>) -> Nat {
        let v = Nat::from_limbs(limbs);
        debug_assert!(v < self.n.shl_bits(1), "Montgomery output out of range");
        if v >= self.n {
            &v - &self.n
        } else {
            v
        }
    }
}

/// Fixed-base precomputation: the powers-of-two ladder `base^(2^i) mod n`
/// in Montgomery form. See [`MontgomeryContext::fixed_base`]. The ladder
/// is immutable after construction, so it can sit behind an `Arc` and be
/// shared across verification threads without locks.
#[derive(Debug, Clone)]
pub struct FixedBaseWindow {
    /// `pow2[i] = base^(2^i)` in Montgomery form; empty iff `base ≡ 0 mod n`.
    pow2: Vec<Nat>,
}

impl FixedBaseWindow {
    /// Number of exponent bits the precomputed ladder covers directly.
    /// Larger exponents still work — the ladder extends itself on the fly
    /// at one squaring per extra bit.
    #[must_use]
    pub fn max_bits(&self) -> usize {
        self.pow2.len()
    }

    /// Approximate heap footprint in bytes (for cache budgeting).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.pow2
            .iter()
            .map(|p| core::mem::size_of_val(p.limbs()))
            .sum()
    }

    /// `base^exp mod n`. `ctx` **must** be the context the ladder was
    /// built from (same modulus); results are nonsense otherwise.
    #[must_use]
    pub fn modpow(&self, ctx: &MontgomeryContext, exp: &Nat) -> Nat {
        ctx.from_mont(&self.pow_mont(ctx, exp))
    }

    /// Like [`FixedBaseWindow::modpow`] but returns the Montgomery-form
    /// residue, for callers chaining the power into further products.
    #[must_use]
    pub fn pow_mont(&self, ctx: &MontgomeryContext, exp: &Nat) -> Nat {
        if exp.is_zero() {
            // base^0 = 1 (Montgomery form), matching `modpow`'s convention
            // even for base ≡ 0.
            return ctx.one.clone();
        }
        if self.pow2.is_empty() {
            return Nat::zero(); // base ≡ 0 mod n
        }
        let bits = exp.bit_len();
        let mut acc: Option<Nat> = None;
        let in_table = bits.min(self.pow2.len());
        for (i, p) in self.pow2.iter().enumerate().take(in_table) {
            if exp.bit(i) {
                acc = Some(match acc.take() {
                    Some(a) => ctx.mont_mul(&a, p),
                    None => p.clone(),
                });
            }
        }
        if bits > self.pow2.len() {
            // Exponent outgrew the table: continue the ladder on the fly.
            let mut cur = ctx.mont_sqr(self.pow2.last().expect("nonempty ladder"));
            let mut i = self.pow2.len();
            loop {
                if exp.bit(i) {
                    acc = Some(match acc.take() {
                        Some(a) => ctx.mont_mul(&a, &cur),
                        None => cur.clone(),
                    });
                }
                i += 1;
                if i >= bits {
                    break;
                }
                cur = ctx.mont_sqr(&cur);
            }
        }
        acc.expect("nonzero exponent has a set bit")
    }
}

/// Inverse of an odd word mod 2⁶⁴ by Newton–Hensel lifting: each step
/// doubles the number of correct low bits, so five steps from a 5-bit-exact
/// seed cover 64 bits.
fn word_inverse(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 5 bits for odd x (x*x ≡ 1 mod 32)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryContext::new(&nat(10)).is_none());
        assert!(MontgomeryContext::new(&Nat::one()).is_none());
        assert!(MontgomeryContext::new(&Nat::zero()).is_none());
        assert!(MontgomeryContext::new(&nat(9)).is_some());
    }

    #[test]
    fn word_inverse_random_odds() {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..50 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let odd = x | 1;
            assert_eq!(odd.wrapping_mul(word_inverse(odd)), 1);
        }
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let m: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("m");
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        for v in [0u128, 1, 2, 0xDEADBEEF, u128::MAX - 17] {
            let a = nat(v).rem_nat(&m);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        }
    }

    #[test]
    fn mont_mul_matches_mulm() {
        let m: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("m");
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        let a = nat(0x1234_5678_9ABC_DEF0_1111);
        let b = nat(0xFEDC_BA98_7654_3210_2222);
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        assert_eq!(ctx.from_mont(&ctx.mont_mul(&am, &bm)), a.mulm(&b, &m));
        assert_eq!(ctx.from_mont(&ctx.mont_sqr(&am)), a.mulm(&a, &m));
    }

    #[test]
    fn modpow_matches_plain_on_fermat() {
        // 2^128 - 159 is prime: a^(p-1) ≡ 1 (mod p).
        let p: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("p");
        let e = &p - &Nat::one();
        let ctx = MontgomeryContext::new(&p).expect("ctx");
        for a in [2u128, 3, 65_537, 0xDEADBEEF] {
            assert_eq!(ctx.modpow(&nat(a), &e), Nat::one());
            assert_eq!(ctx.modpow(&nat(a), &e), nat(a).modpow_plain(&e, &p));
        }
    }

    #[test]
    fn modpow_edge_exponents() {
        let m = nat(1_000_003); // odd prime
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        assert_eq!(ctx.modpow(&nat(5), &Nat::zero()), Nat::one());
        assert_eq!(ctx.modpow(&nat(5), &Nat::one()), nat(5));
        assert_eq!(ctx.modpow(&Nat::zero(), &nat(12)), Nat::zero());
        // Base larger than the modulus reduces first.
        assert_eq!(
            ctx.modpow(&nat(1_000_003 + 7), &nat(3)),
            nat(7).modpow_plain(&nat(3), &m)
        );
    }

    #[test]
    fn fixed_base_matches_modpow() {
        let p: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("p");
        let ctx = MontgomeryContext::new(&p).expect("ctx");
        let base = nat(0xDEAD_BEEF_CAFE);
        let win = ctx.fixed_base(&base, 64);
        for e in [0u128, 1, 2, 3, 65_537, 0xFFFF_FFFF_FFFF_FFFF] {
            assert_eq!(win.modpow(&ctx, &nat(e)), ctx.modpow(&base, &nat(e)));
        }
        // Exponent wider than the precomputed ladder: on-the-fly extension.
        let wide = &p - &Nat::one();
        assert_eq!(win.modpow(&ctx, &wide), ctx.modpow(&base, &wide));
    }

    #[test]
    fn fixed_base_zero_base_and_unreduced_base() {
        let m = nat(1_000_003);
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        let zero_win = ctx.fixed_base(&Nat::zero(), 32);
        assert_eq!(zero_win.modpow(&ctx, &nat(5)), Nat::zero());
        assert_eq!(zero_win.modpow(&ctx, &Nat::zero()), Nat::one());
        let big = ctx.fixed_base(&nat(1_000_003 + 7), 32);
        assert_eq!(big.modpow(&ctx, &nat(3)), ctx.modpow(&nat(7), &nat(3)));
    }

    #[test]
    fn multi_modpow_matches_product_of_modpows() {
        let p: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("p");
        let ctx = MontgomeryContext::new(&p).expect("ctx");
        let pairs_raw = [
            (nat(3), nat(1_000_000_007)),
            (nat(0xDEADBEEF), nat(65_537)),
            (nat(12345), nat(0)),
            (nat(7), nat(0xFFFF_FFFF)),
        ];
        let pairs: Vec<(&Nat, &Nat)> = pairs_raw.iter().map(|(b, e)| (b, e)).collect();
        let mut expect = Nat::one();
        for (b, e) in &pairs_raw {
            expect = expect.mulm(&ctx.modpow(b, e), &p);
        }
        assert_eq!(ctx.multi_modpow(&pairs), expect);
    }

    #[test]
    fn multi_modpow_edge_cases() {
        let m = nat(1_000_003);
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        // Empty product and all-zero exponents are 1.
        assert_eq!(ctx.multi_modpow(&[]), Nat::one());
        let (z, b) = (Nat::zero(), nat(9));
        assert_eq!(ctx.multi_modpow(&[(&b, &z)]), Nat::one());
        // A zero base with a positive exponent annihilates everything.
        let (e, big) = (nat(3), nat(1_000_003 * 2));
        assert_eq!(ctx.multi_modpow(&[(&b, &e), (&big, &e)]), Nat::zero());
    }

    #[test]
    fn redc_of_wide_product_reduces() {
        let m: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("m");
        let ctx = MontgomeryContext::new(&m).expect("ctx");
        let a = ctx.to_mont(&nat(0xABCDEF));
        let b = ctx.to_mont(&nat(0x123456));
        assert_eq!(ctx.redc(a.mul_nat(&b)), ctx.mont_mul(&a, &b));
    }
}
