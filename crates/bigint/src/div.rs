//! Division: short division for single-limb divisors, Knuth Algorithm D
//! (TAOCP vol. 2, 4.3.1) for the general case.

use crate::Nat;

const BASE: u128 = 1 << 64;

impl Nat {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero; use [`Nat::checked_div_rem`] to handle
    /// that case.
    #[must_use]
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        self.checked_div_rem(divisor).expect("Nat division by zero")
    }

    /// Computes `(self / divisor, self % divisor)`, or `None` if `divisor`
    /// is zero.
    #[must_use]
    pub fn checked_div_rem(&self, divisor: &Nat) -> Option<(Nat, Nat)> {
        if divisor.is_zero() {
            return None;
        }
        if self < divisor {
            return Some((Nat::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return Some((q, Nat::from(r)));
        }
        Some(knuth_d(self, divisor))
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn div_rem_u64(&self, d: u64) -> (Nat, u64) {
        assert!(d != 0, "Nat division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// `self mod m`, panicking if `m` is zero.
    #[must_use]
    pub fn rem_nat(&self, m: &Nat) -> Nat {
        self.div_rem(m).1
    }
}

/// Knuth Algorithm D. Preconditions: `v.limbs.len() >= 2`, `u >= v`.
fn knuth_d(u: &Nat, v: &Nat) -> (Nat, Nat) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let s = v.limbs[n - 1].leading_zeros() as usize;
    let vn = v.shl_bits(s).limbs;
    let mut un = u.shl_bits(s).limbs;
    un.resize(u.limbs.len() + 1, 0); // room for the extra top limb

    let mut q = vec![0u64; m + 1];
    let vhi = u128::from(vn[n - 1]);
    let vlo = u128::from(vn[n - 2]);

    // D2-D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate qhat.
        let numhi = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
        let mut qhat = numhi / vhi;
        let mut rhat = numhi % vhi;
        loop {
            if qhat >= BASE || qhat * vlo > (rhat << 64) + u128::from(un[j + n - 2]) {
                qhat -= 1;
                rhat += vhi;
                if rhat < BASE {
                    continue;
                }
            }
            break;
        }

        // D4: multiply and subtract.
        let mut carry = 0u128;
        let mut borrow = 0i128;
        for i in 0..n {
            let p = qhat * u128::from(vn[i]) + carry;
            carry = p >> 64;
            let t = i128::from(un[i + j]) - i128::from(p as u64) - borrow;
            un[i + j] = t as u64;
            borrow = i128::from(t < 0);
        }
        let t = i128::from(un[j + n]) - carry as i128 - borrow;
        un[j + n] = t as u64;

        // D5/D6: if we subtracted too much, add one divisor back.
        if t < 0 {
            qhat -= 1;
            let mut c = 0u128;
            for i in 0..n {
                let sum = u128::from(un[i + j]) + u128::from(vn[i]) + c;
                un[i + j] = sum as u64;
                c = sum >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(c as u64);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = Nat::from_limbs(un[..n].to_vec()).shr_bits(s);
    (Nat::from_limbs(q), rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn division_identities() {
        let a = nat(1_000_000_007);
        assert_eq!(a.div_rem(&a), (Nat::one(), Nat::zero()));
        assert_eq!(a.div_rem(&Nat::one()), (a.clone(), Nat::zero()));
        assert_eq!(Nat::zero().div_rem(&a), (Nat::zero(), Nat::zero()));
    }

    #[test]
    fn smaller_dividend_yields_zero_quotient() {
        let (q, r) = nat(5).div_rem(&nat(9));
        assert!(q.is_zero());
        assert_eq!(r, nat(5));
    }

    #[test]
    fn checked_div_rem_by_zero_is_none() {
        assert!(nat(5).checked_div_rem(&Nat::zero()).is_none());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = nat(5).div_rem(&Nat::zero());
    }

    #[test]
    fn single_limb_divisor() {
        let a = Nat::from_limbs(vec![u64::MAX, u64::MAX, 7]);
        let (q, r) = a.div_rem(&nat(1_000_003));
        assert_eq!(&q * &nat(1_000_003) + &r, a);
        assert!(r < nat(1_000_003));
    }

    #[test]
    fn multi_limb_knuth_d_identity() {
        // u = q*v + r reconstructed exactly, across several shapes.
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (vec![0, 0, 0, 1], vec![0, 1]),
            (vec![u64::MAX; 6], vec![u64::MAX, u64::MAX, 1]),
            (vec![1, 2, 3, 4, 5], vec![9, 9]),
            (vec![u64::MAX, 0, u64::MAX, 0, u64::MAX], vec![u64::MAX, 1]),
            // Triggers the rare D6 "add back" path with high probability:
            (vec![0, u64::MAX - 1, u64::MAX], vec![u64::MAX, u64::MAX]),
        ];
        for (ul, vl) in cases {
            let u = Nat::from_limbs(ul);
            let v = Nat::from_limbs(vl);
            let (q, r) = u.div_rem(&v);
            assert!(r < v, "remainder must be reduced");
            assert_eq!(&q * &v + &r, u, "u = q*v + r must hold");
        }
    }

    #[test]
    fn exact_division_has_zero_remainder() {
        let v = Nat::from_limbs(vec![12345, 67890, 13579]);
        let q_true = Nat::from_limbs(vec![u64::MAX, 42]);
        let u = &v * &q_true;
        let (q, r) = u.div_rem(&v);
        assert_eq!(q, q_true);
        assert!(r.is_zero());
    }

    #[test]
    fn rem_nat_reduces() {
        let m = Nat::from_limbs(vec![0x1234_5678, 1]);
        let a = Nat::from_limbs(vec![9, 8, 7, 6]);
        let r = a.rem_nat(&m);
        assert!(r < m);
    }
}
