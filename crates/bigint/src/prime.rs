//! Primality testing (Miller–Rabin), Jacobi symbols, and prime generation.

use rand::RngCore;

use crate::{random_below, random_nat_exact, Nat};

/// Number of Miller–Rabin rounds. Error probability ≤ 4^-40.
const MR_ROUNDS: usize = 40;

/// Primes below 1000, used for trial division and distributed sieving
/// (Boneh–Franklin shared key generation sieves candidate primes against
/// this table).
pub const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// The value of a Jacobi symbol `(a/n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jacobi {
    /// `(a/n) = 0`: `gcd(a, n) != 1`.
    Zero,
    /// `(a/n) = +1`.
    One,
    /// `(a/n) = -1`.
    MinusOne,
}

/// Computes the Jacobi symbol `(a/n)` for odd positive `n`.
///
/// # Panics
///
/// Panics if `n` is even or zero.
#[must_use]
pub fn jacobi(a: &Nat, n: &Nat) -> Jacobi {
    assert!(n.is_odd() && !n.is_zero(), "Jacobi symbol needs odd n > 0");
    let mut a = a.rem_nat(n);
    let mut n = n.clone();
    let mut sign = 1i32;
    while !a.is_zero() {
        let tz = a.trailing_zeros().expect("a nonzero");
        if tz % 2 == 1 {
            // (2/n) = -1 iff n ≡ 3, 5 (mod 8)
            let n_mod_8 = n.limbs().first().copied().unwrap_or(0) & 7;
            if n_mod_8 == 3 || n_mod_8 == 5 {
                sign = -sign;
            }
        }
        a = a.shr_bits(tz);
        // Quadratic reciprocity flip: both ≡ 3 (mod 4) flips the sign.
        let a_mod_4 = a.limbs().first().copied().unwrap_or(0) & 3;
        let n_mod_4 = n.limbs().first().copied().unwrap_or(0) & 3;
        if a_mod_4 == 3 && n_mod_4 == 3 {
            sign = -sign;
        }
        core::mem::swap(&mut a, &mut n);
        a = a.rem_nat(&n);
    }
    if n.is_one() {
        if sign == 1 {
            Jacobi::One
        } else {
            Jacobi::MinusOne
        }
    } else {
        Jacobi::Zero
    }
}

/// Miller–Rabin probabilistic primality test with [`MR_ROUNDS`] random bases.
#[must_use]
pub fn is_probable_prime(n: &Nat, rng: &mut dyn RngCore) -> bool {
    if n < &Nat::two() {
        return false;
    }
    for &p in SMALL_PRIMES {
        let p_nat = Nat::from(p);
        if n == &p_nat {
            return true;
        }
        if n.rem_nat(&p_nat).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n - &Nat::one();
    let s = n_minus_1.trailing_zeros().expect("n > 2 so n-1 > 0");
    let d = n_minus_1.shr_bits(s);

    'witness: for _ in 0..MR_ROUNDS {
        // a in [2, n-2]
        let a = &random_below(rng, &(n - &Nat::from(3u64))) + &Nat::two();
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.square().rem_nat(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
#[must_use]
pub fn random_prime(rng: &mut dyn RngCore, bits: usize) -> Nat {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_nat_exact(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// The smallest probable prime `>= n`.
#[must_use]
pub fn next_prime(n: &Nat, rng: &mut dyn RngCore) -> Nat {
    let mut candidate = n.clone();
    if candidate < Nat::two() {
        return Nat::two();
    }
    if candidate.is_even() {
        candidate = &candidate + &Nat::one();
    }
    loop {
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
        candidate = &candidate + &Nat::two();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn known_primes_pass() {
        let mut r = rng();
        for p in [2u64, 3, 5, 997, 65_537, 2_147_483_647] {
            assert!(is_probable_prime(&Nat::from(p), &mut r), "{p} is prime");
        }
        // Mersenne prime 2^127 - 1
        let m127 = &Nat::one().shl_bits(127) - &Nat::one();
        assert!(is_probable_prime(&m127, &mut r));
    }

    #[test]
    fn known_composites_fail() {
        let mut r = rng();
        for c in [0u64, 1, 4, 100, 65_536, 561, 1105, 6601] {
            // 561, 1105, 6601 are Carmichael numbers.
            assert!(
                !is_probable_prime(&Nat::from(c), &mut r),
                "{c} is composite"
            );
        }
        // 2^128 + 1 is composite (59649589127497217 divides it).
        let f = &Nat::one().shl_bits(128) + &Nat::one();
        assert!(!is_probable_prime(&f, &mut r));
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut r = rng();
        for bits in [8usize, 32, 64, 96] {
            let p = random_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn next_prime_steps_forward() {
        let mut r = rng();
        assert_eq!(next_prime(&Nat::from(0u64), &mut r), Nat::two());
        assert_eq!(next_prime(&Nat::from(14u64), &mut r), Nat::from(17u64));
        assert_eq!(next_prime(&Nat::from(17u64), &mut r), Nat::from(17u64));
        assert_eq!(next_prime(&Nat::from(90u64), &mut r), Nat::from(97u64));
    }

    #[test]
    fn jacobi_against_legendre_for_prime_modulus() {
        // For prime p, (a/p) = a^((p-1)/2) mod p.
        let p = Nat::from(1_000_003u64);
        let exp = (&p - &Nat::one()).shr_bits(1);
        let mut checked = 0;
        for a in 1u64..60 {
            let a_nat = Nat::from(a);
            let legendre = a_nat.modpow(&exp, &p);
            let expect = if legendre.is_one() {
                Jacobi::One
            } else if legendre.is_zero() {
                Jacobi::Zero
            } else {
                Jacobi::MinusOne
            };
            assert_eq!(jacobi(&a_nat, &p), expect, "a = {a}");
            checked += 1;
        }
        assert_eq!(checked, 59);
    }

    #[test]
    fn jacobi_composite_modulus_known_values() {
        // (2/15) = 1, (7/15) = -1, (5/15) = 0 — classic table values.
        let n = Nat::from(15u64);
        assert_eq!(jacobi(&Nat::two(), &n), Jacobi::One);
        assert_eq!(jacobi(&Nat::from(7u64), &n), Jacobi::MinusOne);
        assert_eq!(jacobi(&Nat::from(5u64), &n), Jacobi::Zero);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn jacobi_even_modulus_panics() {
        let _ = jacobi(&Nat::from(3u64), &Nat::from(10u64));
    }

    #[test]
    fn jacobi_multiplicativity_in_numerator() {
        let n = Nat::from(9907u64); // prime
        let combine = |a: Jacobi, b: Jacobi| match (a, b) {
            (Jacobi::Zero, _) | (_, Jacobi::Zero) => Jacobi::Zero,
            (x, y) if x == y => Jacobi::One,
            _ => Jacobi::MinusOne,
        };
        for (a, b) in [(2u64, 3u64), (5, 7), (10, 13), (100, 9)] {
            let prod = Nat::from(a) * Nat::from(b);
            assert_eq!(
                jacobi(&prod, &n),
                combine(jacobi(&Nat::from(a), &n), jacobi(&Nat::from(b), &n))
            );
        }
    }
}
