//! Property-based tests over the core algebraic laws.

use proptest::prelude::*;

use crate::{Int, MontgomeryContext, Nat};

fn arb_nat() -> impl Strategy<Value = Nat> {
    proptest::collection::vec(any::<u64>(), 0..8).prop_map(Nat::from_limbs)
}

fn arb_nonzero_nat() -> impl Strategy<Value = Nat> {
    arb_nat().prop_filter("nonzero", |n| !n.is_zero())
}

/// Random odd moduli > 1 across 1–8 limbs (the Montgomery domain).
fn arb_odd_modulus() -> impl Strategy<Value = Nat> {
    proptest::collection::vec(any::<u64>(), 1..8).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let n = Nat::from_limbs(limbs);
        if n.is_one() {
            Nat::from(3u64)
        } else {
            n
        }
    })
}

fn arb_int() -> impl Strategy<Value = Int> {
    (arb_nat(), any::<bool>()).prop_map(|(mag, neg)| {
        if neg {
            -Int::from_nat(mag)
        } else {
            Int::from_nat(mag)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in arb_nat(), b in arb_nat(), c in arb_nat()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_nat(), b in arb_nat()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn division_identity(a in arb_nat(), b in arb_nonzero_nat()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_roundtrip(a in arb_nat(), s in 0usize..200) {
        prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in arb_nat(), s in 0usize..100) {
        prop_assert_eq!(a.shl_bits(s), &a * &Nat::one().shl_bits(s));
    }

    #[test]
    fn bytes_roundtrip(a in arb_nat()) {
        prop_assert_eq!(Nat::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn decimal_roundtrip(a in arb_nat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Nat>().expect("reparse"), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_nat()) {
        let s = a.to_hex();
        prop_assert_eq!(Nat::from_str_radix(&s, 16).expect("reparse"), a);
    }

    #[test]
    fn gcd_divides_both(a in arb_nat(), b in arb_nonzero_nat()) {
        let g = a.gcd(&b);
        prop_assert!(b.rem_nat(&g).is_zero());
        if !a.is_zero() {
            prop_assert!(a.rem_nat(&g).is_zero());
        }
    }

    #[test]
    fn ext_gcd_bezout(a in arb_nat(), b in arb_nat()) {
        let (g, x, y) = a.ext_gcd(&b);
        let lhs = &(&x * &Int::from_nat(a.clone())) + &(&y * &Int::from_nat(b));
        prop_assert_eq!(lhs, Int::from_nat(g));
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u64..40, m in 2u64..5000) {
        let m_nat = Nat::from(m);
        let got = Nat::from(base).modpow(&Nat::from(exp), &m_nat);
        let mut expect = 1u128;
        for _ in 0..exp {
            expect = expect * u128::from(base) % u128::from(m);
        }
        prop_assert_eq!(got, Nat::from(expect));
    }

    #[test]
    fn montgomery_modpow_matches_plain(
        base in arb_nat(),
        exp in proptest::collection::vec(any::<u64>(), 0..4).prop_map(Nat::from_limbs),
        m in arb_odd_modulus(),
    ) {
        let ctx = MontgomeryContext::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow_plain(&exp, &m));
    }

    #[test]
    fn fixed_base_window_matches_montgomery_modpow(
        base in arb_nat(),
        exp in proptest::collection::vec(any::<u64>(), 0..4).prop_map(Nat::from_limbs),
        m in arb_odd_modulus(),
        table_bits in 1usize..96,
    ) {
        // The ladder path (including on-the-fly extension past the table)
        // must be byte-identical to the sliding-window Montgomery path.
        let ctx = MontgomeryContext::new(&m).expect("odd modulus > 1");
        let win = ctx.fixed_base(&base, table_bits);
        prop_assert_eq!(win.modpow(&ctx, &exp), ctx.modpow(&base, &exp));
    }

    #[test]
    fn multi_modpow_matches_factored_product(
        b1 in arb_nat(), b2 in arb_nat(), b3 in arb_nat(),
        e1 in proptest::collection::vec(any::<u64>(), 0..3).prop_map(Nat::from_limbs),
        e2 in proptest::collection::vec(any::<u64>(), 0..3).prop_map(Nat::from_limbs),
        e3 in proptest::collection::vec(any::<u64>(), 0..3).prop_map(Nat::from_limbs),
        m in arb_odd_modulus(),
    ) {
        let ctx = MontgomeryContext::new(&m).expect("odd modulus > 1");
        let got = ctx.multi_modpow(&[(&b1, &e1), (&b2, &e2), (&b3, &e3)]);
        let expect = ctx.modpow(&b1, &e1)
            .mulm(&ctx.modpow(&b2, &e2), &m)
            .mulm(&ctx.modpow(&b3, &e3), &m);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn montgomery_mul_matches_mulm(a in arb_nat(), b in arb_nat(), m in arb_odd_modulus()) {
        let ctx = MontgomeryContext::new(&m).expect("odd modulus > 1");
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        prop_assert_eq!(ctx.from_mont(&ctx.mont_mul(&am, &bm)), a.mulm(&b, &m));
        prop_assert_eq!(ctx.from_mont(&ctx.mont_sqr(&am)), a.mulm(&a, &m));
    }

    #[test]
    fn dispatched_modpow_matches_plain(
        base in arb_nat(),
        exp in proptest::collection::vec(any::<u64>(), 0..3).prop_map(Nat::from_limbs),
        m in arb_nonzero_nat(),
    ) {
        // Whatever path modpow picks (Montgomery for odd m, plain for
        // even), the answer is the reference one.
        prop_assert_eq!(base.modpow(&exp, &m), base.modpow_plain(&exp, &m));
    }

    #[test]
    fn square_matches_general_multiplication(a in arb_nat()) {
        prop_assert_eq!(a.square(), a.mul_nat(&a));
    }

    #[test]
    fn large_square_binomial_identity(
        limbs in proptest::collection::vec(any::<u64>(), 33..80),
    ) {
        // Above the Karatsuba threshold (exercises the recursive split):
        // (a+1)² = a² + 2a + 1 ties large squarings to an unbalanced
        // product-free identity.
        let a = Nat::from_limbs(limbs);
        let lhs = (&a + &Nat::one()).square();
        let rhs = a.square() + a.shl_bits(1) + Nat::one();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modinv_is_inverse(a in arb_nonzero_nat(), m in arb_nonzero_nat()) {
        if m.is_one() { return Ok(()); }
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(a.mulm(&inv, &m), Nat::one());
        }
    }

    #[test]
    fn isqrt_bounds(a in arb_nat()) {
        let s = a.isqrt();
        prop_assert!(s.square() <= a);
        let s1 = &s + &Nat::one();
        prop_assert!(s1.square() > a);
    }

    #[test]
    fn int_ring_laws(a in arb_int(), b in arb_int(), c in arb_int()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&(&a - &b) + &b, a.clone());
        prop_assert_eq!(&a + &(-&a), Int::zero());
    }

    #[test]
    fn int_rem_euclid_in_range(a in arb_int(), m in arb_nonzero_nat()) {
        let r = a.rem_euclid(&m);
        prop_assert!(r < m);
    }

    #[test]
    fn int_div_rem_euclid_identity(a in arb_int(), m in arb_nonzero_nat()) {
        let (q, r) = a.div_rem_euclid(&m);
        prop_assert!(r < m);
        let rebuilt = &(&q * &Int::from_nat(m)) + &Int::from_nat(r);
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn ordering_total(a in arb_nat(), b in arb_nat()) {
        use core::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert!(b > a),
            Ordering::Greater => prop_assert!(a > b),
            Ordering::Equal => prop_assert_eq!(a, b),
        }
    }
}
