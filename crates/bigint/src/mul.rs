//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold.

use crate::Nat;

/// Limb count above which Karatsuba is used. 32 limbs ≈ 2048 bits; below
/// that, schoolbook wins on modern hardware for this representation.
const KARATSUBA_THRESHOLD: usize = 32;

impl Nat {
    /// `self * other`.
    #[must_use]
    pub fn mul_nat(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        if self.limbs.len().min(other.limbs.len()) >= KARATSUBA_THRESHOLD {
            if self.limbs == other.limbs {
                // A large balanced self-product is a squaring in disguise.
                return square_limbs(&self.limbs);
            }
            karatsuba(&self.limbs, &other.limbs)
        } else {
            schoolbook(&self.limbs, &other.limbs)
        }
    }

    /// `self * self` by a dedicated squaring routine: the triangular
    /// schoolbook computes each cross product `aᵢaⱼ (i<j)` once and doubles
    /// the sum — about half the partial products of `mul_nat(self)` — and
    /// large operands recurse through a Karatsuba split whose three
    /// sub-products are themselves squarings.
    #[must_use]
    pub fn square(&self) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        square_limbs(&self.limbs)
    }

    /// Multiplies by a single limb.
    #[must_use]
    pub fn mul_u64(&self, m: u64) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = u128::from(l) * u128::from(m) + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Nat::from_limbs(out)
    }
}

fn schoolbook(a: &[u64], b: &[u64]) -> Nat {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let p = u128::from(ai) * u128::from(bj) + u128::from(out[i + j]) + carry;
            out[i + j] = p as u64;
            carry = p >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let s = u128::from(out[k]) + carry;
            out[k] = s as u64;
            carry = s >> 64;
            k += 1;
        }
    }
    Nat::from_limbs(out)
}

fn karatsuba(a: &[u64], b: &[u64]) -> Nat {
    let half = a.len().max(b.len()).div_ceil(2);
    if a.len() <= half || b.len() <= half {
        // Severely unbalanced operands degrade to schoolbook on the split.
        return schoolbook(a, b);
    }
    let (a_lo, a_hi) = split(a, half);
    let (b_lo, b_hi) = split(b, half);

    let z0 = a_lo.mul_nat(&b_lo);
    let z2 = a_hi.mul_nat(&b_hi);
    let z1 = (&a_lo + &a_hi).mul_nat(&(&b_lo + &b_hi)) - &z0 - &z2;

    &z0 + &z1.shl_bits(half * 64) + z2.shl_bits(half * 128)
}

/// Squaring dispatch mirroring [`Nat::mul_nat`]: triangular schoolbook
/// below the Karatsuba threshold, a balanced recursive split above it.
fn square_limbs(a: &[u64]) -> Nat {
    if a.len() >= KARATSUBA_THRESHOLD {
        karatsuba_square(a)
    } else {
        schoolbook_square(a)
    }
}

/// Triangular schoolbook squaring: sum the strictly-upper-triangle partial
/// products, double by a 1-bit shift, then add the diagonal `aᵢ²` terms.
fn schoolbook_square(a: &[u64]) -> Nat {
    let k = a.len();
    let mut out = vec![0u64; 2 * k];
    for i in 0..k {
        if a[i] == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in (i + 1)..k {
            let p = u128::from(a[i]) * u128::from(a[j]) + u128::from(out[i + j]) + carry;
            out[i + j] = p as u64;
            carry = p >> 64;
        }
        let mut idx = i + k;
        while carry != 0 {
            let s = u128::from(out[idx]) + carry;
            out[idx] = s as u64;
            carry = s >> 64;
            idx += 1;
        }
    }
    // Double the off-diagonal sum: 2T fits in 2k limbs because a² does.
    let mut top = 0u64;
    for x in &mut out {
        let shifted = (*x << 1) | top;
        top = *x >> 63;
        *x = shifted;
    }
    debug_assert_eq!(top, 0);
    // Add the diagonal a[i]² at position 2i.
    let mut carry = 0u64;
    for i in 0..k {
        let d = u128::from(a[i]) * u128::from(a[i]);
        let s = u128::from(out[2 * i]) + u128::from(d as u64) + u128::from(carry);
        out[2 * i] = s as u64;
        let s2 = u128::from(out[2 * i + 1]) + u128::from((d >> 64) as u64) + (s >> 64);
        out[2 * i + 1] = s2 as u64;
        carry = (s2 >> 64) as u64;
    }
    debug_assert_eq!(carry, 0);
    Nat::from_limbs(out)
}

/// Karatsuba squaring: `(lo + hi·B)² = lo² + 2·lo·hi·B + hi²·B²` via the
/// three-squares identity `2·lo·hi = (lo+hi)² - lo² - hi²`, so every
/// recursive sub-product is itself a squaring.
fn karatsuba_square(a: &[u64]) -> Nat {
    let half = a.len().div_ceil(2);
    let (lo, hi) = split(a, half);
    let z0 = lo.square();
    let z2 = hi.square();
    let z1 = (&lo + &hi).square() - &z0 - &z2;
    &z0 + &z1.shl_bits(half * 64) + z2.shl_bits(half * 128)
}

fn split(limbs: &[u64], at: usize) -> (Nat, Nat) {
    let at = at.min(limbs.len());
    (
        Nat::from_limbs(limbs[..at].to_vec()),
        Nat::from_limbs(limbs[at..].to_vec()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        assert_eq!(Nat::from(6u64) * Nat::from(7u64), Nat::from(42u64));
        assert!((Nat::zero() * Nat::from(9u64)).is_zero());
        assert_eq!(Nat::one() * Nat::from(9u64), Nat::from(9u64));
    }

    #[test]
    fn cross_limb_product() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = Nat::from(u64::MAX);
        let expect = Nat::from(u128::MAX - 2 * u128::from(u64::MAX));
        assert_eq!(a.square(), expect);
    }

    #[test]
    fn mul_u64_matches_full_mul() {
        let a = Nat::from_limbs(vec![u64::MAX, 123, u64::MAX]);
        assert_eq!(a.mul_u64(97), &a * &Nat::from(97u64));
        assert!(a.mul_u64(0).is_zero());
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Deterministic pseudo-random operands big enough to hit Karatsuba.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let a = Nat::from_limbs((0..70).map(|_| next()).collect());
        let b = Nat::from_limbs((0..65).map(|_| next()).collect());
        assert_eq!(
            karatsuba(&a.limbs, &b.limbs),
            schoolbook(&a.limbs, &b.limbs)
        );
    }

    #[test]
    fn unbalanced_karatsuba_inputs() {
        let a = Nat::from_limbs(vec![1; 80]);
        let b = Nat::from_limbs(vec![2; 33]);
        assert_eq!(a.mul_nat(&b), schoolbook(&a.limbs, &b.limbs));
    }

    #[test]
    fn distributivity_spot_check() {
        let a = Nat::from_limbs(vec![5, 6, 7]);
        let b = Nat::from_limbs(vec![9, 10]);
        let c = Nat::from_limbs(vec![11, 12, 13, 14]);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
