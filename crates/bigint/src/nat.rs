//! The [`Nat`] type: arbitrary-precision natural numbers.
//!
//! Representation: little-endian `u64` limbs, normalized so the most
//! significant limb is nonzero (zero is the empty limb vector).

use core::cmp::Ordering;
use core::ops::{Add, AddAssign, BitAnd, Mul, Rem, Shl, Shr, Sub, SubAssign};

/// An arbitrary-precision natural number (unsigned integer).
///
/// `Nat` supports the usual arithmetic operators on both owned values and
/// references. Subtraction panics on underflow (use [`Nat::checked_sub`] for
/// the fallible variant); division by zero panics (use
/// [`Nat::checked_div_rem`]).
///
/// # Example
///
/// ```
/// use jaap_bigint::Nat;
///
/// let a = Nat::from(10u64);
/// let b = Nat::from(4u64);
/// assert_eq!(&a + &b, Nat::from(14u64));
/// assert_eq!(&a * &b, Nat::from(40u64));
/// assert_eq!(a.div_rem(&b), (Nat::from(2u64), Nat::from(2u64)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nat {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl Nat {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// The value `2`.
    #[must_use]
    pub fn two() -> Self {
        Nat { limbs: vec![2] }
    }

    /// Builds a `Nat` from little-endian limbs, normalizing trailing zeros.
    #[must_use]
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// A read-only view of the little-endian limbs.
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the lowest bit is clear (zero counts as even).
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the lowest bit is set.
    #[must_use]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use jaap_bigint::Nat;
    /// assert_eq!(Nat::from(0u64).bit_len(), 0);
    /// assert_eq!(Nat::from(255u64).bit_len(), 8);
    /// ```
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the top bit.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Converts to `u64` if the value fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    /// Big-endian byte encoding with no leading zero bytes (empty for zero).
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        Nat::from_limbs(limbs)
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add_nat(&self, other: &Nat) -> Nat {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    #[must_use]
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Some(Nat::from_limbs(out))
    }

    /// Shifts left by `bits`.
    #[must_use]
    pub fn shl_bits(&self, bits: usize) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }

    /// Shifts right by `bits`.
    #[must_use]
    pub fn shr_bits(&self, bits: usize) -> Nat {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Nat::from_limbs(out)
    }

    /// Count of trailing zero bits; `None` for the zero value.
    #[must_use]
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    pub(crate) fn cmp_nat(&self, other: &Nat) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            }
            other => other,
        }
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_limbs(vec![v])
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from(u64::from(v))
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from(v as u64)
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nat(other)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $imp:ident) => {
        impl $trait<&Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$imp(rhs)
            }
        }
        impl $trait<Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                (&self).$imp(&rhs)
            }
        }
        impl $trait<&Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                (&self).$imp(rhs)
            }
        }
        impl $trait<Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$imp(&rhs)
            }
        }
    };
}

fn sub_panicking(a: &Nat, b: &Nat) -> Nat {
    a.checked_sub(b).expect("Nat subtraction underflow")
}

fn rem_nat(a: &Nat, b: &Nat) -> Nat {
    a.div_rem(b).1
}

impl Nat {
    fn add_ref(&self, rhs: &Nat) -> Nat {
        self.add_nat(rhs)
    }
    fn sub_ref(&self, rhs: &Nat) -> Nat {
        sub_panicking(self, rhs)
    }
    fn mul_ref(&self, rhs: &Nat) -> Nat {
        self.mul_nat(rhs)
    }
    fn rem_ref(&self, rhs: &Nat) -> Nat {
        rem_nat(self, rhs)
    }
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);
forward_binop!(Rem, rem, rem_ref);

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = self.add_nat(rhs);
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        *self = sub_panicking(self, rhs);
    }
}

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, bits: usize) -> Nat {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, bits: usize) -> Nat {
        self.shr_bits(bits)
    }
}

impl BitAnd<&Nat> for &Nat {
    type Output = Nat;
    fn bitand(self, rhs: &Nat) -> Nat {
        let n = self.limbs.len().min(rhs.limbs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.limbs[i] & rhs.limbs[i]);
        }
        Nat::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert!(!Nat::one().is_zero());
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn normalization_strips_trailing_zero_limbs() {
        let n = Nat::from_limbs(vec![5, 0, 0]);
        assert_eq!(n.limbs(), &[5]);
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = Nat::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = Nat::one();
        assert_eq!(&a + &b, Nat::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn subtraction_with_borrow_chain() {
        let a = Nat::from_limbs(vec![0, 0, 1]);
        let b = Nat::one();
        assert_eq!(&a - &b, Nat::from_limbs(vec![u64::MAX, u64::MAX]));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(Nat::one().checked_sub(&Nat::two()), None);
        assert_eq!(Nat::two().checked_sub(&Nat::one()), Some(Nat::one()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Nat::one() - Nat::two();
    }

    #[test]
    fn bit_len_boundaries() {
        assert_eq!(Nat::from(1u64).bit_len(), 1);
        assert_eq!(Nat::from(u64::MAX).bit_len(), 64);
        assert_eq!((&Nat::from(u64::MAX) + &Nat::one()).bit_len(), 65);
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut n = Nat::zero();
        n.set_bit(130, true);
        assert!(n.bit(130));
        assert!(!n.bit(129));
        assert_eq!(n.bit_len(), 131);
        n.set_bit(130, false);
        assert!(n.is_zero());
    }

    #[test]
    fn shifts_inverse_each_other() {
        let n = Nat::from(0xDEAD_BEEFu64);
        assert_eq!(n.shl_bits(77).shr_bits(77), n);
        assert_eq!(n.shl_bits(0), n);
        assert_eq!(Nat::from(1u64).shl_bits(64), Nat::from_limbs(vec![0, 1]));
    }

    #[test]
    fn shr_past_end_is_zero() {
        assert!(Nat::from(5u64).shr_bits(64).is_zero());
    }

    #[test]
    fn byte_encoding_roundtrip() {
        let n = Nat::from(0x0102_0304_0506_0708u64);
        assert_eq!(n.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(Nat::from_bytes_be(&n.to_bytes_be()), n);
        assert_eq!(Nat::from_bytes_be(&[0, 0, 1]), Nat::one());
        assert!(Nat::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn ordering_by_length_then_lexicographic() {
        let small = Nat::from(u64::MAX);
        let big = Nat::from_limbs(vec![0, 1]);
        assert!(small < big);
        assert!(Nat::from(3u64) > Nat::from(2u64));
        assert_eq!(Nat::from(7u64).cmp(&Nat::from(7u64)), Ordering::Equal);
    }

    #[test]
    fn parity() {
        assert!(Nat::zero().is_even());
        assert!(Nat::one().is_odd());
        assert!(Nat::from(0x10u64).is_even());
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(Nat::zero().trailing_zeros(), None);
        assert_eq!(Nat::one().trailing_zeros(), Some(0));
        assert_eq!(Nat::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(Nat::from_limbs(vec![0, 2]).trailing_zeros(), Some(65));
    }

    #[test]
    fn u128_conversion() {
        let v = u128::from(u64::MAX) + 5;
        let n = Nat::from(v);
        assert_eq!(n.to_u128(), Some(v));
        assert_eq!(n.to_u64(), None);
    }

    #[test]
    fn bitand_masks() {
        let a = Nat::from(0b1100u64);
        let b = Nat::from(0b1010u64);
        assert_eq!((&a & &b), Nat::from(0b1000u64));
    }
}
