//! Decimal/hex formatting and parsing for [`Nat`].

use core::fmt;
use core::str::FromStr;

use crate::error::ParseNatError;
use crate::Nat;

/// Largest power of ten fitting in a limb: 10^19.
const DEC_CHUNK: u64 = 10_000_000_000_000_000_000;
const DEC_CHUNK_DIGITS: usize = 19;

impl Nat {
    /// Parses a string in the given radix (2..=36).
    ///
    /// # Errors
    ///
    /// Returns [`ParseNatError`] on an empty string or a digit outside the
    /// radix. Underscores are accepted as separators.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is outside `2..=36`.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseNatError> {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        let digits: Vec<char> = s.chars().filter(|&c| c != '_').collect();
        if digits.is_empty() {
            return Err(ParseNatError::empty());
        }
        let mut out = Nat::zero();
        let radix_nat = u64::from(radix);
        for ch in digits {
            let d = ch
                .to_digit(radix)
                .ok_or_else(|| ParseNatError::invalid_digit(ch, radix))?;
            out = out.mul_u64(radix_nat).add_nat(&Nat::from(u64::from(d)));
        }
        Ok(out)
    }

    /// Lower-case hexadecimal string with no prefix (`"0"` for zero).
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{self:x}")
    }

    /// Decimal string.
    #[must_use]
    pub fn to_decimal(&self) -> String {
        self.to_string()
    }
}

impl FromStr for Nat {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Nat::from_str_radix(hex, 16)
        } else {
            Nat::from_str_radix(s, 10)
        }
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide by 10^19 and print the chunks.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(DEC_CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().expect("nonzero value has chunks").to_string();
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:0width$}", width = DEC_CHUNK_DIGITS));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

impl fmt::LowerHex for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().expect("nonzero"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::UpperHex for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{self:x}");
        f.pad_integral(true, "0x", &lower.to_uppercase())
    }
}

impl fmt::Binary for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0b", "0");
        }
        let mut s = format!("{:b}", self.limbs.last().expect("nonzero"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:064b}"));
        }
        f.pad_integral(true, "0b", &s)
    }
}

impl fmt::Octal for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Convert via repeated division by 8^21 (fits in u64).
        const OCT_CHUNK: u64 = 1 << 63; // 8^21
        if self.is_zero() {
            return f.pad_integral(true, "0o", "0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(OCT_CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = format!("{:o}", chunks.last().expect("nonzero"));
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:021o}"));
        }
        f.pad_integral(true, "0o", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999999",
        ] {
            let n: Nat = s.parse().expect("parse");
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn hex_roundtrip_and_prefix() {
        let n: Nat = "0xdeadbeefdeadbeefdeadbeef".parse().expect("parse");
        assert_eq!(format!("{n:x}"), "deadbeefdeadbeefdeadbeef");
        assert_eq!(format!("{n:#x}"), "0xdeadbeefdeadbeefdeadbeef");
        assert_eq!(
            Nat::from_str_radix("deadbeefdeadbeefdeadbeef", 16).expect("parse"),
            n
        );
    }

    #[test]
    fn interior_zero_limbs_pad_correctly() {
        let n = Nat::from_limbs(vec![0x1, 0x0, 0x1]); // 2^128 + 1
        assert_eq!(format!("{n:x}"), "100000000000000000000000000000001");
        assert_eq!(n.to_string(), "340282366920938463463374607431768211457");
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<Nat>().is_err());
        assert!("12a".parse::<Nat>().is_err());
        assert!("0x".parse::<Nat>().is_err());
        assert!(Nat::from_str_radix("102", 2).is_err());
    }

    #[test]
    fn underscores_ignored() {
        assert_eq!(
            "1_000_000".parse::<Nat>().expect("parse"),
            Nat::from(1_000_000u64)
        );
    }

    #[test]
    fn binary_and_octal_formats() {
        assert_eq!(format!("{:b}", Nat::from(10u64)), "1010");
        assert_eq!(format!("{:o}", Nat::from(64u64)), "100");
        assert_eq!(format!("{:b}", Nat::zero()), "0");
        let big = Nat::from_limbs(vec![0, 1]);
        assert_eq!(format!("{big:b}").len(), 65);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Nat::zero()), "Nat(0)");
    }

    #[test]
    fn upper_hex() {
        assert_eq!(format!("{:X}", Nat::from(0xabcu64)), "ABC");
    }
}
