//! Arbitrary-precision integer arithmetic for the `jaap` workspace.
//!
//! This crate is the numeric substrate for the threshold-RSA machinery used by
//! the coalition Attribute Authority (paper Section 3). It deliberately avoids
//! external bignum dependencies: everything — limb arithmetic, Karatsuba
//! multiplication and squaring, Knuth Algorithm D division, Montgomery
//! (CIOS) reduction with sliding-window modular exponentiation, extended
//! GCD, Miller–Rabin primality and Jacobi symbols — is implemented here.
//!
//! Two public types:
//!
//! * [`Nat`] — an arbitrary-precision **natural number** (unsigned), stored as
//!   little-endian `u64` limbs with no trailing zero limbs.
//! * [`Int`] — a signed wrapper (sign + magnitude) needed by the extended
//!   Euclidean algorithm and by additive secret shares of RSA exponents,
//!   which may be negative.
//!
//! # Example
//!
//! ```
//! use jaap_bigint::Nat;
//!
//! # fn main() -> Result<(), jaap_bigint::ParseNatError> {
//! let p: Nat = "340282366920938463463374607431768211507".parse()?;
//! let e = Nat::from(65_537u64);
//! let m = Nat::from(42u64);
//! let c = m.modpow(&e, &p);
//! assert!(c < p);
//! # Ok(())
//! # }
//! ```
//!
//! # Security note
//!
//! Operations are **not constant-time**; this crate backs a protocol
//! simulator, not a production TLS stack. See DESIGN.md §7.

mod div;
mod error;
mod fmt;
mod int;
mod modular;
mod montgomery;
mod mul;
mod nat;
mod prime;
mod random;

pub use error::ParseNatError;
pub use int::{Int, Sign};
pub use montgomery::{FixedBaseWindow, MontgomeryContext};
pub use nat::Nat;
pub use prime::{is_probable_prime, jacobi, next_prime, random_prime, Jacobi, SMALL_PRIMES};
pub use random::{random_below, random_nat, random_nat_exact};

#[cfg(test)]
mod proptests;
