//! Modular arithmetic: exponentiation, GCD, extended GCD, inverses.

use crate::{Int, Nat, Sign};

impl Nat {
    /// Modular addition `(self + b) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn addm(&self, b: &Nat, m: &Nat) -> Nat {
        (self + b).rem_nat(m)
    }

    /// Modular subtraction `(self - b) mod m` (wraps like `rem_euclid`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn subm(&self, b: &Nat, m: &Nat) -> Nat {
        let a = self.rem_nat(m);
        let b = b.rem_nat(m);
        if a >= b {
            &a - &b
        } else {
            &(m - &b) + &a
        }
    }

    /// Modular multiplication `(self * b) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mulm(&self, b: &Nat, m: &Nat) -> Nat {
        (self * b).rem_nat(m)
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Odd moduli (every RSA modulus, every odd prime) are routed through
    /// the precomputed [`crate::MontgomeryContext`], which replaces the
    /// full-width division after every square with a word-by-word CIOS
    /// reduction. Even moduli fall back to [`Nat::modpow_plain`]. Both
    /// paths use sliding-window exponentiation with odd-power tables.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero. `x^0 mod 1 == 0` (every residue mod 1 is 0).
    #[must_use]
    pub fn modpow(&self, exp: &Nat, m: &Nat) -> Nat {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_one() {
            return Nat::zero();
        }
        if let Some(ctx) = crate::MontgomeryContext::new(m) {
            return ctx.modpow(self, exp);
        }
        self.modpow_plain(exp, m)
    }

    /// Modular exponentiation by sliding-window square-and-multiply with a
    /// generic `rem_nat` reduction after every step. This is the reference
    /// path (any modulus, including even ones); [`Nat::modpow`] dispatches
    /// odd moduli to the Montgomery fast path instead.
    ///
    /// The window table holds only the **odd** powers `base^1, base^3, …`
    /// — a small exponent like `e = 65537` costs one squaring and one
    /// table entry instead of a full 16-entry table.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn modpow_plain(&self, exp: &Nat, m: &Nat) -> Nat {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_one() {
            return Nat::zero();
        }
        if exp.is_zero() {
            return Nat::one();
        }
        let base = self.rem_nat(m);
        if base.is_zero() {
            return Nat::zero();
        }
        let w = window_bits(exp.bit_len());
        // Odd powers base^1, base^3, …, base^(2^w - 1).
        let b2 = base.square().rem_nat(m);
        let mut table = Vec::with_capacity(1 << (w - 1));
        table.push(base);
        for i in 1..(1usize << (w - 1)) {
            let prev: &Nat = &table[i - 1];
            table.push(prev.mulm(&b2, m));
        }
        let mut acc = Nat::one();
        let mut started = false;
        let mut i = exp.bit_len() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if started {
                    acc = acc.square().rem_nat(m);
                }
                i -= 1;
                continue;
            }
            let mut l = (i - w as isize + 1).max(0);
            while !exp.bit(l as usize) {
                l += 1;
            }
            let width = (i - l + 1) as usize;
            if started {
                for _ in 0..width {
                    acc = acc.square().rem_nat(m);
                }
            }
            let mut val = 0usize;
            for j in (l..=i).rev() {
                val = (val << 1) | usize::from(exp.bit(j as usize));
            }
            acc = if started {
                acc.mulm(&table[val >> 1], m)
            } else {
                table[val >> 1].clone()
            };
            started = true;
            i = l - 1;
        }
        acc
    }

    /// Greatest common divisor (binary GCD).
    #[must_use]
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let shift = a
            .trailing_zeros()
            .expect("nonzero")
            .min(b.trailing_zeros().expect("nonzero"));
        a = a.shr_bits(a.trailing_zeros().expect("nonzero"));
        loop {
            b = b.shr_bits(b.trailing_zeros().expect("nonzero"));
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return a.shl_bits(shift);
            }
        }
    }

    /// Extended GCD: returns `(g, x, y)` with `x*self + y*other == g`.
    #[must_use]
    pub fn ext_gcd(&self, other: &Nat) -> (Nat, Int, Int) {
        let mut r0 = Int::from_nat(self.clone());
        let mut r1 = Int::from_nat(other.clone());
        let mut s0 = Int::one();
        let mut s1 = Int::zero();
        let mut t0 = Int::zero();
        let mut t1 = Int::one();
        while !r1.is_zero() {
            let q = divide_ints(&r0, &r1);
            let r2 = &r0 - &(&q * &r1);
            let s2 = &s0 - &(&q * &s1);
            let t2 = &t0 - &(&q * &t1);
            r0 = r1;
            r1 = r2;
            s0 = s1;
            s1 = s2;
            t0 = t1;
            t1 = t2;
        }
        let g = r0.to_nat().expect("gcd of naturals is non-negative");
        (g, s0, t0)
    }

    /// Modular inverse `self^-1 mod m`, or `None` if `gcd(self, m) != 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn modinv(&self, m: &Nat) -> Option<Nat> {
        assert!(!m.is_zero(), "modinv modulus must be nonzero");
        if m.is_one() {
            return Some(Nat::zero());
        }
        let (g, x, _) = self.rem_nat(m).ext_gcd(m);
        if g.is_one() {
            Some(x.rem_euclid(m))
        } else {
            None
        }
    }

    /// Integer square root (floor).
    #[must_use]
    pub fn isqrt(&self) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        // Newton's method with a power-of-two starting point.
        let mut x = Nat::one().shl_bits(self.bit_len().div_ceil(2));
        loop {
            // y = (x + self/x) / 2
            let y = (&x + &self.div_rem(&x).0).shr_bits(1);
            if y >= x {
                return x;
            }
            x = y;
        }
    }
}

/// Truncated quotient of two `Int`s (sign-aware), used by the extended GCD
/// where operands start non-negative so truncation matches Euclid.
fn divide_ints(a: &Int, b: &Int) -> Int {
    let q = a.magnitude().div_rem(b.magnitude()).0;
    let sign = if a.sign() == b.sign() {
        Sign::Plus
    } else {
        Sign::Minus
    };
    Int::with_sign(sign, q)
}

/// Sliding-window width for an exponent of `bits` bits: wider windows
/// amortize more squarings per multiply but cost `2^(w-1)` table entries,
/// so short exponents get narrow windows.
pub(crate) fn window_bits(bits: usize) -> usize {
    match bits {
        0..=7 => 1,
        8..=35 => 2,
        36..=127 => 3,
        128..=767 => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(nat(2).modpow(&nat(10), &nat(1000)), nat(24));
        assert_eq!(nat(3).modpow(&nat(0), &nat(7)), Nat::one());
        assert_eq!(nat(0).modpow(&nat(5), &nat(7)), Nat::zero());
        assert_eq!(nat(5).modpow(&nat(5), &Nat::one()), Nat::zero());
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // p prime => a^(p-1) = 1 mod p
        let p = nat(1_000_000_007);
        for a in [2u128, 3, 65_537, 999_999_999] {
            assert_eq!(nat(a).modpow(&(&p - &Nat::one()), &p), Nat::one());
        }
    }

    #[test]
    fn modpow_large_modulus() {
        // 2^128-159 is prime; check Fermat.
        let p: Nat = "340282366920938463463374607431768211297"
            .parse()
            .expect("p");
        let a = nat(0xDEADBEEF);
        assert_eq!(a.modpow(&(&p - &Nat::one()), &p), Nat::one());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(nat(12).gcd(&nat(18)), nat(6));
        assert_eq!(nat(0).gcd(&nat(5)), nat(5));
        assert_eq!(nat(5).gcd(&nat(0)), nat(5));
        assert_eq!(nat(17).gcd(&nat(31)), Nat::one());
        assert_eq!(nat(1 << 20).gcd(&nat(1 << 13)), nat(1 << 13));
    }

    #[test]
    fn ext_gcd_bezout_identity() {
        let cases = [
            (240u128, 46u128),
            (17, 31),
            (1_000_000_007, 998_244_353),
            (12, 18),
        ];
        for (a, b) in cases {
            let (g, x, y) = nat(a).ext_gcd(&nat(b));
            assert_eq!(g, nat(a).gcd(&nat(b)));
            let lhs = &(&x * &Int::from_nat(nat(a))) + &(&y * &Int::from_nat(nat(b)));
            assert_eq!(lhs, Int::from_nat(g));
        }
    }

    #[test]
    fn modinv_round_trips() {
        let m = nat(1_000_000_007);
        for a in [2u128, 3, 65_537, 123_456_789] {
            let inv = nat(a).modinv(&m).expect("inverse exists");
            assert_eq!(nat(a).mulm(&inv, &m), Nat::one());
        }
    }

    #[test]
    fn modinv_nonexistent() {
        assert_eq!(nat(6).modinv(&nat(9)), None);
        assert_eq!(nat(0).modinv(&nat(9)), None);
    }

    #[test]
    fn subm_wraps() {
        let m = nat(10);
        assert_eq!(nat(3).subm(&nat(8), &m), nat(5));
        assert_eq!(nat(8).subm(&nat(3), &m), nat(5));
        assert_eq!(nat(3).subm(&nat(3), &m), Nat::zero());
    }

    #[test]
    fn isqrt_floor() {
        assert_eq!(nat(0).isqrt(), nat(0));
        assert_eq!(nat(1).isqrt(), nat(1));
        assert_eq!(nat(15).isqrt(), nat(3));
        assert_eq!(nat(16).isqrt(), nat(4));
        assert_eq!(nat(17).isqrt(), nat(4));
        let big = nat(u128::from(u64::MAX)) * nat(u128::from(u64::MAX));
        assert_eq!(big.isqrt(), nat(u128::from(u64::MAX)));
    }

    #[test]
    fn addm_mulm_reduce() {
        let m = nat(97);
        assert_eq!(nat(96).addm(&nat(96), &m), nat(95));
        assert_eq!(nat(96).mulm(&nat(96), &m), Nat::one());
    }
}
