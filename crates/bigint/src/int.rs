//! The [`Int`] type: signed arbitrary-precision integers (sign + magnitude).
//!
//! Needed wherever negative quantities appear in the threshold-RSA protocols:
//! the extended Euclidean algorithm, additive shares of the private exponent
//! `d` (which may be negative for all but one party, Boneh–Franklin §3), and
//! integer Lagrange coefficients in Shoup-style threshold combination.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};
use core::str::FromStr;

use crate::error::ParseNatError;
use crate::Nat;

/// The sign of an [`Int`]. Zero is always [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// A signed arbitrary-precision integer.
///
/// # Example
///
/// ```
/// use jaap_bigint::{Int, Nat};
///
/// let a = Int::from(-7i64);
/// let b = Int::from(3i64);
/// assert_eq!(&a + &b, Int::from(-4i64));
/// assert_eq!(a.rem_euclid(&Nat::from(5u64)), Nat::from(3u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Int {
    sign: Sign,
    mag: Nat,
}

impl Int {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> Self {
        Int {
            sign: Sign::Plus,
            mag: Nat::zero(),
        }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        Int::from_nat(Nat::one())
    }

    /// Builds a non-negative `Int` from a [`Nat`].
    #[must_use]
    pub fn from_nat(mag: Nat) -> Self {
        Int {
            sign: Sign::Plus,
            mag,
        }
    }

    /// Builds an `Int` with an explicit sign; zero is normalized to `Plus`.
    #[must_use]
    pub fn with_sign(sign: Sign, mag: Nat) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// The sign.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    #[must_use]
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// Returns `true` if zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Returns `true` if strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Converts to a [`Nat`] if non-negative.
    #[must_use]
    pub fn to_nat(&self) -> Option<Nat> {
        match self.sign {
            Sign::Plus => Some(self.mag.clone()),
            Sign::Minus => None,
        }
    }

    /// The non-negative residue `self mod m`, in `0..m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn rem_euclid(&self, m: &Nat) -> Nat {
        let r = self.mag.rem_nat(m);
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }

    /// Euclidean division by a positive [`Nat`]: returns `(q, r)` with
    /// `self = q*d + r` and `0 <= r < d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    #[must_use]
    pub fn div_rem_euclid(&self, d: &Nat) -> (Int, Nat) {
        let (q, r) = self.mag.div_rem(d);
        match self.sign {
            Sign::Plus => (Int::from_nat(q), r),
            Sign::Minus => {
                if r.is_zero() {
                    (Int::with_sign(Sign::Minus, q), r)
                } else {
                    (Int::with_sign(Sign::Minus, &q + &Nat::one()), d - &r)
                }
            }
        }
    }

    /// Absolute value as an `Int`.
    #[must_use]
    pub fn abs(&self) -> Int {
        Int::from_nat(self.mag.clone())
    }

    fn add_int(&self, rhs: &Int) -> Int {
        if self.sign == rhs.sign {
            return Int::with_sign(self.sign, &self.mag + &rhs.mag);
        }
        match self.mag.cmp(&rhs.mag) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::with_sign(self.sign, &self.mag - &rhs.mag),
            Ordering::Less => Int::with_sign(rhs.sign, &rhs.mag - &self.mag),
        }
    }

    fn mul_int(&self, rhs: &Int) -> Int {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Int::with_sign(sign, &self.mag * &rhs.mag)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        if v < 0 {
            Int::with_sign(Sign::Minus, Nat::from(v.unsigned_abs()))
        } else {
            Int::from_nat(Nat::from(v as u64))
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::from_nat(Nat::from(v))
    }
}

impl From<Nat> for Int {
    fn from(v: Nat) -> Self {
        Int::from_nat(v)
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        match self.sign {
            Sign::Plus if self.is_zero() => Int::zero(),
            Sign::Plus => Int::with_sign(Sign::Minus, self.mag.clone()),
            Sign::Minus => Int::from_nat(self.mag.clone()),
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        -&self
    }
}

macro_rules! forward_int_binop {
    ($trait:ident, $method:ident, $imp:ident) => {
        impl $trait<&Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                self.$imp(rhs)
            }
        }
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$imp(&rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                (&self).$imp(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$imp(&rhs)
            }
        }
    };
}

impl Int {
    fn sub_int(&self, rhs: &Int) -> Int {
        self.add_int(&-rhs)
    }
}

forward_int_binop!(Add, add, add_int);
forward_int_binop!(Sub, sub, sub_int);
forward_int_binop!(Mul, mul, mul_int);

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl FromStr for Int {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(Int::with_sign(Sign::Minus, rest.parse()?))
        } else {
            Ok(Int::from_nat(s.strip_prefix('+').unwrap_or(s).parse()?))
        }
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn sign_normalization_of_zero() {
        let z = Int::with_sign(Sign::Minus, Nat::zero());
        assert_eq!(z, Int::zero());
        assert_eq!(z.sign(), Sign::Plus);
    }

    #[test]
    fn signed_addition_table() {
        assert_eq!(int(5) + int(3), int(8));
        assert_eq!(int(5) + int(-3), int(2));
        assert_eq!(int(-5) + int(3), int(-2));
        assert_eq!(int(-5) + int(-3), int(-8));
        assert_eq!(int(5) + int(-5), Int::zero());
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!(int(3) - int(5), int(-2));
        assert_eq!(int(-3) - int(-5), int(2));
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(int(-4) * int(3), int(-12));
        assert_eq!(int(-4) * int(-3), int(12));
        assert_eq!(int(-4) * Int::zero(), Int::zero());
    }

    #[test]
    fn negation() {
        assert_eq!(-int(7), int(-7));
        assert_eq!(-Int::zero(), Int::zero());
        assert_eq!(-(-int(7)), int(7));
    }

    #[test]
    fn rem_euclid_always_nonnegative() {
        let m = Nat::from(5u64);
        assert_eq!(int(13).rem_euclid(&m), Nat::from(3u64));
        assert_eq!(int(-13).rem_euclid(&m), Nat::from(2u64));
        assert_eq!(int(-10).rem_euclid(&m), Nat::zero());
        assert_eq!(Int::zero().rem_euclid(&m), Nat::zero());
    }

    #[test]
    fn div_rem_euclid_identity() {
        let d = Nat::from(7u64);
        for v in [-23i64, -21, -1, 0, 1, 22] {
            let (q, r) = int(v).div_rem_euclid(&d);
            assert!(r < d);
            let rebuilt = &(&q * &Int::from_nat(d.clone())) + &Int::from_nat(r);
            assert_eq!(rebuilt, int(v), "failed for {v}");
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-2));
        assert!(int(-1) < Int::zero());
        assert!(Int::zero() < int(1));
        assert!(int(2) < int(10));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["-12345678901234567890123", "0", "42", "987654321"] {
            let v: Int = s.parse().expect("parse");
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+7".parse::<Int>().expect("parse"), int(7));
    }

    #[test]
    fn to_nat_on_negative_is_none() {
        assert_eq!(int(-1).to_nat(), None);
        assert_eq!(int(5).to_nat(), Some(Nat::from(5u64)));
    }
}
