//! Shared verifier precomputation (DESIGN §5h).
//!
//! Every signature verification against a coalition key pays the same two
//! setup divisions (`R² mod N`, `R mod N`) before the first Montgomery
//! multiply, yet the AA key, the CA keys, and the standing certificates
//! they sign are fixed across millions of requests. A [`VerifierPrecomp`]
//! amortizes that work:
//!
//! * per **modulus** — one cached [`MontgomeryContext`] keyed by the
//!   SHA-256 digest of `(N, e)` (the paper's key id), so repeat verifies
//!   against the same key skip both divisions;
//! * per **base** — for recurring signature residues (standing certs
//!   re-presented on every request), a cached [`FixedBaseWindow`] ladder
//!   keyed by the digest of the residue, so a warm `sig^e` with
//!   `e = 2¹⁶ + 1` collapses to two Montgomery multiplies and zero
//!   squarings.
//!
//! Both maps are bounded with insertion-order eviction and guarded by
//! plain mutexes — entries are built once and then shared as `Arc`s, so
//! the critical sections are a hash lookup, never a bignum operation.
//! Correctness does not depend on invalidation: a cache key commits to
//! the full `(N, e)` (resp. the residue value and its modulus context),
//! so a trust-store swap or key rotation simply hashes to different
//! entries — a stale table can never be *served*, only evicted.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use jaap_bigint::{FixedBaseWindow, MontgomeryContext, Nat};

use crate::sha256::Sha256;

/// Default bound on cached moduli (coalitions have a handful of trust
/// anchors plus one modulus per statement-signing user in flight).
pub const DEFAULT_MODULUS_CAPACITY: usize = 256;

/// Default bound on cached fixed-base ladders per modulus (one per
/// standing certificate signature).
pub const DEFAULT_WINDOW_CAPACITY: usize = 4096;

type Digest = [u8; 32];

fn key_digest(n: &Nat, e: &Nat) -> Digest {
    let mut h = Sha256::new();
    h.update(b"jaap-precomp-key");
    h.update(&n.to_bytes_be());
    h.update(b"|");
    h.update(&e.to_bytes_be());
    h.finalize()
}

fn base_digest(base: &Nat) -> Digest {
    let mut h = Sha256::new();
    h.update(b"jaap-precomp-base");
    h.update(&base.to_bytes_be());
    h.finalize()
}

/// Hit/miss counters shared between the front map and every
/// [`ModulusPrecomp`] it hands out (so eviction never loses counts).
#[derive(Debug, Default)]
struct Counters {
    ctx_hits: AtomicU64,
    ctx_misses: AtomicU64,
    window_hits: AtomicU64,
    window_misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecompStats {
    /// Modulus-context lookups served from cache.
    pub ctx_hits: u64,
    /// Modulus contexts built (two divisions each).
    pub ctx_misses: u64,
    /// Fixed-base ladders served from cache.
    pub window_hits: u64,
    /// Fixed-base ladders built.
    pub window_misses: u64,
    /// Entries dropped by capacity eviction (either map).
    pub evictions: u64,
}

impl PrecompStats {
    /// Total lookups that skipped recomputation — the
    /// `server.crypto.precomp_hits` instrument.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.ctx_hits + self.window_hits
    }
}

/// Bounded insertion-order map: the shape of every cache in this codebase
/// (cf. the coalition `VerifyCache`), small enough to inline here.
#[derive(Debug)]
struct Bounded<V> {
    entries: HashMap<Digest, V>,
    order: VecDeque<Digest>,
    capacity: usize,
}

impl<V> Bounded<V> {
    fn new(capacity: usize) -> Self {
        Bounded {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, k: &Digest) -> Option<&V> {
        self.entries.get(k)
    }

    /// Inserts, evicting oldest entries over capacity; returns evictions.
    fn insert(&mut self, k: Digest, v: V) -> u64 {
        if self.entries.insert(k, v).is_none() {
            self.order.push_back(k);
        }
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if self.entries.remove(&old).is_some() {
                evicted += 1;
            }
        }
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared verifier cache. Cheap to clone via `Arc`; in the coalition
/// it lives behind the trust store's `Arc` so every [`super::rsa`] /
/// certificate verification on the snapshot path shares one instance.
#[derive(Debug)]
pub struct VerifierPrecomp {
    moduli: Mutex<Bounded<Arc<ModulusPrecomp>>>,
    window_capacity: usize,
    counters: Arc<Counters>,
}

impl Default for VerifierPrecomp {
    fn default() -> Self {
        Self::new()
    }
}

impl VerifierPrecomp {
    /// A cache with the default capacities.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MODULUS_CAPACITY, DEFAULT_WINDOW_CAPACITY)
    }

    /// A cache bounded to `moduli` contexts and `windows` ladders per
    /// modulus (each bound is clamped to at least 1).
    #[must_use]
    pub fn with_capacity(moduli: usize, windows: usize) -> Self {
        VerifierPrecomp {
            moduli: Mutex::new(Bounded::new(moduli)),
            window_capacity: windows.max(1),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The cached per-modulus state for `(n, e)`, building (and caching)
    /// it on first sight. `None` iff `n` is outside the Montgomery domain
    /// (even or ≤ 1) — callers fall back to the plain path.
    #[must_use]
    pub fn for_key(&self, n: &Nat, e: &Nat) -> Option<Arc<ModulusPrecomp>> {
        let digest = key_digest(n, e);
        {
            let map = lock(&self.moduli);
            if let Some(mp) = map.get(&digest) {
                self.counters.ctx_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(mp));
            }
        }
        // Build outside the lock: two divisions, the cost we amortize.
        let ctx = MontgomeryContext::new(n)?;
        let mp = Arc::new(ModulusPrecomp {
            ctx,
            e: e.clone(),
            windows: Mutex::new(Bounded::new(self.window_capacity)),
            counters: Arc::clone(&self.counters),
        });
        self.counters.ctx_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = lock(&self.moduli);
        // A racing thread may have built the same context; keep the first
        // (both are equivalent pure functions of (n, e)).
        if let Some(existing) = map.get(&digest) {
            return Some(Arc::clone(existing));
        }
        let evicted = map.insert(digest, Arc::clone(&mp));
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Some(mp)
    }

    /// Number of moduli currently cached.
    #[must_use]
    pub fn modulus_entries(&self) -> usize {
        lock(&self.moduli).len()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> PrecompStats {
        PrecompStats {
            ctx_hits: self.counters.ctx_hits.load(Ordering::Relaxed),
            ctx_misses: self.counters.ctx_misses.load(Ordering::Relaxed),
            window_hits: self.counters.window_hits.load(Ordering::Relaxed),
            window_misses: self.counters.window_misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Cached state for one `(N, e)`: the Montgomery context plus the
/// fixed-base ladders of recurring residues.
#[derive(Debug)]
pub struct ModulusPrecomp {
    ctx: MontgomeryContext,
    e: Nat,
    windows: Mutex<Bounded<Arc<FixedBaseWindow>>>,
    counters: Arc<Counters>,
}

impl ModulusPrecomp {
    /// A standalone (uncached) per-modulus state: lets signing-side
    /// self-checks reuse the batch-verification machinery without going
    /// through a shared [`VerifierPrecomp`]. `None` iff `n` is outside
    /// the Montgomery domain.
    #[must_use]
    pub fn standalone(n: &Nat, e: &Nat) -> Option<Self> {
        Some(ModulusPrecomp {
            ctx: MontgomeryContext::new(n)?,
            e: e.clone(),
            windows: Mutex::new(Bounded::new(4)),
            counters: Arc::new(Counters::default()),
        })
    }

    /// The shared Montgomery context for `N`.
    #[must_use]
    pub fn context(&self) -> &MontgomeryContext {
        &self.ctx
    }

    /// The public exponent `e`.
    #[must_use]
    pub fn exponent(&self) -> &Nat {
        &self.e
    }

    /// Whether a fixed-base ladder for `base` is already cached. A pure
    /// probe: builds nothing and leaves the hit/miss counters untouched.
    #[must_use]
    pub fn has_window(&self, base: &Nat) -> bool {
        lock(&self.windows).get(&base_digest(base)).is_some()
    }

    /// The fixed-base ladder for `base`, built (sized to `e`'s bit length)
    /// and cached on first sight.
    #[must_use]
    pub fn window(&self, base: &Nat) -> Arc<FixedBaseWindow> {
        let digest = base_digest(base);
        {
            let map = lock(&self.windows);
            if let Some(w) = map.get(&digest) {
                self.counters.window_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(w);
            }
        }
        let win = Arc::new(self.ctx.fixed_base(base, self.e.bit_len().max(1)));
        self.counters.window_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = lock(&self.windows);
        if let Some(existing) = map.get(&digest) {
            return Arc::clone(existing);
        }
        let evicted = map.insert(digest, Arc::clone(&win));
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        win
    }

    /// Checks `sig^e mod N == h` (the FDH verification equation), where
    /// `h` must already be the encoded digest and `sig` already
    /// range-checked by the caller. With `recurring = true` the
    /// exponentiation runs over the cached fixed-base ladder for `sig`.
    #[must_use]
    pub fn verify(&self, h: &Nat, sig: &Nat, recurring: bool) -> bool {
        if recurring {
            self.window(sig).modpow(&self.ctx, &self.e) == *h
        } else {
            self.ctx.modpow(sig, &self.e) == *h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_key_caches_and_counts() {
        let p = VerifierPrecomp::new();
        let n = Nat::from(1_000_003u64);
        let e = Nat::from(65_537u64);
        let a = p.for_key(&n, &e).expect("odd modulus");
        let b = p.for_key(&n, &e).expect("odd modulus");
        assert!(Arc::ptr_eq(&a, &b));
        let s = p.stats();
        assert_eq!((s.ctx_hits, s.ctx_misses), (1, 1));
        assert_eq!(p.modulus_entries(), 1);
    }

    #[test]
    fn even_modulus_declines() {
        let p = VerifierPrecomp::new();
        assert!(p
            .for_key(&Nat::from(1000u64), &Nat::from(65_537u64))
            .is_none());
    }

    #[test]
    fn verify_paths_agree_with_plain_modpow() {
        let p = VerifierPrecomp::new();
        let n = Nat::from(1_000_003u64);
        let e = Nat::from(65_537u64);
        let mp = p.for_key(&n, &e).expect("ctx");
        for sig in [2u64, 3, 999_999, 123_456] {
            let sig = Nat::from(sig);
            let h = sig.modpow(&e, &n);
            assert!(mp.verify(&h, &sig, false));
            assert!(mp.verify(&h, &sig, true));
            let wrong = h.addm(&Nat::one(), &n);
            assert!(!mp.verify(&wrong, &sig, false));
            assert!(!mp.verify(&wrong, &sig, true));
        }
        assert!(p.stats().window_hits > 0, "second recurring pass hits");
    }

    #[test]
    fn capacity_evicts_oldest_modulus() {
        let p = VerifierPrecomp::with_capacity(2, 4);
        let e = Nat::from(65_537u64);
        for n in [1_000_003u64, 1_000_033, 1_000_037] {
            let _ = p.for_key(&Nat::from(n), &e);
        }
        assert_eq!(p.modulus_entries(), 2);
        assert!(p.stats().evictions >= 1);
    }

    #[test]
    fn distinct_exponents_get_distinct_entries() {
        // The digest commits to (N, e) jointly — rotating e must miss.
        let p = VerifierPrecomp::new();
        let n = Nat::from(1_000_003u64);
        let _ = p.for_key(&n, &Nat::from(65_537u64));
        let _ = p.for_key(&n, &Nat::from(17u64));
        assert_eq!(p.modulus_entries(), 2);
        assert_eq!(p.stats().ctx_misses, 2);
    }
}
