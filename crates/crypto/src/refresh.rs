//! Proactive refresh of additive private-key shares (Wu et al. [27]).
//!
//! > "Wu et al. describe a refresh operation that allows re-distribution of
//! > private key shares of an existing shared public key among the coalition
//! > domains." (§6)
//!
//! Each party `i` draws deltas `δ_{i,0..n}` with `Σⱼ δ_{i,j} = 0` and sends
//! `δ_{i,j}` to party `j`; party `j`'s new share is
//! `d'ⱼ = dⱼ + Σᵢ δ_{i,j}`. The sum `Σ dⱼ` — and therefore the key — is
//! unchanged, but any previously exfiltrated share becomes useless.

use jaap_bigint::{random_nat, Int};
use jaap_net::{FaultPlan, Network, NetworkStats, PartyId};
use jaap_obs::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::shared::KeyShare;
use crate::CryptoError;

/// Bit size of refresh deltas: comfortably larger than any exponent share.
const DELTA_BITS_MARGIN: usize = 64;

/// Refreshes shares in place, in-process (the dealer-style fast path).
///
/// # Errors
///
/// [`CryptoError::InvalidParameters`] if `shares` is empty or indices are
/// not dense `0..n`.
pub fn refresh_in_place(rng: &mut dyn RngCore, shares: &mut [KeyShare]) -> Result<(), CryptoError> {
    let n = shares.len();
    validate(shares)?;
    let delta_bits = shares[0].public().modulus().bit_len() + DELTA_BITS_MARGIN;
    let mut totals: Vec<Int> = (0..n).map(|_| Int::zero()).collect();
    for _dealer in 0..n {
        let mut sum = Int::zero();
        for total in totals.iter_mut().take(n - 1) {
            let delta = Int::from_nat(random_nat(rng, delta_bits));
            sum = &sum + &delta;
            *total = &*total + &delta;
        }
        totals[n - 1] = &totals[n - 1] - &sum;
    }
    for (share, delta) in shares.iter_mut().zip(totals) {
        let updated = share.exponent_share() + &delta;
        share.set_exponent_share(updated);
    }
    Ok(())
}

/// Runs the refresh as a real message exchange on a simulated network and
/// returns the refreshed shares (party order preserved) plus network stats.
///
/// # Errors
///
/// [`CryptoError::InvalidParameters`] on an invalid share set;
/// [`CryptoError::Protocol`] on network failure.
pub fn refresh_over_network(
    shares: &[KeyShare],
    seed: u64,
) -> Result<(Vec<KeyShare>, NetworkStats), CryptoError> {
    refresh_over_network_observed(shares, seed, FaultPlan::reliable(), None)
}

/// Like [`refresh_over_network`], but runs on a mesh with the given fault
/// plan and, when a metrics registry is supplied, records per-link delivery
/// outcomes (`net.link.*` counters) plus a `refresh.refreshes` run counter —
/// the same observability a [`crate::session::SigningSession`] round gets.
///
/// # Errors
///
/// [`CryptoError::InvalidParameters`] on an invalid share set or fault
/// plan; [`CryptoError::Protocol`] on network failure.
pub fn refresh_over_network_observed(
    shares: &[KeyShare],
    seed: u64,
    faults: FaultPlan,
    metrics: Option<&MetricsRegistry>,
) -> Result<(Vec<KeyShare>, NetworkStats), CryptoError> {
    validate(shares)?;
    let n = shares.len();
    let delta_bits = shares[0].public().modulus().bit_len() + DELTA_BITS_MARGIN;
    let mesh = match metrics {
        Some(registry) => {
            registry.counter("refresh.refreshes").inc();
            Network::<Int>::try_mesh_observed(n, faults, false, registry)
        }
        None => Network::<Int>::try_mesh_with(n, faults, false),
    };
    let (endpoints, handle) =
        mesh.map_err(|e| CryptoError::InvalidParameters(format!("network: {e}")))?;
    let results = jaap_net::run_parties(endpoints, |mut ep| {
        let me = ep.id().0;
        let mut rng = StdRng::seed_from_u64(seed ^ (me as u64 + 1).wrapping_mul(0x9E37_79B9));
        // Draw deltas for every party; keep my own so the row sums to zero.
        let mut sum = Int::zero();
        let mut my_delta = Int::zero();
        for j in 0..n {
            if j == me {
                continue;
            }
            let delta = Int::from_nat(random_nat(&mut rng, delta_bits));
            sum = &sum + &delta;
            ep.send(PartyId(j), delta)
                .map_err(|e| CryptoError::Protocol(format!("network: {e}")))?;
        }
        my_delta = &my_delta - &sum; // δ_{me,me} = -Σ_{j≠me} δ_{me,j}
        let mut total = my_delta;
        for j in 0..n {
            if j == me {
                continue;
            }
            let delta = ep
                .recv_from(PartyId(j))
                .map_err(|e| CryptoError::Protocol(format!("network: {e}")))?;
            total = &total + &delta;
        }
        let mut updated = shares[me].clone();
        updated.set_exponent_share(shares[me].exponent_share() + &total);
        Ok::<KeyShare, CryptoError>(updated)
    });
    let refreshed = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((refreshed, handle.stats()))
}

fn validate(shares: &[KeyShare]) -> Result<(), CryptoError> {
    if shares.is_empty() {
        return Err(CryptoError::InvalidParameters(
            "no shares to refresh".into(),
        ));
    }
    for (i, s) in shares.iter().enumerate() {
        if s.index() != i {
            return Err(CryptoError::InvalidParameters(
                "shares must be in dense party order".into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint;
    use crate::shared::SharedRsaKey;

    fn dealt(n: usize, seed: u64) -> (crate::shared::SharedPublicKey, Vec<KeyShare>) {
        let mut rng = StdRng::seed_from_u64(seed);
        SharedRsaKey::deal(&mut rng, 192, n).expect("deal")
    }

    #[test]
    fn in_place_refresh_preserves_signing_power() {
        let (public, mut shares) = dealt(3, 1);
        let before: Vec<Int> = shares.iter().map(|s| s.exponent_share().clone()).collect();
        refresh_in_place(&mut StdRng::seed_from_u64(2), &mut shares).expect("refresh");
        let after: Vec<Int> = shares.iter().map(|s| s.exponent_share().clone()).collect();
        assert_ne!(before, after, "shares must actually change");
        let sig = joint::sign_locally(&public, &shares, b"after refresh").expect("sign");
        assert!(public.verify(b"after refresh", &sig));
    }

    #[test]
    fn refresh_preserves_share_sum() {
        let (_public, mut shares) = dealt(4, 3);
        let sum_before = shares
            .iter()
            .fold(Int::zero(), |acc, s| &acc + s.exponent_share());
        refresh_in_place(&mut StdRng::seed_from_u64(4), &mut shares).expect("refresh");
        let sum_after = shares
            .iter()
            .fold(Int::zero(), |acc, s| &acc + s.exponent_share());
        assert_eq!(sum_before, sum_after);
    }

    #[test]
    fn mixed_old_and_new_shares_fail() {
        let (public, shares) = dealt(3, 5);
        let mut refreshed = shares.clone();
        refresh_in_place(&mut StdRng::seed_from_u64(6), &mut refreshed).expect("refresh");
        let mixed = vec![
            shares[0].clone(),
            refreshed[1].clone(),
            refreshed[2].clone(),
        ];
        assert!(joint::sign_locally(&public, &mixed, b"m").is_err());
    }

    #[test]
    fn networked_refresh_matches_semantics() {
        let (public, shares) = dealt(3, 7);
        let (refreshed, stats) = refresh_over_network(&shares, 8).expect("refresh");
        assert_eq!(stats.messages_sent, 6); // n(n-1)
        let sig = joint::sign_locally(&public, &refreshed, b"networked").expect("sign");
        assert!(public.verify(b"networked", &sig));
        for (old, new) in shares.iter().zip(&refreshed) {
            assert_eq!(old.index(), new.index());
            assert_ne!(old.exponent_share(), new.exponent_share());
        }
    }

    #[test]
    fn repeated_refresh_stays_valid() {
        let (public, mut shares) = dealt(3, 9);
        let mut rng = StdRng::seed_from_u64(10);
        for round in 0..5 {
            refresh_in_place(&mut rng, &mut shares).expect("refresh");
            let msg = format!("round {round}");
            let sig = joint::sign_locally(&public, &shares, msg.as_bytes()).expect("sign");
            assert!(public.verify(msg.as_bytes(), &sig));
        }
    }

    #[test]
    fn observed_refresh_records_delivery_outcomes() {
        let (public, shares) = dealt(3, 11);
        let registry = MetricsRegistry::new();
        let (refreshed, stats) =
            refresh_over_network_observed(&shares, 12, FaultPlan::reliable(), Some(&registry))
                .expect("refresh");
        assert_eq!(registry.counter_value("refresh.refreshes"), Some(1));
        let delivered: u64 = (0..3)
            .flat_map(|a| (0..3).filter(move |&b| b != a).map(move |b| (a, b)))
            .map(|(a, b)| {
                registry
                    .counter_value(&format!("net.link.{a}->{b}.delivered"))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(delivered, stats.messages_delivered);
        let sig = joint::sign_locally(&public, &refreshed, b"observed").expect("sign");
        assert!(public.verify(b"observed", &sig));
    }

    #[test]
    fn observed_refresh_rejects_invalid_fault_plan() {
        let (_public, shares) = dealt(2, 13);
        let mut plan = FaultPlan::reliable();
        plan.drop_prob = 2.0;
        assert!(refresh_over_network_observed(&shares, 14, plan, None).is_err());
    }

    #[test]
    fn empty_share_set_rejected() {
        let mut none: Vec<KeyShare> = Vec::new();
        assert!(refresh_in_place(&mut StdRng::seed_from_u64(0), &mut none).is_err());
    }
}
