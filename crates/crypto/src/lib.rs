//! Threshold-RSA cryptography for coalition Attribute Authorities.
//!
//! This crate implements, from scratch, every cryptographic mechanism the
//! paper's Section 3 relies on:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (message digests and key ids).
//! * [`rsa`] — conventional RSA key pairs and signatures (the Case I
//!   baseline of §2.2, and per-user / per-CA keys).
//! * [`shared`] — **Boneh–Franklin distributed generation of a shared RSA
//!   key** (§3.1): `n` domains jointly compute a modulus `N = pq` without any
//!   of them learning the factorization, ending with additive shares of the
//!   private exponent `d`. A fast dealer-based split
//!   ([`shared::SharedRsaKey::deal`]) exists for tests that don't exercise
//!   keygen itself.
//! * [`joint`] — the **joint signature** protocol (§3.2): each co-signer
//!   applies its share `dᵢ` to compute `Sᵢ = M^dᵢ mod N`; the requestor
//!   combines `S = Π Sᵢ mod N`.
//! * [`threshold`] — **m-of-n threshold signatures** (§3.3) via integer
//!   Shamir sharing with Shoup's `Δ = n!` Lagrange trick, including a
//!   dealer-free conversion from additive shares.
//! * [`session`] — **resilient signing sessions**: per-round timeouts,
//!   bounded retries with exponential backoff, and m-of-n co-signer
//!   failover so signing completes whenever a quorum of domains is live —
//!   and fails fast with [`CryptoError::QuorumUnreachable`] otherwise.
//! * [`refresh`] — proactive re-randomization of additive shares
//!   (Wu et al. [27], discussed in §6).
//! * [`collusion`] — share-combination analysis backing the paper's
//!   collusion claims (§3.1, §6).
//! * [`precomp`] — shared verifier precomputation: cached per-modulus
//!   Montgomery contexts and per-base fixed-base ladders (DESIGN §5h).
//! * [`batch`] — small-exponents randomized batch verification with
//!   bisection fallback (Bellare–Garay–Rabin).
//! * [`shamir`] — field and integer Shamir secret sharing (used by the BGW
//!   multiplication inside keygen and by the threshold scheme).
//!
//! # Example: deal a shared key and sign jointly
//!
//! ```
//! use jaap_crypto::shared::SharedRsaKey;
//! use jaap_crypto::joint;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), jaap_crypto::CryptoError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let (public, shares) = SharedRsaKey::deal(&mut rng, 256, 3)?;
//! let sig = joint::sign_locally(&public, &shares, b"attribute certificate")?;
//! assert!(public.verify(b"attribute certificate", &sig));
//! # Ok(())
//! # }
//! ```
//!
//! # Security caveats
//!
//! The arithmetic is not constant-time and the multi-party protocols assume
//! honest-but-curious participants, matching the paper's assumption that
//! member domains "do not compromise the coalition operations by refusing to
//! co-operate" (§2.1, Requirement III). See DESIGN.md §7.

pub mod batch;
pub mod collusion;
mod error;
pub mod fdh;
pub mod joint;
pub mod precomp;
pub mod refresh;
pub mod rsa;
pub mod session;
pub mod sha256;
pub mod shamir;
pub mod shared;
pub mod threshold;

pub use error::CryptoError;
pub use sha256::Sha256;
