//! m-of-n threshold RSA signatures (§3.3).
//!
//! > "Threshold m-of-n sharing offers the advantage of increased domain
//! > server availability for joint signatures. Since only m out of the total
//! > n domains need to be on-line for application of joint signatures,
//! > threshold sharing increases domain availability as up to (n-m) domains
//! > can be down for maintenance or error recovery."
//!
//! The construction is Shoup-style: the private exponent `d` is shared with
//! an **integer** Shamir polynomial scaled by `Δ = n!`
//! ([`crate::shamir::integer`]). A subset `S` of `m` signers produces
//! `w = Π Sⱼ^{Δλⱼ} = H^{Δ²d}`, and since `gcd(Δ², e) = 1` an extended-GCD
//! step recovers `s` with `s^e = H`.
//!
//! Two ways to obtain threshold shares:
//!
//! * [`ThresholdKey::deal`] — a dealer splits a conventional RSA key.
//! * [`ThresholdKey::from_additive`] — **dealer-free** conversion from the
//!   additive shares produced by Boneh–Franklin generation: each party
//!   Shamir-shares its `dᵢ` and the per-point sums form a sharing of
//!   `Σ dᵢ = d − r`.

use jaap_bigint::{Int, Nat};
use rand::RngCore;

use crate::batch;
use crate::fdh;
use crate::precomp::ModulusPrecomp;
use crate::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use crate::shamir::integer::{self, IntShare};
use crate::shared::{KeyShare, SharedPublicKey};
use crate::CryptoError;

/// Public parameters of a threshold key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdPublic {
    public: RsaPublicKey,
    m: usize,
    n: usize,
    /// Public additive correction carried over from BF keygen (`0` when
    /// dealt): the integer polynomial shares `d − correction`.
    correction: u64,
}

impl ThresholdPublic {
    /// The signing threshold `m`.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.m
    }

    /// The total number of shareholders `n`.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.n
    }

    /// The underlying RSA public key.
    #[must_use]
    pub fn rsa(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Verifies a threshold signature.
    #[must_use]
    pub fn verify(&self, msg: &[u8], sig: &RsaSignature) -> bool {
        self.public.verify(msg, sig)
    }
}

/// One party's threshold share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdShare {
    /// Party index in `0..n` (evaluation point `index + 1`).
    pub index: usize,
    value: Int,
    public: ThresholdPublic,
}

impl ThresholdShare {
    /// The public parameters.
    #[must_use]
    pub fn public(&self) -> &ThresholdPublic {
        &self.public
    }

    /// The raw polynomial evaluation (exposed for collusion analysis).
    #[must_use]
    pub fn value(&self) -> &Int {
        &self.value
    }

    /// Produces this party's signature share `Sᵢ = H^{sᵢ} mod N`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::NotInvertible`] if the hashed message shares a factor
    /// with `N`.
    pub fn sign_share(&self, msg: &[u8]) -> Result<ThresholdSigShare, CryptoError> {
        let modulus = self.public.public.modulus();
        let h = fdh::encode(msg, modulus);
        let value = apply_int_exponent(&self.value, &h, modulus)?;
        Ok(ThresholdSigShare {
            index: self.index,
            value,
        })
    }
}

/// One party's contribution to a threshold signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdSigShare {
    /// Contributing party index.
    pub index: usize,
    /// `H^{sᵢ} mod N`.
    pub value: Nat,
}

/// Namespace for threshold key construction.
#[derive(Debug)]
pub struct ThresholdKey;

impl ThresholdKey {
    /// Dealer-based m-of-n split of a conventional RSA key pair.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] unless `2 <= m <= n <= 20`.
    pub fn deal(
        rng: &mut dyn RngCore,
        keypair: &RsaKeyPair,
        m: usize,
        n: usize,
    ) -> Result<(ThresholdPublic, Vec<ThresholdShare>), CryptoError> {
        check_m_n(m, n)?;
        let public = ThresholdPublic {
            public: keypair.public().clone(),
            m,
            n,
            correction: 0,
        };
        let d = Int::from_nat(keypair.private_exponent().clone());
        let coeff_bits = keypair.public().modulus().bit_len() + 128;
        let shares = integer::share(rng, &d, m, n, coeff_bits);
        Ok(wrap_shares(public, shares))
    }

    /// Dealer-free conversion from BF additive shares: each party
    /// Shamir-shares its `dᵢ`; summing share vectors pointwise yields an
    /// integer Shamir sharing of `Σ dᵢ = d − r`. (Run here in-process; each
    /// party's polynomial is still independently random, so the privacy
    /// argument is unchanged.)
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] on threshold bounds or if the
    /// additive share set is inconsistent.
    pub fn from_additive(
        rng: &mut dyn RngCore,
        public: &SharedPublicKey,
        additive: &[KeyShare],
        m: usize,
    ) -> Result<(ThresholdPublic, Vec<ThresholdShare>), CryptoError> {
        let n = public.n_parties();
        check_m_n(m, n)?;
        if additive.len() != n {
            return Err(CryptoError::InvalidParameters(format!(
                "need all {n} additive shares, got {}",
                additive.len()
            )));
        }
        let coeff_bits = public.modulus().bit_len() + 128;
        let mut sums: Vec<IntShare> = (0..n)
            .map(|index| IntShare {
                index,
                value: Int::zero(),
            })
            .collect();
        for key_share in additive {
            let sub = integer::share(rng, key_share.exponent_share(), m, n, coeff_bits);
            for (acc, s) in sums.iter_mut().zip(&sub) {
                acc.value = &acc.value + &s.value;
            }
        }
        let tp = ThresholdPublic {
            public: public.rsa().clone(),
            m,
            n,
            correction: public.correction(),
        };
        Ok(wrap_shares(tp, sums))
    }
}

fn check_m_n(m: usize, n: usize) -> Result<(), CryptoError> {
    if m < 2 || m > n || n > 20 {
        return Err(CryptoError::InvalidParameters(format!(
            "threshold parameters out of range: m={m}, n={n} (need 2 <= m <= n <= 20)"
        )));
    }
    Ok(())
}

fn wrap_shares(
    public: ThresholdPublic,
    shares: Vec<IntShare>,
) -> (ThresholdPublic, Vec<ThresholdShare>) {
    let wrapped = shares
        .into_iter()
        .map(|s| ThresholdShare {
            index: s.index,
            value: s.value,
            public: public.clone(),
        })
        .collect();
    (public, wrapped)
}

/// Combines `m` (or more) signature shares into a verified signature.
///
/// # Errors
///
/// * [`CryptoError::BadShares`] with fewer than `m` shares or duplicates.
/// * [`CryptoError::SelfCheckFailed`] if the result does not verify.
pub fn combine(
    public: &ThresholdPublic,
    msg: &[u8],
    shares: &[ThresholdSigShare],
) -> Result<RsaSignature, CryptoError> {
    if shares.len() < public.m {
        return Err(CryptoError::BadShares(format!(
            "need at least {} shares, got {}",
            public.m,
            shares.len()
        )));
    }
    let subset: Vec<usize> = shares.iter().take(public.m).map(|s| s.index).collect();
    {
        let mut sorted = subset.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != subset.len() || sorted.iter().any(|&i| i >= public.n) {
            return Err(CryptoError::BadShares(
                "duplicate or out-of-range index".into(),
            ));
        }
    }
    let modulus = public.public.modulus();
    let h = fdh::encode(msg, modulus);
    let e = public.public.exponent();
    let delta = integer::delta(public.n);
    let delta2 = &delta * &delta;
    let Some(mp) = ModulusPrecomp::standalone(modulus, e) else {
        return combine_reference(public, msg, shares, &subset, &h, &delta2);
    };
    let ctx = mp.context();

    // w = Π Sⱼ^{Δλⱼ} · H^{Δ²·correction} = H^{Δ²·d}, as one Straus
    // multi-exponentiation: the Δ-scaled Lagrange exponents are wide, so
    // sharing a single squaring chain across the m shares (plus the
    // correction term) is where the recombination speedup comes from.
    // Negative exponents invert the base first, as in the serial path.
    let mut terms: Vec<(Nat, Nat)> = Vec::with_capacity(public.m + 1);
    for s in shares.iter().take(public.m) {
        let coeff = integer::lagrange_delta(&subset, s.index, public.n);
        let base = if coeff.is_negative() {
            s.value.modinv(modulus).ok_or(CryptoError::NotInvertible)?
        } else {
            s.value.clone()
        };
        terms.push((base, coeff.magnitude().clone()));
    }
    if public.correction != 0 {
        terms.push((h.clone(), &delta2 * &Nat::from(public.correction)));
    }
    let pairs: Vec<(&Nat, &Nat)> = terms.iter().map(|(b, x)| (b, x)).collect();
    let w = ctx.multi_modpow(&pairs);

    // s = w^a · H^b where a·Δ² + b·e = 1 — a two-term multi-exp.
    let (g, a, b) = delta2.ext_gcd(e);
    if !g.is_one() {
        return Err(CryptoError::BadShares(
            "gcd(Δ², e) != 1 — unsupported parameters".into(),
        ));
    }
    let mut fin: Vec<(Nat, Nat)> = Vec::with_capacity(2);
    for (exp, base) in [(&a, &w), (&b, &h)] {
        let base = if exp.is_negative() {
            base.modinv(modulus).ok_or(CryptoError::NotInvertible)?
        } else {
            base.clone()
        };
        fin.push((base, exp.magnitude().clone()));
    }
    let fin_pairs: Vec<(&Nat, &Nat)> = fin.iter().map(|(x, y)| (x, y)).collect();
    let sig = RsaSignature::from_value(ctx.multi_modpow(&fin_pairs));
    // Self-check via the batch machinery (one-item batch = exact check);
    // bad shares must always land here as SelfCheckFailed, never panic.
    let checked = batch::verify_batch(
        &mp,
        &[batch::BatchItem {
            h,
            sig: sig.value().clone(),
        }],
        0,
        false,
    );
    if checked.results == [true] {
        Ok(sig)
    } else {
        Err(CryptoError::SelfCheckFailed)
    }
}

/// The pre-multi-exp reference combination (kept for moduli outside the
/// Montgomery domain, which honest RSA parameters never produce).
fn combine_reference(
    public: &ThresholdPublic,
    msg: &[u8],
    shares: &[ThresholdSigShare],
    subset: &[usize],
    h: &Nat,
    delta2: &Nat,
) -> Result<RsaSignature, CryptoError> {
    let modulus = public.public.modulus();
    let mut w = Nat::one();
    for s in shares.iter().take(public.m) {
        let coeff = integer::lagrange_delta(subset, s.index, public.n);
        let factor = apply_int_exponent(&coeff, &s.value, modulus)?;
        w = w.mulm(&factor, modulus);
    }
    if public.correction != 0 {
        let corr_exp = delta2 * &Nat::from(public.correction);
        w = w.mulm(&h.modpow(&corr_exp, modulus), modulus);
    }
    let e = public.public.exponent();
    let (g, a, b) = delta2.ext_gcd(e);
    if !g.is_one() {
        return Err(CryptoError::BadShares(
            "gcd(Δ², e) != 1 — unsupported parameters".into(),
        ));
    }
    let wa = apply_int_exponent(&a, &w, modulus)?;
    let hb = apply_int_exponent(&b, h, modulus)?;
    let sig = RsaSignature::from_value(wa.mulm(&hb, modulus));
    if public.verify(msg, &sig) {
        Ok(sig)
    } else {
        Err(CryptoError::SelfCheckFailed)
    }
}

/// Wire messages for networked threshold signing.
#[derive(Debug, Clone)]
pub enum ThresholdMsg {
    /// Requestor → co-signers: the message to sign.
    Request(Vec<u8>),
    /// Co-signer → requestor: a signature share.
    Share(Nat),
}

/// Runs threshold signing over a simulated network: the requestor asks all
/// parties, combines as soon as `m` shares (including its own) arrive, and
/// succeeds even when up to `n - m` parties are offline — the §3.3
/// availability win, executable.
///
/// # Errors
///
/// [`CryptoError::InvalidParameters`] on inconsistent inputs;
/// [`CryptoError::Protocol`] when fewer than `m` shares arrive within
/// `timeout`; combination errors.
pub fn sign_over_network(
    public: &ThresholdPublic,
    shares: &[ThresholdShare],
    requestor: usize,
    msg: &[u8],
    online: &[bool],
    timeout: std::time::Duration,
) -> Result<(RsaSignature, jaap_net::NetworkStats), CryptoError> {
    use jaap_net::{Network, PartyId};
    let n = public.n;
    if shares.len() != n || online.len() != n {
        return Err(CryptoError::InvalidParameters(format!(
            "need {n} shares and {n} online flags"
        )));
    }
    if requestor >= n || !online[requestor] {
        return Err(CryptoError::InvalidParameters(
            "requestor out of range or offline".into(),
        ));
    }
    let m = public.m;
    let (endpoints, handle) = Network::<ThresholdMsg>::mesh(n);
    let results = jaap_net::run_parties(endpoints, |mut ep| {
        let me = ep.id().0;
        if !online[me] {
            return Ok(None);
        }
        if me == requestor {
            ep.broadcast(ThresholdMsg::Request(msg.to_vec()))
                .map_err(|e| CryptoError::Protocol(format!("network: {e}")))?;
            let mut collected = vec![shares[me].sign_share(msg)?];
            let deadline = std::time::Instant::now() + timeout;
            while collected.len() < m {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return Err(CryptoError::Protocol(format!(
                        "threshold signing timed out: {} of {m} shares",
                        collected.len()
                    )));
                }
                match ep.recv_timeout(remaining) {
                    Ok(env) => {
                        if let ThresholdMsg::Share(value) = env.payload {
                            collected.push(ThresholdSigShare {
                                index: env.from.0,
                                value,
                            });
                        }
                    }
                    Err(jaap_net::NetError::Timeout) => continue,
                    Err(e) => return Err(CryptoError::Protocol(format!("network: {e}"))),
                }
            }
            combine(public, msg, &collected).map(Some)
        } else {
            match ep.recv_timeout(timeout) {
                Ok(env) if env.from == PartyId(requestor) => {
                    if let ThresholdMsg::Request(body) = env.payload {
                        let share = shares[me].sign_share(&body)?;
                        // The requestor exits as soon as it holds m shares;
                        // a reply racing that exit sees Disconnected, which
                        // is not a failure from the co-signer's side.
                        match ep.send(PartyId(requestor), ThresholdMsg::Share(share.value)) {
                            Ok(()) | Err(jaap_net::NetError::Disconnected) => {}
                            Err(e) => return Err(CryptoError::Protocol(format!("network: {e}"))),
                        }
                    }
                    Ok(None)
                }
                _ => Ok(None),
            }
        }
    });
    let mut signature = None;
    for r in results {
        if let Some(sig) = r? {
            signature = Some(sig);
        }
    }
    let sig =
        signature.ok_or_else(|| CryptoError::Protocol("requestor produced no signature".into()))?;
    Ok((sig, handle.stats()))
}

/// `base^exp mod modulus` for a signed exponent.
fn apply_int_exponent(exp: &Int, base: &Nat, modulus: &Nat) -> Result<Nat, CryptoError> {
    if exp.is_negative() {
        let inv = base.modinv(modulus).ok_or(CryptoError::NotInvertible)?;
        Ok(inv.modpow(exp.magnitude(), modulus))
    } else {
        Ok(base.modpow(exp.magnitude(), modulus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedRsaKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dealt(m: usize, n: usize, seed: u64) -> (ThresholdPublic, Vec<ThresholdShare>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
        ThresholdKey::deal(&mut rng, &kp, m, n).expect("deal")
    }

    fn sig_shares(shares: &[ThresholdShare], idx: &[usize], msg: &[u8]) -> Vec<ThresholdSigShare> {
        idx.iter()
            .map(|&i| shares[i].sign_share(msg).expect("share"))
            .collect()
    }

    #[test]
    fn two_of_three_signs_with_any_pair() {
        let (public, shares) = dealt(2, 3, 1);
        for pair in [[0usize, 1], [0, 2], [1, 2]] {
            let ss = sig_shares(&shares, &pair, b"write Object O");
            let sig = combine(&public, b"write Object O", &ss).expect("combine");
            assert!(public.verify(b"write Object O", &sig));
        }
    }

    #[test]
    fn below_threshold_fails() {
        let (public, shares) = dealt(2, 3, 2);
        let ss = sig_shares(&shares, &[1], b"m");
        assert!(matches!(
            combine(&public, b"m", &ss),
            Err(CryptoError::BadShares(_))
        ));
    }

    #[test]
    fn extra_shares_beyond_threshold_are_fine() {
        let (public, shares) = dealt(3, 5, 3);
        let ss = sig_shares(&shares, &[0, 1, 2, 3, 4], b"m");
        let sig = combine(&public, b"m", &ss).expect("combine");
        assert!(public.verify(b"m", &sig));
    }

    #[test]
    fn duplicate_share_rejected() {
        let (public, shares) = dealt(2, 3, 4);
        let a = shares[0].sign_share(b"m").expect("share");
        let ss = vec![a.clone(), a];
        assert!(matches!(
            combine(&public, b"m", &ss),
            Err(CryptoError::BadShares(_))
        ));
    }

    #[test]
    fn corrupted_share_detected() {
        let (public, shares) = dealt(2, 3, 5);
        let mut ss = sig_shares(&shares, &[0, 2], b"m");
        ss[0].value = &ss[0].value + &Nat::one();
        assert_eq!(
            combine(&public, b"m", &ss),
            Err(CryptoError::SelfCheckFailed)
        );
    }

    mod bad_share_robustness {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Arbitrarily corrupted share values must surface as
            /// `SelfCheckFailed` (or `NotInvertible` for non-residues) —
            /// never as a panic — and an accepted result must verify.
            #[test]
            fn combine_never_panics_on_random_bad_shares(
                victim in 0usize..2,
                limbs in proptest::collection::vec(any::<u64>(), 0..6),
            ) {
                let (public, shares) = dealt(2, 3, 50);
                let mut ss = sig_shares(&shares, &[0, 1], b"m");
                ss[victim].value = Nat::from_limbs(limbs);
                match combine(&public, b"m", &ss) {
                    Ok(sig) => prop_assert!(public.verify(b"m", &sig)),
                    Err(e) => prop_assert!(matches!(
                        e,
                        CryptoError::SelfCheckFailed | CryptoError::NotInvertible
                    )),
                }
            }
        }
    }

    #[test]
    fn wrong_message_does_not_verify() {
        let (public, shares) = dealt(2, 3, 6);
        let ss = sig_shares(&shares, &[0, 1], b"m1");
        let sig = combine(&public, b"m1", &ss).expect("combine");
        assert!(!public.verify(b"m2", &sig));
    }

    #[test]
    fn from_additive_preserves_signing_power() {
        let mut rng = StdRng::seed_from_u64(7);
        let (public, additive) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let (tp, tshares) =
            ThresholdKey::from_additive(&mut rng, &public, &additive, 2).expect("convert");
        assert_eq!(tp.threshold(), 2);
        for pair in [[0usize, 1], [1, 2]] {
            let ss = sig_shares(&tshares, &pair, b"converted");
            let sig = combine(&tp, b"converted", &ss).expect("combine");
            assert!(tp.verify(b"converted", &sig));
            // Threshold signatures verify against the same public key as
            // n-of-n joint signatures.
            assert!(public.verify(b"converted", &sig));
        }
    }

    #[test]
    fn from_additive_respects_bf_correction() {
        // Exercise a nonzero correction by round-tripping through the real
        // distributed keygen (small modulus to stay fast).
        let (public, additive, _) = SharedRsaKey::generate(64, 3, 5).expect("keygen");
        let mut rng = StdRng::seed_from_u64(8);
        let (tp, tshares) =
            ThresholdKey::from_additive(&mut rng, &public, &additive, 2).expect("convert");
        let ss = sig_shares(&tshares, &[0, 2], b"bf");
        let sig = combine(&tp, b"bf", &ss).expect("combine");
        assert!(public.verify(b"bf", &sig));
    }

    #[test]
    fn parameter_validation() {
        let mut rng = StdRng::seed_from_u64(9);
        let kp = RsaKeyPair::generate(&mut rng, 128).expect("keygen");
        assert!(ThresholdKey::deal(&mut rng, &kp, 1, 3).is_err());
        assert!(ThresholdKey::deal(&mut rng, &kp, 4, 3).is_err());
        assert!(ThresholdKey::deal(&mut rng, &kp, 2, 21).is_err());
    }

    #[test]
    fn networked_threshold_signing_with_offline_minority() {
        // 2-of-3 with one party offline: still signs (the §3.3 win).
        let (public, shares) = dealt(2, 3, 30);
        let online = [true, true, false];
        let (sig, _) = sign_over_network(
            &public,
            &shares,
            0,
            b"quorum",
            &online,
            std::time::Duration::from_secs(5),
        )
        .expect("sign");
        assert!(public.verify(b"quorum", &sig));
    }

    #[test]
    fn networked_threshold_signing_fails_below_quorum() {
        let (public, shares) = dealt(3, 4, 31);
        let online = [true, true, false, false];
        let err = sign_over_network(
            &public,
            &shares,
            0,
            b"no quorum",
            &online,
            std::time::Duration::from_millis(100),
        )
        .unwrap_err();
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn networked_threshold_all_online_matches_local() {
        let (public, shares) = dealt(2, 3, 32);
        let online = [true, true, true];
        let (net_sig, _) = sign_over_network(
            &public,
            &shares,
            1,
            b"same",
            &online,
            std::time::Duration::from_secs(5),
        )
        .expect("sign");
        assert!(public.verify(b"same", &net_sig));
    }

    #[test]
    fn seven_of_nine() {
        let (public, shares) = dealt(7, 9, 10);
        let ss = sig_shares(&shares, &[0, 2, 3, 5, 6, 7, 8], b"big coalition");
        let sig = combine(&public, b"big coalition", &ss).expect("combine");
        assert!(public.verify(b"big coalition", &sig));
    }
}
