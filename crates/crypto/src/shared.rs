//! Shared RSA keys: distributed Boneh–Franklin generation and a dealer-based
//! fast path.
//!
//! This module implements the paper's §3.1: `n` domains jointly generate a
//! modulus `N = pq` and a public exponent `e` such that **none of them learns
//! the factorization of `N`**, and the private exponent `d` ends up
//! additively shared (`d ≈ Σ dᵢ`) so that signatures require all parties
//! (n-of-n; see [`crate::threshold`] for m-of-n).
//!
//! The distributed protocol ([`SharedRsaKey::generate`]) follows
//! Boneh–Franklin [8] / Malkin–Wu–Boneh [21]:
//!
//! 1. **Sieved candidate sampling** — each party draws an additive share
//!    `pᵢ`; blinded distributed trial division rejects any candidate
//!    `p = Σ pᵢ` divisible by a small prime. Individual residues are blinded
//!    with fresh shares of zero, so a party only learns `p mod r`, never
//!    `pⱼ mod r`.
//! 2. **BGW multiplication** — parties Shamir-share `pᵢ, qᵢ` over a prime
//!    field, locally multiply, and publicly interpolate `N = p·q` (the
//!    product is public; the factors stay shared).
//! 3. **Biprimality test** — for random `g` with Jacobi symbol `(g/N) = 1`
//!    the parties check `g^(φ(N)/4) ≡ ±1 (mod N)` using only their shares
//!    of `p + q`.
//! 4. **Shared inversion of `e`** — parties reveal `φ(N) mod e`, compute
//!    `ζ = (φ mod e)⁻¹ mod e`, and take `dᵢ = ⌊(1·[i=0] − ζφᵢ)/e⌋`, giving
//!    `Σ dᵢ = d − r` for a small public correction `r < n` found by a
//!    calibration signature.
//!
//! The dealer fast path ([`SharedRsaKey::deal`]) produces shares with the
//! same algebraic shape from a centrally generated key; coalition-layer
//! tests use it so they don't pay keygen cost on every run.

use std::time::{Duration, Instant};

use jaap_bigint::{
    is_probable_prime, jacobi, next_prime, random_below, random_nat, Int, Jacobi, Nat, SMALL_PRIMES,
};
use jaap_net::{Endpoint, Network, NetworkStats, PartyId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::fdh;
use crate::precomp::ModulusPrecomp;
use crate::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature, PUBLIC_EXPONENT};
use crate::CryptoError;

/// Message fixed by the protocol for the post-keygen calibration signature.
pub const CALIBRATION_MESSAGE: &[u8] = b"jaap-shared-key-calibration";

/// Rounds of the biprimality test (each rejects a non-biprime with
/// probability at least 1/2).
const BIPRIMALITY_ROUNDS: usize = 24;

/// The public half of a shared RSA key.
///
/// Compared to a plain [`RsaPublicKey`] it also records how many parties
/// share the private exponent and the public additive correction `r` with
/// `Σ dᵢ + r = d`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SharedPublicKey {
    public: RsaPublicKey,
    n_parties: usize,
    correction: u64,
}

impl SharedPublicKey {
    /// The underlying RSA public key.
    #[must_use]
    pub fn rsa(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The modulus `N`.
    #[must_use]
    pub fn modulus(&self) -> &Nat {
        self.public.modulus()
    }

    /// The public exponent `e`.
    #[must_use]
    pub fn exponent(&self) -> &Nat {
        self.public.exponent()
    }

    /// Number of private-key shareholders.
    #[must_use]
    pub fn n_parties(&self) -> usize {
        self.n_parties
    }

    /// The public combination correction `r` (see module docs).
    #[must_use]
    pub fn correction(&self) -> u64 {
        self.correction
    }

    /// Key id (`SHA-256(N || e)`, per §3.2).
    #[must_use]
    pub fn key_id(&self) -> String {
        self.public.key_id()
    }

    /// Verifies a (joint) signature.
    #[must_use]
    pub fn verify(&self, msg: &[u8], sig: &RsaSignature) -> bool {
        self.public.verify(msg, sig)
    }

    /// Like [`SharedPublicKey::verify`], through a shared verifier
    /// precomputation cache (see [`RsaPublicKey::verify_with`]).
    #[must_use]
    pub fn verify_with(
        &self,
        precomp: Option<&crate::precomp::VerifierPrecomp>,
        recurring: bool,
        msg: &[u8],
        sig: &RsaSignature,
    ) -> bool {
        self.public.verify_with(precomp, recurring, msg, sig)
    }
}

/// One party's share of the private exponent of a shared RSA key.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeyShare {
    index: usize,
    d_share: Int,
    public: SharedPublicKey,
}

impl KeyShare {
    /// The holder's party index in `0..n`.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shared public key this share belongs to.
    #[must_use]
    pub fn public(&self) -> &SharedPublicKey {
        &self.public
    }

    /// The raw exponent share (exposed for refresh / collusion analysis).
    #[must_use]
    pub fn exponent_share(&self) -> &Int {
        &self.d_share
    }

    /// Replaces the exponent share (used by proactive refresh).
    pub(crate) fn set_exponent_share(&mut self, d: Int) {
        self.d_share = d;
    }

    pub(crate) fn new(index: usize, d_share: Int, public: SharedPublicKey) -> Self {
        KeyShare {
            index,
            d_share,
            public,
        }
    }

    /// Applies this share to a full-domain-hashed residue:
    /// `h^{dᵢ} mod N` (with a modular inverse for negative `dᵢ`).
    ///
    /// # Errors
    ///
    /// [`CryptoError::NotInvertible`] if `gcd(h, N) != 1` (vanishing
    /// probability; such an `h` would reveal a factor of `N`).
    pub fn apply(&self, h: &Nat) -> Result<Nat, CryptoError> {
        let n = self.public.modulus();
        let mag = self.d_share.magnitude();
        if self.d_share.is_negative() {
            let inv = h.modinv(n).ok_or(CryptoError::NotInvertible)?;
            Ok(inv.modpow(mag, n))
        } else {
            Ok(h.modpow(mag, n))
        }
    }

    /// Signs `msg` with this share only (a *signature share*; see
    /// [`crate::joint`] for combination).
    ///
    /// # Errors
    ///
    /// Propagates [`KeyShare::apply`] errors.
    pub fn sign_share(&self, msg: &[u8]) -> Result<Nat, CryptoError> {
        self.apply(&fdh::encode(msg, self.public.modulus()))
    }
}

/// Statistics from one distributed key generation run (experiment E4).
#[derive(Debug, Clone, Default)]
pub struct KeygenStats {
    /// Modulus candidates tried (pairs `(p, q)` that reached biprimality).
    pub candidates_tried: u64,
    /// Candidate prime shares drawn (before sieving).
    pub sieve_draws: u64,
    /// Candidates rejected by the biprimality test.
    pub biprimality_rejects: u64,
    /// Candidates rejected because `gcd(e, φ) != 1`.
    pub phi_rejects: u64,
    /// Wall-clock duration of the whole protocol.
    pub wall: Duration,
    /// Network statistics.
    pub network: NetworkStats,
}

/// Namespace for shared-key construction.
#[derive(Debug)]
pub struct SharedRsaKey;

impl SharedRsaKey {
    /// Dealer-based fast path: generates an RSA key centrally and splits the
    /// private exponent into `n` additive shares. Produces shares with the
    /// same algebraic shape as the distributed protocol (correction `r = 0`).
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] if `n < 2` or `bits < 32`.
    pub fn deal(
        rng: &mut dyn RngCore,
        bits: usize,
        n: usize,
    ) -> Result<(SharedPublicKey, Vec<KeyShare>), CryptoError> {
        if n < 2 {
            return Err(CryptoError::InvalidParameters(
                "a shared key needs at least 2 parties".into(),
            ));
        }
        let keypair = RsaKeyPair::generate(rng, bits)?;
        let phi = keypair.phi();
        let public = SharedPublicKey {
            public: keypair.public().clone(),
            n_parties: n,
            correction: 0,
        };
        // d = d_0 + Σ_{i>0} d_i exactly (d_0 compensates, possibly negative).
        let mut rest = Int::zero();
        let mut shares = Vec::with_capacity(n);
        for i in 1..n {
            let share = Int::from_nat(random_below(rng, &phi));
            rest = &rest + &share;
            shares.push(KeyShare::new(i, share, public.clone()));
        }
        let d0 = &Int::from_nat(keypair.private_exponent().clone()) - &rest;
        shares.insert(0, KeyShare::new(0, d0, public.clone()));
        Ok((public, shares))
    }

    /// Runs the full Boneh–Franklin distributed generation protocol among
    /// `n` simulated parties. Deterministic for a fixed `seed`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] for `n < 3` (BGW needs
    /// `n ≥ 2t+1` with `t ≥ 1`) or `bits < 64`;
    /// [`CryptoError::Protocol`] if a party thread fails.
    pub fn generate(
        bits: usize,
        n: usize,
        seed: u64,
    ) -> Result<(SharedPublicKey, Vec<KeyShare>, KeygenStats), CryptoError> {
        if n < 3 {
            return Err(CryptoError::InvalidParameters(
                "distributed generation needs at least 3 parties".into(),
            ));
        }
        if bits < 64 {
            return Err(CryptoError::InvalidParameters(
                "modulus must be at least 64 bits".into(),
            ));
        }
        let start = Instant::now();
        let (endpoints, handle) = Network::<KeygenMsg>::mesh(n);
        let results = jaap_net::run_parties(endpoints, |mut ep| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ep.id().0 as u64 + 1)),
            );
            keygen_party(&mut ep, bits, &mut rng)
        });
        let mut shares = Vec::with_capacity(n);
        let mut stats = KeygenStats::default();
        for res in results {
            let (share, party_stats) = res?;
            stats.candidates_tried = party_stats.candidates_tried;
            stats.sieve_draws = stats.sieve_draws.max(party_stats.sieve_draws);
            stats.biprimality_rejects = party_stats.biprimality_rejects;
            stats.phi_rejects = party_stats.phi_rejects;
            shares.push(share);
        }
        shares.sort_by_key(KeyShare::index);
        let public = shares[0].public.clone();
        for s in &shares {
            if s.public != public {
                return Err(CryptoError::Protocol(
                    "parties disagree on the public key".into(),
                ));
            }
        }
        stats.wall = start.elapsed();
        stats.network = handle.stats();
        Ok((public, shares, stats))
    }
}

/// Wire messages of the keygen protocol.
#[derive(Debug, Clone)]
enum KeygenMsg {
    /// Zero-blinding shares, one residue per sieve prime.
    SieveBlind(Vec<u64>),
    /// Blinded residues of this party's candidate share, per sieve prime.
    SieveResidues(Vec<u64>),
    /// Shamir shares of (pᵢ, qᵢ) for the recipient's evaluation point.
    BgwShare(Nat, Nat),
    /// This party's degree-2t product share.
    BgwProduct(Nat),
    /// Biprimality base `g` chosen by the leader.
    BiprimalityBase(Nat),
    /// This party's biprimality value `vᵢ`.
    BiprimalityV(Nat),
    /// `φᵢ mod e`.
    PhiModE(u64),
    /// Calibration signature share.
    CalibShare(Nat),
}

#[derive(Debug, Default, Clone)]
struct PartyStats {
    candidates_tried: u64,
    sieve_draws: u64,
    biprimality_rejects: u64,
    phi_rejects: u64,
}

/// Odd sieve primes (2 is handled by the mod-4 constraints on shares).
fn sieve_primes() -> &'static [u64] {
    &SMALL_PRIMES[1..]
}

/// Deterministic BGW field prime, agreed upon by all parties: the smallest
/// prime above `2^(bits+2)`.
fn bgw_field_prime(bits: usize) -> Nat {
    let mut rng = StdRng::seed_from_u64(0xF1E1D); // fixed: all parties agree
    next_prime(&Nat::one().shl_bits(bits + 2), &mut rng)
}

fn keygen_party(
    ep: &mut Endpoint<KeygenMsg>,
    bits: usize,
    rng: &mut StdRng,
) -> Result<(KeyShare, PartyStats), CryptoError> {
    let n = ep.n();
    let me = ep.id().0;
    let leader = me == 0;
    let prime_bits = bits / 2;
    let field_p = bgw_field_prime(bits);
    let e = Nat::from(PUBLIC_EXPONENT);
    let mut stats = PartyStats::default();

    loop {
        stats.candidates_tried += 1;
        // Step 1: sieved additive shares of candidate primes p and q.
        let p_share = sample_sieved_share(ep, rng, prime_bits, leader, &mut stats)?;
        let q_share = sample_sieved_share(ep, rng, prime_bits, leader, &mut stats)?;

        // Step 2: N = p*q via BGW multiplication.
        let modulus = bgw_multiply(ep, rng, &p_share, &q_share, &field_p)?;

        // Public sanity checks (identical at all parties).
        if !public_candidate_ok(&modulus, bits) {
            continue;
        }

        // Step 3: distributed biprimality test.
        if !biprimality_test(ep, rng, &modulus, &p_share, &q_share, leader)? {
            stats.biprimality_rejects += 1;
            continue;
        }

        // Step 4: shared computation of d = e^{-1} mod φ(N).
        let phi_share = if leader {
            // φ₀ = N + 1 - p₀ - q₀ (positive: N dominates).
            let nat = &(&modulus + &Nat::one()) - &(&p_share + &q_share);
            Int::from_nat(nat)
        } else {
            -Int::from_nat(&p_share + &q_share)
        };
        let my_phi_mod_e = phi_share.rem_euclid(&e).to_u64().expect("residue < e");
        ep.broadcast(KeygenMsg::PhiModE(my_phi_mod_e))
            .map_err(net_err)?;
        let mut phi_mod_e = my_phi_mod_e;
        for payload in gather(ep)? {
            let KeygenMsg::PhiModE(v) = payload else {
                return Err(protocol_err("expected PhiModE"));
            };
            phi_mod_e = (phi_mod_e + v) % PUBLIC_EXPONENT;
        }
        let Some(zeta) = Nat::from(phi_mod_e).modinv(&e) else {
            stats.phi_rejects += 1;
            continue; // e divides φ(N); retry with a new candidate
        };

        // dᵢ = ⌊(1·[i=0] - ζ·φᵢ) / e⌋ (floor division; e > 0 so Euclidean
        // division is floor division).
        let zeta_int = Int::from_nat(zeta);
        let mut numerator = -&(&zeta_int * &phi_share);
        if leader {
            numerator = &numerator + &Int::one();
        }
        let (d_share, _) = numerator.div_rem_euclid(&e);

        // Step 5: calibration — find the public correction r via a joint
        // test signature, and self-check the key.
        let h = fdh::encode(CALIBRATION_MESSAGE, &modulus);
        let my_sig_share = apply_share(&d_share, &h, &modulus)?;
        ep.broadcast(KeygenMsg::CalibShare(my_sig_share.clone()))
            .map_err(net_err)?;
        let mut product = my_sig_share;
        for payload in gather(ep)? {
            let KeygenMsg::CalibShare(v) = payload else {
                return Err(protocol_err("expected CalibShare"));
            };
            product = product.mulm(&v, &modulus);
        }
        let mut correction = None;
        let mut candidate_sig = product;
        // One shared Montgomery context for the whole search: the old
        // per-candidate `modpow` rebuilt the context (two divisions) on
        // every r. The check itself is the batch-verification leaf
        // (`ModulusPrecomp::verify`).
        let calib = ModulusPrecomp::standalone(&modulus, &e);
        for r in 0..n as u64 {
            let found = match &calib {
                Some(mp) => mp.verify(&h, &candidate_sig, false),
                None => candidate_sig.modpow(&e, &modulus) == h,
            };
            if found {
                correction = Some(r);
                break;
            }
            candidate_sig = candidate_sig.mulm(&h, &modulus);
        }
        let Some(correction) = correction else {
            // Candidate was not a true biprime after all; restart.
            stats.biprimality_rejects += 1;
            continue;
        };

        let public = SharedPublicKey {
            public: RsaPublicKey::new(modulus, e),
            n_parties: n,
            correction,
        };
        return Ok((KeyShare::new(me, d_share, public), stats));
    }
}

/// Draws additive shares of a candidate prime until blinded distributed
/// trial division accepts the sum. Returns this party's share.
fn sample_sieved_share(
    ep: &mut Endpoint<KeygenMsg>,
    rng: &mut StdRng,
    prime_bits: usize,
    leader: bool,
    stats: &mut PartyStats,
) -> Result<Nat, CryptoError> {
    let n = ep.n();
    let primes = sieve_primes();
    loop {
        stats.sieve_draws += 1;
        // Leader's share carries the size; others are small enough that the
        // sum cannot overflow prime_bits.
        let mut share = if leader {
            &Nat::one().shl_bits(prime_bits - 1) + &random_nat(rng, prime_bits - 2)
        } else {
            let log_n = usize::BITS as usize - n.leading_zeros() as usize;
            random_nat(rng, prime_bits.saturating_sub(2 + log_n))
        };
        // Mod-4 constraints: p ≡ 3 (mod 4) overall.
        share.set_bit(0, leader);
        share.set_bit(1, leader);

        // Blinding: fresh shares of zero mod each sieve prime.
        let mut own_blind: Vec<u64> = Vec::with_capacity(primes.len());
        let mut outgoing: Vec<Vec<u64>> = vec![Vec::with_capacity(primes.len()); n];
        for &r in primes {
            let mut acc = 0u64;
            for (j, out) in outgoing.iter_mut().enumerate() {
                if j == ep.id().0 {
                    out.push(0); // placeholder, fixed below
                    continue;
                }
                let z = rng.next_u64() % r;
                out.push(z);
                acc = (acc + z) % r;
            }
            own_blind.push((r - acc) % r);
        }
        for (j, out) in outgoing.into_iter().enumerate() {
            if j != ep.id().0 {
                ep.send(PartyId(j), KeygenMsg::SieveBlind(out))
                    .map_err(net_err)?;
            }
        }
        let mut blind = own_blind;
        for payload in gather(ep)? {
            let KeygenMsg::SieveBlind(zs) = payload else {
                return Err(protocol_err("expected SieveBlind"));
            };
            for (k, &r) in primes.iter().enumerate() {
                blind[k] = (blind[k] + zs[k]) % r;
            }
        }

        // Broadcast blinded residues; everyone reconstructs Σ pᵢ mod r.
        let mut residues = Vec::with_capacity(primes.len());
        for (k, &r) in primes.iter().enumerate() {
            let mine = share.div_rem_u64(r).1;
            residues.push((mine + blind[k]) % r);
        }
        ep.broadcast(KeygenMsg::SieveResidues(residues.clone()))
            .map_err(net_err)?;
        let mut totals = residues;
        for payload in gather(ep)? {
            let KeygenMsg::SieveResidues(vs) = payload else {
                return Err(protocol_err("expected SieveResidues"));
            };
            for (k, &r) in primes.iter().enumerate() {
                totals[k] = (totals[k] + vs[k]) % r;
            }
        }
        if totals.iter().all(|&t| t != 0) {
            return Ok(share);
        }
    }
}

/// BGW multiplication: reveals `N = (Σ pᵢ)(Σ qᵢ)` while the factors stay
/// shared. Degree `t = ⌊(n-1)/2⌋` Shamir sharing; product shares have degree
/// `2t ≤ n-1` and are interpolated publicly.
fn bgw_multiply(
    ep: &mut Endpoint<KeygenMsg>,
    rng: &mut StdRng,
    p_share: &Nat,
    q_share: &Nat,
    field_p: &Nat,
) -> Result<Nat, CryptoError> {
    use crate::shamir::field::{interpolate_at_zero, share, FieldShare};
    let n = ep.n();
    let me = ep.id().0;
    let t = (n - 1) / 2;

    let my_p_shares = share(rng, &p_share.rem_nat(field_p), t, n, field_p);
    let my_q_shares = share(rng, &q_share.rem_nat(field_p), t, n, field_p);
    for j in 0..n {
        if j != me {
            ep.send(
                PartyId(j),
                KeygenMsg::BgwShare(my_p_shares[j].value.clone(), my_q_shares[j].value.clone()),
            )
            .map_err(net_err)?;
        }
    }
    let mut p_point = my_p_shares[me].value.clone();
    let mut q_point = my_q_shares[me].value.clone();
    for payload in gather(ep)? {
        let KeygenMsg::BgwShare(ps, qs) = payload else {
            return Err(protocol_err("expected BgwShare"));
        };
        p_point = p_point.addm(&ps, field_p);
        q_point = q_point.addm(&qs, field_p);
    }
    let my_product = p_point.mulm(&q_point, field_p);
    ep.broadcast(KeygenMsg::BgwProduct(my_product.clone()))
        .map_err(net_err)?;
    let mut points = vec![FieldShare {
        index: me,
        value: my_product,
    }];
    for (from, payload) in gather_with_sender(ep)? {
        let KeygenMsg::BgwProduct(v) = payload else {
            return Err(protocol_err("expected BgwProduct"));
        };
        points.push(FieldShare {
            index: from.0,
            value: v,
        });
    }
    points.sort_by_key(|s| s.index);
    Ok(interpolate_at_zero(&points, field_p))
}

/// Cheap public checks every party evaluates identically.
fn public_candidate_ok(modulus: &Nat, bits: usize) -> bool {
    if modulus.bit_len() < bits - 2 || modulus.is_even() {
        return false;
    }
    for &r in sieve_primes() {
        if modulus.div_rem_u64(r).1 == 0 {
            return false;
        }
    }
    // Reject perfect squares (prime-square moduli can fool the test).
    let s = modulus.isqrt();
    if &s.square() == modulus {
        return false;
    }
    // N must be composite: run a few deterministic-seed MR rounds. (A prime
    // N means p or q was 1 — impossible by share sizing, but cheap to rule
    // out.)
    let mut mr_rng = StdRng::seed_from_u64(0xBEEF);
    !is_probable_prime(modulus, &mut mr_rng)
}

/// Distributed biprimality test (Boneh–Franklin §3): accepts iff
/// `g^(φ(N)/4) ≡ ±1 (mod N)` for [`BIPRIMALITY_ROUNDS`] random bases with
/// Jacobi symbol 1.
fn biprimality_test(
    ep: &mut Endpoint<KeygenMsg>,
    rng: &mut StdRng,
    modulus: &Nat,
    p_share: &Nat,
    q_share: &Nat,
    leader: bool,
) -> Result<bool, CryptoError> {
    let minus_one = modulus - &Nat::one();
    for _ in 0..BIPRIMALITY_ROUNDS {
        // Leader picks g with (g/N) = 1 and broadcasts it.
        let g = if leader {
            let g = loop {
                let candidate = random_below(rng, modulus);
                if candidate < Nat::two() {
                    continue;
                }
                if jacobi(&candidate, modulus) == Jacobi::One {
                    break candidate;
                }
            };
            ep.broadcast(KeygenMsg::BiprimalityBase(g.clone()))
                .map_err(net_err)?;
            g
        } else {
            let KeygenMsg::BiprimalityBase(g) = ep.recv_from(PartyId(0)).map_err(net_err)? else {
                return Err(protocol_err("expected BiprimalityBase"));
            };
            g
        };

        // Exponents are divisible by 4 by the mod-4 share constraints.
        let exponent = if leader {
            (&(modulus + &Nat::one()) - &(p_share + q_share)).shr_bits(2)
        } else {
            (p_share + q_share).shr_bits(2)
        };
        let v = g.modpow(&exponent, modulus);
        ep.broadcast(KeygenMsg::BiprimalityV(v.clone()))
            .map_err(net_err)?;

        // Everyone reconstructs v₀ and Π_{i≥1} vᵢ identically.
        let mut v0 = if leader { v.clone() } else { Nat::zero() };
        let mut rest = if leader { Nat::one() } else { v.clone() };
        for (from, payload) in gather_with_sender(ep)? {
            let KeygenMsg::BiprimalityV(vi) = payload else {
                return Err(protocol_err("expected BiprimalityV"));
            };
            if from.0 == 0 {
                v0 = vi;
            } else {
                rest = rest.mulm(&vi, modulus);
            }
        }
        if v0 != rest && v0 != rest.mulm(&minus_one, modulus) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Applies an exponent share to a residue (shared with [`KeyShare::apply`]).
fn apply_share(d: &Int, h: &Nat, modulus: &Nat) -> Result<Nat, CryptoError> {
    if d.is_negative() {
        let inv = h.modinv(modulus).ok_or(CryptoError::NotInvertible)?;
        Ok(inv.modpow(d.magnitude(), modulus))
    } else {
        Ok(h.modpow(d.magnitude(), modulus))
    }
}

fn gather(ep: &mut Endpoint<KeygenMsg>) -> Result<Vec<KeygenMsg>, CryptoError> {
    Ok(gather_with_sender(ep)?
        .into_iter()
        .map(|(_, m)| m)
        .collect())
}

fn gather_with_sender(
    ep: &mut Endpoint<KeygenMsg>,
) -> Result<Vec<(PartyId, KeygenMsg)>, CryptoError> {
    let me = ep.id().0;
    let n = ep.n();
    let mut out = Vec::with_capacity(n - 1);
    for j in 0..n {
        if j == me {
            continue;
        }
        let payload = ep.recv_from(PartyId(j)).map_err(net_err)?;
        out.push((PartyId(j), payload));
    }
    Ok(out)
}

fn net_err(e: jaap_net::NetError) -> CryptoError {
    CryptoError::Protocol(format!("network: {e}"))
}

fn protocol_err(msg: &str) -> CryptoError {
    CryptoError::Protocol(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dealt_shares_sum_to_private_exponent() {
        let mut rng = StdRng::seed_from_u64(10);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 128, 3).expect("deal");
        assert_eq!(shares.len(), 3);
        assert_eq!(public.n_parties(), 3);
        assert_eq!(public.correction(), 0);
        // Applying all shares to h multiplies to h^d, which verifies.
        let h = fdh::encode(b"m", public.modulus());
        let mut acc = Nat::one();
        for s in &shares {
            acc = acc.mulm(&s.apply(&h).expect("apply"), public.modulus());
        }
        assert_eq!(acc.modpow(public.exponent(), public.modulus()), h);
    }

    #[test]
    fn deal_rejects_single_party() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(matches!(
            SharedRsaKey::deal(&mut rng, 128, 1),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn share_indices_are_dense() {
        let mut rng = StdRng::seed_from_u64(12);
        let (_, shares) = SharedRsaKey::deal(&mut rng, 128, 5).expect("deal");
        let idx: Vec<_> = shares.iter().map(KeyShare::index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn missing_share_breaks_signature() {
        let mut rng = StdRng::seed_from_u64(13);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 128, 3).expect("deal");
        let h = fdh::encode(b"m", public.modulus());
        let mut acc = Nat::one();
        for s in &shares[..2] {
            acc = acc.mulm(&s.apply(&h).expect("apply"), public.modulus());
        }
        assert_ne!(acc.modpow(public.exponent(), public.modulus()), h);
    }

    #[test]
    fn distributed_generation_produces_working_key() {
        let (public, shares, stats) = SharedRsaKey::generate(96, 3, 42).expect("keygen");
        assert_eq!(shares.len(), 3);
        assert!(stats.candidates_tried >= 1);
        assert!(stats.network.messages_sent > 0);
        // End-to-end: combine shares into a signature on a fresh message.
        let h = fdh::encode(b"jointly administered", public.modulus());
        let mut acc = Nat::one();
        for s in &shares {
            acc = acc.mulm(&s.apply(&h).expect("apply"), public.modulus());
        }
        let corrected = acc.mulm(
            &h.modpow(&Nat::from(public.correction()), public.modulus()),
            public.modulus(),
        );
        assert_eq!(corrected.modpow(public.exponent(), public.modulus()), h);
    }

    #[test]
    fn distributed_generation_deterministic_for_seed() {
        let (pub1, _, _) = SharedRsaKey::generate(64, 3, 7).expect("keygen");
        let (pub2, _, _) = SharedRsaKey::generate(64, 3, 7).expect("keygen");
        assert_eq!(pub1.modulus(), pub2.modulus());
        let (pub3, _, _) = SharedRsaKey::generate(64, 3, 8).expect("keygen");
        assert_ne!(pub1.modulus(), pub3.modulus());
    }

    #[test]
    fn distributed_generation_with_five_parties() {
        let (public, shares, _) = SharedRsaKey::generate(64, 5, 3).expect("keygen");
        assert_eq!(public.n_parties(), 5);
        assert_eq!(shares.len(), 5);
    }

    #[test]
    fn generate_rejects_bad_parameters() {
        assert!(matches!(
            SharedRsaKey::generate(128, 2, 0),
            Err(CryptoError::InvalidParameters(_))
        ));
        assert!(matches!(
            SharedRsaKey::generate(32, 3, 0),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn no_party_learns_the_factorization() {
        // The modulus must not share a factor with any single party's view
        // of p_share/q_share sums... what we *can* check cheaply: no single
        // exponent share is the true d (its self-signature fails).
        let (public, shares, _) = SharedRsaKey::generate(64, 3, 99).expect("keygen");
        let h = fdh::encode(b"m", public.modulus());
        for s in &shares {
            let solo = s.apply(&h).expect("apply");
            assert_ne!(
                solo.modpow(public.exponent(), public.modulus()),
                h,
                "a single share must not be a full signing key"
            );
        }
    }

    #[test]
    fn key_id_matches_rsa_key_id() {
        let mut rng = StdRng::seed_from_u64(21);
        let (public, _) = SharedRsaKey::deal(&mut rng, 128, 3).expect("deal");
        assert_eq!(public.key_id(), public.rsa().key_id());
    }

    #[test]
    fn bgw_field_prime_exceeds_modulus_range() {
        let p = bgw_field_prime(96);
        assert!(p.bit_len() >= 98);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(is_probable_prime(&p, &mut rng));
    }
}
