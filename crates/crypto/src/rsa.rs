//! Conventional RSA key pairs and signatures.
//!
//! These are the keys held by individual principals: per-user signing keys,
//! per-domain CA keys, and the Case I conventional coalition-AA key of §2.2.
//! Signatures use the shared full-domain-hash encoding from [`crate::fdh`]
//! so they verify identically to joint/threshold signatures.

use jaap_bigint::{random_prime, Nat};
use rand::RngCore;

use crate::fdh;
use crate::sha256::{hex, Sha256};
use crate::CryptoError;

/// The standard public exponent.
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// An RSA public key: modulus `N` and exponent `e`.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RsaPublicKey {
    n: Nat,
    e: Nat,
    /// Memoized [`RsaPublicKey::key_id`]. Every certificate idealization
    /// names both the issuer and subject keys, so without the memo the
    /// hot path re-hashes and re-hexes the modulus on every decision.
    /// Identity (`PartialEq`/`Hash`) and serialization ignore it.
    #[cfg_attr(feature = "serde", serde(skip))]
    id: std::sync::OnceLock<String>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl std::hash::Hash for RsaPublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.e.hash(state);
    }
}

impl RsaPublicKey {
    /// Creates a public key from raw components.
    #[must_use]
    pub fn new(n: Nat, e: Nat) -> Self {
        RsaPublicKey {
            n,
            e,
            id: std::sync::OnceLock::new(),
        }
    }

    /// The modulus `N`.
    #[must_use]
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// The public exponent `e`.
    #[must_use]
    pub fn exponent(&self) -> &Nat {
        &self.e
    }

    /// The key id: `SHA-256(N || e)` in hex, exactly the "hash of N and the
    /// public exponent e" the paper uses to identify a shared key (§3.2).
    /// Computed once per key and memoized — idealization names keys by id
    /// on every certificate, so this sits on the decision hot path.
    #[must_use]
    pub fn key_id(&self) -> String {
        self.id
            .get_or_init(|| {
                let mut h = Sha256::new();
                h.update(&self.n.to_bytes_be());
                h.update(b"|");
                h.update(&self.e.to_bytes_be());
                hex(&h.finalize())
            })
            .clone()
    }

    /// Verifies `sig` over `msg`: checks `sig^e mod N == FDH(msg)`.
    #[must_use]
    pub fn verify(&self, msg: &[u8], sig: &RsaSignature) -> bool {
        if sig.s.is_zero() || sig.s >= self.n {
            return false;
        }
        sig.s.modpow(&self.e, &self.n) == fdh::encode(msg, &self.n)
    }

    /// Like [`RsaPublicKey::verify`], but through a shared
    /// [`crate::precomp::VerifierPrecomp`] when one is supplied: the
    /// Montgomery context for `N` is built once and reused, and with
    /// `recurring = true` the signature residue additionally gets (or
    /// reuses) a fixed-base ladder — the right setting for standing
    /// certificates that are re-presented on every request. Accepts and
    /// rejects exactly the same `(msg, sig)` pairs as the plain path.
    #[must_use]
    pub fn verify_with(
        &self,
        precomp: Option<&crate::precomp::VerifierPrecomp>,
        recurring: bool,
        msg: &[u8],
        sig: &RsaSignature,
    ) -> bool {
        match precomp.and_then(|p| p.for_key(&self.n, &self.e)) {
            Some(mp) => {
                if sig.s.is_zero() || sig.s >= self.n {
                    return false;
                }
                mp.verify(&fdh::encode(msg, &self.n), &sig.s, recurring)
            }
            None => self.verify(msg, sig),
        }
    }

    /// The `(FDH digest, signature residue)` pair a batch verifier checks
    /// for this key: [`crate::batch::verify_batch`] accepts item `i` iff
    /// `sig^e ≡ h (mod N)` with `sig` in range — the same predicate
    /// [`RsaPublicKey::verify`] decides.
    #[must_use]
    pub fn batch_item(&self, msg: &[u8], sig: &RsaSignature) -> crate::batch::BatchItem {
        crate::batch::BatchItem {
            h: fdh::encode(msg, &self.n),
            sig: sig.s.clone(),
        }
    }
}

/// An RSA signature (a residue mod `N`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RsaSignature {
    pub(crate) s: Nat,
}

impl RsaSignature {
    /// Raw signature value.
    #[must_use]
    pub fn value(&self) -> &Nat {
        &self.s
    }

    /// Builds a signature from a raw residue (used by joint combination).
    #[must_use]
    pub fn from_value(s: Nat) -> Self {
        RsaSignature { s }
    }
}

/// An RSA ciphertext: a sequence of residues, one per plaintext block.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RsaCiphertext {
    blocks: Vec<Nat>,
}

impl RsaCiphertext {
    /// Number of encrypted blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

impl RsaPublicKey {
    /// Encrypts `msg` block-wise: each block is padded with a random prefix
    /// (so equal plaintexts yield different ciphertexts) and raised to `e`.
    ///
    /// This backs the paper's Figure 2(d) response `{Object O}_{K_u3}`. It
    /// is a simulation-grade scheme (random-prefix padding, not OAEP).
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] if the modulus is too small to
    /// carry any payload per block.
    pub fn encrypt(&self, rng: &mut dyn RngCore, msg: &[u8]) -> Result<RsaCiphertext, CryptoError> {
        let modulus_bytes = (self.n.bit_len() - 1) / 8;
        // Layout per block: 8 random bytes || 1 length byte || payload.
        if modulus_bytes < 10 {
            return Err(CryptoError::InvalidParameters(
                "modulus too small for encryption".into(),
            ));
        }
        // The length field is one byte, so a block can carry at most 255
        // payload bytes no matter how wide the modulus is (moduli ≥ ~2121
        // bits would otherwise overflow the `u8` length and panic).
        let payload_per_block = (modulus_bytes - 9).min(255);
        let mut blocks = Vec::new();
        let chunks: Vec<&[u8]> = if msg.is_empty() {
            vec![&[][..]]
        } else {
            msg.chunks(payload_per_block).collect()
        };
        for chunk in chunks {
            // Fixed-width layout so decryption can re-align after integer
            // encoding strips leading zeros:
            // prefix(8) || len(1) || payload || zero fill.
            let mut block = Vec::with_capacity(modulus_bytes);
            let mut prefix = [0u8; 8];
            rng.fill_bytes(&mut prefix);
            block.extend_from_slice(&prefix);
            block.push(u8::try_from(chunk.len()).expect("block fits in u8"));
            block.extend_from_slice(chunk);
            block.resize(modulus_bytes, 0);
            let m = Nat::from_bytes_be(&block);
            blocks.push(m.modpow(&self.e, &self.n));
        }
        Ok(RsaCiphertext { blocks })
    }
}

impl RsaKeyPair {
    /// Decrypts a ciphertext produced by [`RsaPublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] if a block's padding is
    /// malformed (wrong key or corrupted ciphertext).
    pub fn decrypt(&self, ct: &RsaCiphertext) -> Result<Vec<u8>, CryptoError> {
        let modulus_bytes = (self.public.n.bit_len() - 1) / 8;
        let mut out = Vec::new();
        for block in &ct.blocks {
            let mut m = self.private_op(block);
            // CRT self-check: re-encrypting with the (small) public
            // exponent must reproduce the block; on a fault, recompute via
            // the full-width exponent.
            if self.crt.is_some()
                && m.modpow(&self.public.e, &self.public.n) != block.rem_nat(&self.public.n)
            {
                m = self.private_op_classic(block);
            }
            let bytes = m.to_bytes_be();
            // Leading zero bytes of the random prefix are stripped by the
            // integer encoding; re-pad to the block layout.
            if bytes.len() > modulus_bytes {
                return Err(CryptoError::InvalidParameters(
                    "ciphertext block out of range".into(),
                ));
            }
            let mut padded = vec![0u8; modulus_bytes - bytes.len()];
            padded.extend_from_slice(&bytes);
            let len = usize::from(padded[8]);
            if 9 + len > padded.len() {
                return Err(CryptoError::InvalidParameters(
                    "malformed padding (wrong key?)".into(),
                ));
            }
            out.extend_from_slice(&padded[9..9 + len]);
        }
        Ok(out)
    }
}

/// Precomputed Chinese-remainder parameters for the private operation:
/// two half-width exponentiations mod `p` and `q` replace one full-width
/// exponentiation mod `N` (roughly a 3–4× speedup at RSA sizes).
#[derive(Debug, Clone)]
struct CrtParams {
    /// `d mod (p-1)`.
    dp: Nat,
    /// `d mod (q-1)`.
    dq: Nat,
    /// `q⁻¹ mod p` (Garner's recombination coefficient).
    qinv: Nat,
}

/// An RSA key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: Nat,
    p: Nat,
    q: Nat,
    /// CRT parameters, derived at keygen; `None` only if derivation failed
    /// (never for honestly generated p ≠ q), in which case every private
    /// operation uses the full-width exponent.
    crt: Option<CrtParams>,
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of (about) `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameters`] if `bits < 32`.
    pub fn generate(rng: &mut dyn RngCore, bits: usize) -> Result<Self, CryptoError> {
        if bits < 32 {
            return Err(CryptoError::InvalidParameters(
                "modulus must be at least 32 bits".into(),
            ));
        }
        let e = Nat::from(PUBLIC_EXPONENT);
        loop {
            let p = random_prime(rng, bits / 2);
            let q = random_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let phi = &(&p - &Nat::one()) * &(&q - &Nat::one());
            let Some(d) = e.modinv(&phi) else {
                continue; // gcd(e, phi) != 1; rare, retry
            };
            let crt = CrtParams::derive(&d, &p, &q);
            return Ok(RsaKeyPair {
                public: RsaPublicKey::new(n, e),
                d,
                p,
                q,
                crt,
            });
        }
    }

    /// Assembles a key pair from two known primes (skipping the prime
    /// search). This is how tests exercise RSA sizes whose prime search
    /// would be prohibitively slow (e.g. 4096-bit moduli).
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] if `p == q` or
    /// `gcd(e, (p-1)(q-1)) != 1`.
    pub fn from_primes(p: Nat, q: Nat) -> Result<Self, CryptoError> {
        if p == q || p.is_zero() || q.is_zero() || p.is_one() || q.is_one() {
            return Err(CryptoError::InvalidParameters(
                "need two distinct primes > 1".into(),
            ));
        }
        let e = Nat::from(PUBLIC_EXPONENT);
        let n = &p * &q;
        let phi = &(&p - &Nat::one()) * &(&q - &Nat::one());
        let d = e.modinv(&phi).ok_or_else(|| {
            CryptoError::InvalidParameters("public exponent not invertible mod phi".into())
        })?;
        let crt = CrtParams::derive(&d, &p, &q);
        Ok(RsaKeyPair {
            public: RsaPublicKey::new(n, e),
            d,
            p,
            q,
            crt,
        })
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent (exposed for dealer-based share splitting).
    #[must_use]
    pub fn private_exponent(&self) -> &Nat {
        &self.d
    }

    /// Euler's totient `φ(N) = (p-1)(q-1)`.
    #[must_use]
    pub fn phi(&self) -> Nat {
        &(&self.p - &Nat::one()) * &(&self.q - &Nat::one())
    }

    /// The prime factors `(p, q)` (needed by the lockbox attack simulation).
    #[must_use]
    pub fn factors(&self) -> (&Nat, &Nat) {
        (&self.p, &self.q)
    }

    /// Whether the fast CRT private path is available.
    #[must_use]
    pub fn has_crt(&self) -> bool {
        self.crt.is_some()
    }

    /// The private operation `c^d mod N` through the CRT fast path when
    /// available: `m₁ = c^{dp} mod p`, `m₂ = c^{dq} mod q`, recombined by
    /// Garner's formula `m₂ + q·(qinv·(m₁ - m₂) mod p)`.
    fn private_op(&self, c: &Nat) -> Nat {
        let Some(crt) = &self.crt else {
            return self.private_op_classic(c);
        };
        let m1 = c.modpow(&crt.dp, &self.p);
        let m2 = c.modpow(&crt.dq, &self.q);
        let h = m1.subm(&m2, &self.p).mulm(&crt.qinv, &self.p);
        &m2 + &(&h * &self.q)
    }

    /// The private operation via one full-width exponentiation with `d`
    /// (the non-CRT reference path; also the fallback when the CRT result
    /// fails its self-check).
    #[must_use]
    pub fn private_op_classic(&self, c: &Nat) -> Nat {
        c.modpow(&self.d, &self.public.n)
    }

    /// Signs `msg`: `FDH(msg)^d mod N`.
    ///
    /// Uses the CRT fast path, then verifies the result against the public
    /// key; on a self-check failure (faulted or corrupted CRT parameters)
    /// it recomputes once with the full-width exponent before giving up —
    /// a CRT fault must never leak a bogus signature (Boneh–DeMillo–Lipton).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::SelfCheckFailed`] if no path produces a
    /// verifying signature (indicates key corruption).
    pub fn sign(&self, msg: &[u8]) -> Result<RsaSignature, CryptoError> {
        let h = fdh::encode(msg, &self.public.n);
        let sig = RsaSignature {
            s: self.private_op(&h),
        };
        if self.public.verify(msg, &sig) {
            return Ok(sig);
        }
        if self.crt.is_some() {
            let sig = RsaSignature {
                s: self.private_op_classic(&h),
            };
            if self.public.verify(msg, &sig) {
                return Ok(sig);
            }
        }
        Err(CryptoError::SelfCheckFailed)
    }

    /// Signs `msg` through the non-CRT path only (reference/ablation; the
    /// E14 bench and the equivalence proptests compare against this).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::SelfCheckFailed`] if the produced signature
    /// does not verify.
    pub fn sign_classic(&self, msg: &[u8]) -> Result<RsaSignature, CryptoError> {
        let h = fdh::encode(msg, &self.public.n);
        let sig = RsaSignature {
            s: self.private_op_classic(&h),
        };
        if self.public.verify(msg, &sig) {
            Ok(sig)
        } else {
            Err(CryptoError::SelfCheckFailed)
        }
    }
}

impl CrtParams {
    /// Derives `(dp, dq, qinv)` from the private exponent and factors.
    fn derive(d: &Nat, p: &Nat, q: &Nat) -> Option<Self> {
        let dp = d.rem_nat(&(p - &Nat::one()));
        let dq = d.rem_nat(&(q - &Nat::one()));
        let qinv = q.modinv(p)?;
        Some(CrtParams { dp, dq, qinv })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize, seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(&mut StdRng::seed_from_u64(seed), bits).expect("keygen")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(256, 1);
        let sig = kp.sign(b"hello coalition").expect("sign");
        assert!(kp.public().verify(b"hello coalition", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = keypair(256, 2);
        let sig = kp.sign(b"msg-a").expect("sign");
        assert!(!kp.public().verify(b"msg-b", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = keypair(256, 3);
        let kp2 = keypair(256, 4);
        let sig = kp1.sign(b"msg").expect("sign");
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let kp = keypair(256, 5);
        let sig = kp.sign(b"msg").expect("sign");
        let tampered = RsaSignature::from_value(sig.value() + &Nat::one());
        assert!(!kp.public().verify(b"msg", &tampered));
    }

    #[test]
    fn verify_rejects_out_of_range_values() {
        let kp = keypair(256, 6);
        assert!(!kp
            .public()
            .verify(b"m", &RsaSignature::from_value(Nat::zero())));
        let too_big = RsaSignature::from_value(kp.public().modulus().clone());
        assert!(!kp.public().verify(b"m", &too_big));
    }

    #[test]
    fn modulus_size_approximately_requested() {
        let kp = keypair(256, 7);
        let bits = kp.public().modulus().bit_len();
        assert!((255..=256).contains(&bits), "got {bits}");
    }

    #[test]
    fn phi_and_factors_consistent() {
        let kp = keypair(128, 8);
        let (p, q) = kp.factors();
        assert_eq!(&(p * q), kp.public().modulus());
        let phi = kp.phi();
        // e*d = 1 mod phi
        let ed = kp.public().exponent() * kp.private_exponent();
        assert!(ed.rem_nat(&phi).is_one());
    }

    #[test]
    fn key_id_stable_and_distinct() {
        let kp1 = keypair(128, 9);
        let kp2 = keypair(128, 10);
        assert_eq!(kp1.public().key_id(), kp1.public().key_id());
        assert_ne!(kp1.public().key_id(), kp2.public().key_id());
        assert_eq!(kp1.public().key_id().len(), 64);
    }

    #[test]
    fn tiny_modulus_rejected() {
        let err = RsaKeyPair::generate(&mut StdRng::seed_from_u64(0), 16).unwrap_err();
        assert!(matches!(err, CryptoError::InvalidParameters(_)));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair(256, 20);
        let mut rng = StdRng::seed_from_u64(21);
        for msg in [
            &b""[..],
            b"x",
            b"the gene sequence for the disease",
            &[0u8; 200],
        ] {
            let ct = kp.public().encrypt(&mut rng, msg).expect("encrypt");
            assert_eq!(kp.decrypt(&ct).expect("decrypt"), msg);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = keypair(256, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let a = kp.public().encrypt(&mut rng, b"same").expect("a");
        let b = kp.public().encrypt(&mut rng, b"same").expect("b");
        assert_ne!(a, b, "random prefixes must differ");
        assert_eq!(kp.decrypt(&a).expect("a"), kp.decrypt(&b).expect("b"));
    }

    #[test]
    fn decrypt_with_wrong_key_fails_or_garbles() {
        let kp1 = keypair(256, 24);
        let kp2 = keypair(256, 25);
        let mut rng = StdRng::seed_from_u64(26);
        let ct = kp1
            .public()
            .encrypt(&mut rng, b"secret data")
            .expect("encrypt");
        match kp2.decrypt(&ct) {
            Err(_) => {}
            Ok(garbled) => assert_ne!(garbled, b"secret data"),
        }
    }

    #[test]
    fn long_messages_span_blocks() {
        let kp = keypair(192, 27);
        let mut rng = StdRng::seed_from_u64(28);
        let msg = vec![0xabu8; 300];
        let ct = kp.public().encrypt(&mut rng, &msg).expect("encrypt");
        assert!(ct.block_count() > 1);
        assert_eq!(kp.decrypt(&ct).expect("decrypt"), msg);
    }

    #[test]
    fn wide_modulus_encrypt_caps_block_payload() {
        // Regression: with a 4096-bit modulus, `modulus_bytes - 9` = 502
        // used to overflow the one-byte length field and panic in
        // `u8::try_from`. Blocks are now capped at 255 payload bytes.
        // Fixed 2048-bit primes — a 4096-bit prime search is far too slow.
        let p: Nat = P_2048.parse().expect("p");
        let q: Nat = Q_2048.parse().expect("q");
        let kp = RsaKeyPair::from_primes(p, q).expect("from_primes");
        assert!(kp.public().modulus().bit_len() >= 4095);
        let mut rng = StdRng::seed_from_u64(40);
        for msg in [&b"short"[..], &[0x5au8; 700]] {
            let ct = kp.public().encrypt(&mut rng, msg).expect("encrypt");
            assert_eq!(kp.decrypt(&ct).expect("decrypt"), msg);
        }
        // 700 bytes at ≤255 per block needs at least 3 blocks.
        let ct = kp.public().encrypt(&mut rng, &[1u8; 700]).expect("encrypt");
        assert!(ct.block_count() >= 3);
    }

    #[test]
    fn from_primes_rejects_degenerate_inputs() {
        let p = Nat::from(65_539u64); // prime
        assert!(RsaKeyPair::from_primes(p.clone(), p.clone()).is_err());
        assert!(RsaKeyPair::from_primes(p, Nat::one()).is_err());
    }

    const P_2048: &str = "27103645358824024953839486658618473063979572936846093152521807758073520106861345748273914845707917892562930489258573312718015930073323481103957782149481134752661315998340710658490409342266046380321244654677891218645127674020759094187220008345964970833710882310258608087433739380993185206305190802517055071302282435096650748604647965412106278325978650086922553971234347167279063557652461492444797108190271673076215376840230687304387501224522116717808228813724412354506706732839502562431193404124237699647976334127139081174612487907462811309564321341044575708084789343261022567088760544373096687776333536360633614267339";

    const Q_2048: &str = "19392149477145514375889813178220910675003966902213025233556788081673026864784025530577589765174335811871629927469820240941746765461892289819458120348684768345797726261208553586239002194396952521401303571573017062321138725027054112134817070243312256062283676997332906737378885195628861793279543224013614051313095656871600599980412045123841161314848806763384493429604486251306157779349842402256654854051199975641040681239488072902673921439097980882486823509807931784155986087420843909781823455126131212575594639196074188625477884970862596961885038830371770048284847154874553359959891249558811042777354021570266076322679";

    #[test]
    fn deterministic_for_seed() {
        let a = keypair(128, 11);
        let b = keypair(128, 11);
        assert_eq!(a.public(), b.public());
    }

    #[test]
    fn crt_params_derived_at_keygen() {
        let kp = keypair(256, 30);
        assert!(kp.has_crt());
    }

    #[test]
    fn crt_private_op_matches_classic_on_residues() {
        let kp = keypair(256, 31);
        for v in [0u64, 1, 2, 65_537, u64::MAX] {
            let c = Nat::from(v);
            assert_eq!(kp.private_op(&c), kp.private_op_classic(&c));
        }
        // A residue near the modulus.
        let c = kp.public().modulus() - &Nat::two();
        assert_eq!(kp.private_op(&c), kp.private_op_classic(&c));
    }

    mod crt_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// CRT and non-CRT signatures agree byte for byte across keys
            /// and messages.
            #[test]
            fn crt_signature_matches_classic(
                seed in 0u64..6,
                msg in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                let kp = keypair(192, 3100 + seed);
                prop_assert!(kp.has_crt());
                let crt = kp.sign(&msg).expect("crt sign");
                let classic = kp.sign_classic(&msg).expect("classic sign");
                prop_assert_eq!(crt.value(), classic.value());
                prop_assert_eq!(
                    crt.value().to_bytes_be(),
                    classic.value().to_bytes_be()
                );
            }

            /// The raw private operation agrees on arbitrary ciphertext
            /// residues, so decryption is CRT-invariant too.
            #[test]
            fn crt_private_op_matches_classic(
                seed in 0u64..6,
                limbs in proptest::collection::vec(any::<u64>(), 1..6),
            ) {
                let kp = keypair(192, 3200 + seed);
                let c = Nat::from_limbs(limbs).rem_nat(kp.public().modulus());
                prop_assert_eq!(kp.private_op(&c), kp.private_op_classic(&c));
            }
        }
    }
}
