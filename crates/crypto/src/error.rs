//! Crypto error type.

use core::fmt;

/// Errors surfaced by key generation and signing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Parameters out of range (too few parties, modulus too small, ...).
    InvalidParameters(String),
    /// A multi-party protocol failed (network error, inconsistent views).
    Protocol(String),
    /// The message maps to a residue not invertible mod N (vanishing
    /// probability for honest inputs; would reveal a factor of N).
    NotInvertible,
    /// A produced signature failed self-verification.
    SelfCheckFailed,
    /// A share set cannot be combined (wrong count, duplicate indices, ...).
    BadShares(String),
    /// A signing session exhausted its retries without assembling a quorum:
    /// only `responsive` of the `needed` signers (requestor included)
    /// contributed a share.
    QuorumUnreachable {
        /// Distinct signers that contributed before the session gave up.
        responsive: usize,
        /// Quorum size the session needed (`m`, or `n` for compound keys).
        needed: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            CryptoError::Protocol(msg) => write!(f, "protocol failure: {msg}"),
            CryptoError::NotInvertible => write!(f, "message residue not invertible modulo N"),
            CryptoError::SelfCheckFailed => write!(f, "signature failed self-verification"),
            CryptoError::BadShares(msg) => write!(f, "bad share set: {msg}"),
            CryptoError::QuorumUnreachable { responsive, needed } => write!(
                f,
                "quorum unreachable: only {responsive} of {needed} required signers responded"
            ),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = CryptoError::InvalidParameters("n must be >= 2".into());
        assert_eq!(e.to_string(), "invalid parameters: n must be >= 2");
        assert!(CryptoError::SelfCheckFailed
            .to_string()
            .starts_with("signature"));
    }

    #[test]
    fn quorum_unreachable_reports_counts() {
        let e = CryptoError::QuorumUnreachable {
            responsive: 2,
            needed: 3,
        };
        assert_eq!(
            e.to_string(),
            "quorum unreachable: only 2 of 3 required signers responded"
        );
    }
}
