//! Collusion analysis: what a coalition of compromised domains can do with
//! the shares they pool (paper §2.2 Case II, §3.1, §6).
//!
//! The executable claims:
//!
//! * **Additive n-of-n shares**: any *proper* subset of shares yields no
//!   signing power ([`collude_additive`] returns
//!   [`CollusionOutcome::Nothing`]); all `n` shares reconstruct the signing
//!   exponent. "For insider attacks to succeed, a domain would have to
//!   compromise all other member domains."
//! * **m-of-n threshold shares**: `m` or more shares reconstruct; fewer do
//!   not ([`collude_threshold`]).

use jaap_bigint::{Int, Nat};

use crate::fdh;
use crate::shamir::integer;
use crate::shared::{KeyShare, SharedPublicKey};
use crate::threshold::{ThresholdPublic, ThresholdShare};

/// What a set of colluding parties recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollusionOutcome {
    /// Full signing power: an exponent `D` with `(H^D)^e ≡ H (mod N)` —
    /// functionally equivalent to the private key.
    FullKey(Int),
    /// Nothing useful: the pooled shares do not determine the key.
    Nothing,
}

impl CollusionOutcome {
    /// `true` if the collusion succeeded.
    #[must_use]
    pub fn is_compromised(&self) -> bool {
        matches!(self, CollusionOutcome::FullKey(_))
    }
}

/// Attempts key recovery from a set of additive [`KeyShare`]s.
///
/// Succeeds iff *all* `n` shares are present: the signing exponent is
/// `Σ dᵢ + r`. The attempt is validated by test-signing; a proper subset is
/// reported as [`CollusionOutcome::Nothing`] (any value of the missing share
/// is consistent with the observed ones, so the subset carries no
/// information about `d`).
#[must_use]
pub fn collude_additive(public: &SharedPublicKey, pooled: &[&KeyShare]) -> CollusionOutcome {
    let n = public.n_parties();
    let mut seen = vec![false; n];
    for s in pooled {
        if s.index() < n {
            seen[s.index()] = true;
        }
    }
    if seen.iter().filter(|&&b| b).count() < n {
        return CollusionOutcome::Nothing;
    }
    let mut d = pooled
        .iter()
        .fold(Int::zero(), |acc, s| &acc + s.exponent_share());
    d = &d + &Int::from(public.correction());
    if exponent_signs(&d, public.modulus(), public.exponent()) {
        CollusionOutcome::FullKey(d)
    } else {
        CollusionOutcome::Nothing
    }
}

/// Attempts key recovery from pooled threshold shares.
///
/// Succeeds iff at least `m` distinct shares are pooled: Lagrange
/// interpolation over the integers recovers `Δ²·(d − r)`; combined with the
/// public `Δ²`, `r` and `e`, that is full signing power (we return the
/// equivalent exponent `Δ²·d` together with validation, matching what
/// [`crate::threshold::combine`] exploits).
#[must_use]
pub fn collude_threshold(public: &ThresholdPublic, pooled: &[&ThresholdShare]) -> CollusionOutcome {
    let mut unique: Vec<&ThresholdShare> = Vec::new();
    for s in pooled {
        if !unique.iter().any(|u| u.index == s.index) {
            unique.push(s);
        }
    }
    if unique.len() < public.threshold() {
        return CollusionOutcome::Nothing;
    }
    let subset: Vec<integer::IntShare> = unique
        .iter()
        .take(public.threshold())
        .map(|s| integer::IntShare {
            index: s.index,
            value: s.value().clone(),
        })
        .collect();
    let delta2_d = integer::reconstruct_delta2_secret(&subset, public.parties());
    // Validate: H^{Δ²·d_rec} must equal (valid sig)^{Δ²}; cheaper: check that
    // using delta2_d as an exponent produces H^{Δ²} under e.
    let modulus = public.rsa().modulus();
    let h = fdh::encode(b"jaap-collusion-probe", modulus);
    let delta = integer::delta(public.parties());
    let delta2 = &delta * &delta;
    let probe = apply(&delta2_d, &h, modulus);
    let expect = h.modpow(&delta2, modulus);
    if probe.modpow(public.rsa().exponent(), modulus) == expect {
        CollusionOutcome::FullKey(delta2_d)
    } else {
        CollusionOutcome::Nothing
    }
}

/// Counts how many domains an attacker must compromise for full key
/// recovery, per scheme — the quantitative core of experiment E7.
#[must_use]
pub fn domains_to_compromise(n: usize, threshold: Option<usize>) -> usize {
    threshold.unwrap_or(n)
}

fn exponent_signs(d: &Int, modulus: &Nat, e: &Nat) -> bool {
    let h = fdh::encode(b"jaap-collusion-probe", modulus);
    let sig = apply(d, &h, modulus);
    sig.modpow(e, modulus) == h
}

fn apply(exp: &Int, base: &Nat, modulus: &Nat) -> Nat {
    if exp.is_negative() {
        let inv = base.modinv(modulus).expect("probe residue invertible");
        inv.modpow(exp.magnitude(), modulus)
    } else {
        base.modpow(exp.magnitude(), modulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use crate::shared::SharedRsaKey;
    use crate::threshold::ThresholdKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn additive_requires_all_parties() {
        let mut rng = StdRng::seed_from_u64(1);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let all: Vec<&KeyShare> = shares.iter().collect();
        assert!(collude_additive(&public, &all).is_compromised());
        for leave_out in 0..3 {
            let subset: Vec<&KeyShare> = shares
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != leave_out)
                .map(|(_, s)| s)
                .collect();
            assert_eq!(
                collude_additive(&public, &subset),
                CollusionOutcome::Nothing
            );
        }
    }

    #[test]
    fn additive_duplicates_do_not_help() {
        let mut rng = StdRng::seed_from_u64(2);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let dup = vec![&shares[0], &shares[0], &shares[1]];
        assert_eq!(collude_additive(&public, &dup), CollusionOutcome::Nothing);
    }

    #[test]
    fn threshold_requires_m_parties() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
        let (public, shares) = ThresholdKey::deal(&mut rng, &kp, 3, 5).expect("deal");
        let two: Vec<&ThresholdShare> = shares[..2].iter().collect();
        assert_eq!(collude_threshold(&public, &two), CollusionOutcome::Nothing);
        let three: Vec<&ThresholdShare> = shares[1..4].iter().collect();
        assert!(collude_threshold(&public, &three).is_compromised());
        let all: Vec<&ThresholdShare> = shares.iter().collect();
        assert!(collude_threshold(&public, &all).is_compromised());
    }

    #[test]
    fn threshold_duplicate_shares_do_not_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
        let (public, shares) = ThresholdKey::deal(&mut rng, &kp, 3, 5).expect("deal");
        let dup = vec![&shares[0], &shares[0], &shares[1]];
        assert_eq!(collude_threshold(&public, &dup), CollusionOutcome::Nothing);
    }

    #[test]
    fn recovered_additive_exponent_actually_signs() {
        let mut rng = StdRng::seed_from_u64(5);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let all: Vec<&KeyShare> = shares.iter().collect();
        let CollusionOutcome::FullKey(d) = collude_additive(&public, &all) else {
            panic!("expected full key");
        };
        let h = fdh::encode(b"attacker message", public.modulus());
        let sig = apply(&d, &h, public.modulus());
        assert_eq!(sig.modpow(public.exponent(), public.modulus()), h);
    }

    #[test]
    fn compromise_count_matches_paper_claims() {
        // Case II n-of-n: all n domains must fall.
        assert_eq!(domains_to_compromise(3, None), 3);
        assert_eq!(domains_to_compromise(7, None), 7);
        // m-of-n trades availability for a lower compromise bar.
        assert_eq!(domains_to_compromise(7, Some(4)), 4);
    }

    #[test]
    fn bf_generated_shares_same_properties() {
        let (public, shares, _) = SharedRsaKey::generate(64, 3, 77).expect("keygen");
        let all: Vec<&KeyShare> = shares.iter().collect();
        assert!(collude_additive(&public, &all).is_compromised());
        let two: Vec<&KeyShare> = shares[..2].iter().collect();
        assert_eq!(collude_additive(&public, &two), CollusionOutcome::Nothing);
    }
}
