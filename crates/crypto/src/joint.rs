//! The joint signature protocol of §3.2.
//!
//! > "The joint signature algorithm involves the requestor (one of the
//! > domains) sending a message to all the co-signers (the remaining member
//! > domains) with the message M to be signed and a key ID comprising the
//! > hash of N and the public exponent e. Each of the co-signers then apply
//! > their corresponding private key shares dᵢ to compute Sᵢ = M^dᵢ mod N
//! > and send the computations back to the requestor. The requestor then
//! > computes the message signature S = Π Sᵢ mod N."
//!
//! [`sign_over_network`] runs exactly that exchange on a simulated network;
//! [`sign_locally`] performs the same combination in-process for callers
//! that already hold all the shares (benches, the dealer fast path).

use jaap_bigint::Nat;
use jaap_net::{Endpoint, FaultPlan, Network, NetworkStats, PartyId};

use crate::batch;
use crate::fdh;
use crate::precomp::ModulusPrecomp;
use crate::rsa::RsaSignature;
use crate::shared::{KeyShare, SharedPublicKey};
use crate::CryptoError;

/// One co-signer's contribution `Sᵢ = M^{dᵢ} mod N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureShare {
    /// The contributing party.
    pub index: usize,
    /// The share value.
    pub value: Nat,
}

/// Computes this party's signature share over `msg`.
///
/// # Errors
///
/// Propagates [`KeyShare::sign_share`] errors.
pub fn produce_share(share: &KeyShare, msg: &[u8]) -> Result<SignatureShare, CryptoError> {
    Ok(SignatureShare {
        index: share.index(),
        value: share.sign_share(msg)?,
    })
}

/// Combines `n` signature shares into a verified joint signature.
///
/// # Errors
///
/// * [`CryptoError::BadShares`] unless exactly `n` distinct-index shares are
///   supplied.
/// * [`CryptoError::SelfCheckFailed`] if the combined value does not verify
///   (some share was wrong).
pub fn combine(
    public: &SharedPublicKey,
    msg: &[u8],
    shares: &[SignatureShare],
) -> Result<RsaSignature, CryptoError> {
    let n = public.n_parties();
    if shares.len() != n {
        return Err(CryptoError::BadShares(format!(
            "joint signatures need all {n} shares, got {}",
            shares.len()
        )));
    }
    let mut seen = vec![false; n];
    for s in shares {
        if s.index >= n || seen[s.index] {
            return Err(CryptoError::BadShares(format!(
                "invalid or duplicate share index {}",
                s.index
            )));
        }
        seen[s.index] = true;
    }
    let modulus = public.modulus();
    let h = fdh::encode(msg, modulus);
    let correction = Nat::from(public.correction());
    let Some(mp) = ModulusPrecomp::standalone(modulus, public.exponent()) else {
        // Outside the Montgomery domain (never for an RSA modulus):
        // reference mulm chain plus a plain verify.
        let mut acc = Nat::one();
        for s in shares {
            acc = acc.mulm(&s.value, modulus);
        }
        acc = acc.mulm(&h.modpow(&correction, modulus), modulus);
        let sig = RsaSignature::from_value(acc);
        return if public.verify(msg, &sig) {
            Ok(sig)
        } else {
            Err(CryptoError::SelfCheckFailed)
        };
    };
    // S = Π Sᵢ · h^correction in one Straus multi-exponentiation (one
    // shared squaring chain instead of a mulm division per share).
    let one = Nat::one();
    let mut pairs: Vec<(&Nat, &Nat)> = shares.iter().map(|s| (&s.value, &one)).collect();
    if !correction.is_zero() {
        pairs.push((&h, &correction));
    }
    let sig = RsaSignature::from_value(mp.context().multi_modpow(&pairs));
    // Self-check through the batch-verification machinery (a one-item
    // batch is the exact serial check, minus a redundant context build
    // and FDH re-encode). A failure — any corrupt share — must surface
    // as SelfCheckFailed, never a panic.
    let checked = batch::verify_batch(
        &mp,
        &[batch::BatchItem {
            h,
            sig: sig.value().clone(),
        }],
        0,
        false,
    );
    if checked.results == [true] {
        Ok(sig)
    } else {
        Err(CryptoError::SelfCheckFailed)
    }
}

/// Signs with all shares in-process (no network).
///
/// # Errors
///
/// Propagates [`produce_share`] and [`combine`] errors.
pub fn sign_locally(
    public: &SharedPublicKey,
    shares: &[KeyShare],
    msg: &[u8],
) -> Result<RsaSignature, CryptoError> {
    let sig_shares = shares
        .iter()
        .map(|s| produce_share(s, msg))
        .collect::<Result<Vec<_>, _>>()?;
    combine(public, msg, &sig_shares)
}

/// Wire messages of the joint signature protocol.
#[derive(Debug, Clone)]
pub enum JointMsg {
    /// Requestor → co-signers: message to sign plus the key id.
    Request {
        /// Message bytes.
        msg: Vec<u8>,
        /// Hash of `N` and `e` identifying the shared key (§3.2).
        key_id: String,
    },
    /// Co-signer → requestor: `Sᵢ`.
    Share(Nat),
    /// Co-signer → requestor: refusal (unknown key id).
    Refuse(String),
}

/// Runs the §3.2 joint signature protocol over a simulated network.
///
/// Party `requestor` initiates; every other party co-signs. Returns the
/// signature together with the network statistics of the exchange.
///
/// This is a thin wrapper over the resilient session layer
/// ([`crate::session::SigningSession::sign_compound`]) with the default
/// [`SessionConfig`](crate::session::SessionConfig): every receive is
/// bounded by a round timeout and unanswered requests are retried, so the
/// call returns [`CryptoError::QuorumUnreachable`] instead of hanging when
/// the fault plan starves the quorum.
///
/// # Errors
///
/// * [`CryptoError::InvalidParameters`] if `shares` is empty, inconsistent,
///   or `requestor` is out of range.
/// * [`CryptoError::Protocol`] if a co-signer refuses (key-id mismatch).
/// * [`CryptoError::QuorumUnreachable`] when a co-signer never responds
///   within the retry budget.
/// * Propagates combination failures.
pub fn sign_over_network(
    public: &SharedPublicKey,
    shares: &[KeyShare],
    requestor: usize,
    msg: &[u8],
    faults: FaultPlan,
) -> Result<(RsaSignature, NetworkStats), CryptoError> {
    let (sig, _report, stats) = crate::session::SigningSession::sign_compound(
        public,
        shares,
        requestor,
        msg,
        faults,
        &crate::session::SessionConfig::default(),
    )?;
    Ok((sig, stats))
}

/// Like [`sign_over_network`], but with a receive timeout and a per-party
/// availability mask: co-signers with `online[i] == false` never respond.
///
/// This makes §3.3's availability argument executable: an n-of-n joint
/// signature *fails* whenever any single co-signer is offline (see
/// [`crate::threshold`] for the m-of-n remedy).
///
/// # Errors
///
/// [`CryptoError::Protocol`] when a co-signer's share does not arrive
/// within `timeout`; plus all [`sign_over_network`] errors.
pub fn sign_over_network_with_timeout(
    public: &SharedPublicKey,
    shares: &[KeyShare],
    requestor: usize,
    msg: &[u8],
    online: &[bool],
    timeout: std::time::Duration,
) -> Result<(RsaSignature, NetworkStats), CryptoError> {
    let n = public.n_parties();
    if shares.len() != n || online.len() != n {
        return Err(CryptoError::InvalidParameters(format!(
            "need {n} shares and {n} online flags"
        )));
    }
    if requestor >= n || !online[requestor] {
        return Err(CryptoError::InvalidParameters(
            "requestor out of range or offline".into(),
        ));
    }
    let (endpoints, handle) = Network::<JointMsg>::mesh(n);
    let results = jaap_net::run_parties(endpoints, |mut ep| {
        let me = ep.id().0;
        if !online[me] {
            return Ok(None); // offline: never answers
        }
        if me == requestor {
            requestor_side_timeout(&mut ep, public, &shares[me], msg, timeout)
        } else {
            cosigner_side_timeout(&mut ep, public, &shares[me], PartyId(requestor), timeout)
                .map(|()| None)
        }
    });
    let mut signature = None;
    for r in results {
        if let Some(sig) = r? {
            signature = Some(sig);
        }
    }
    let sig =
        signature.ok_or_else(|| CryptoError::Protocol("requestor produced no signature".into()))?;
    Ok((sig, handle.stats()))
}

fn requestor_side_timeout(
    ep: &mut Endpoint<JointMsg>,
    public: &SharedPublicKey,
    my_share: &KeyShare,
    msg: &[u8],
    timeout: std::time::Duration,
) -> Result<Option<RsaSignature>, CryptoError> {
    ep.broadcast(JointMsg::Request {
        msg: msg.to_vec(),
        key_id: public.key_id(),
    })
    .map_err(|e| CryptoError::Protocol(format!("network: {e}")))?;
    let mut shares = vec![produce_share(my_share, msg)?];
    let deadline = std::time::Instant::now() + timeout;
    while shares.len() < ep.n() {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(CryptoError::Protocol(format!(
                "joint signature timed out: {} of {} shares collected — an \
                 n-of-n signature needs every co-signer online",
                shares.len(),
                ep.n()
            )));
        }
        match ep.recv_timeout(remaining) {
            Ok(env) => match env.payload {
                JointMsg::Share(value) => shares.push(SignatureShare {
                    index: env.from.0,
                    value,
                }),
                JointMsg::Refuse(reason) => {
                    return Err(CryptoError::Protocol(format!(
                        "co-signer {} refused: {reason}",
                        env.from
                    )))
                }
                JointMsg::Request { .. } => {}
            },
            Err(jaap_net::NetError::Timeout) => continue,
            Err(e) => return Err(CryptoError::Protocol(format!("network: {e}"))),
        }
    }
    combine(public, msg, &shares).map(Some)
}

fn cosigner_side_timeout(
    ep: &mut Endpoint<JointMsg>,
    public: &SharedPublicKey,
    my_share: &KeyShare,
    requestor: PartyId,
    timeout: std::time::Duration,
) -> Result<(), CryptoError> {
    let incoming = match ep.recv_timeout(timeout) {
        Ok(env) if env.from == requestor => env.payload,
        Ok(_) | Err(jaap_net::NetError::Timeout) => return Ok(()), // nothing to do
        Err(e) => return Err(CryptoError::Protocol(format!("network: {e}"))),
    };
    let JointMsg::Request { msg, key_id } = incoming else {
        return Ok(());
    };
    if key_id != public.key_id() {
        let _ = ep.send(requestor, JointMsg::Refuse("unknown key id".into()));
        return Ok(());
    }
    let share = produce_share(my_share, &msg)?;
    ep.send(requestor, JointMsg::Share(share.value))
        .map_err(|e| CryptoError::Protocol(format!("network: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedRsaKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dealt(n: usize, seed: u64) -> (SharedPublicKey, Vec<KeyShare>) {
        let mut rng = StdRng::seed_from_u64(seed);
        SharedRsaKey::deal(&mut rng, 192, n).expect("deal")
    }

    #[test]
    fn local_joint_signature_verifies() {
        let (public, shares) = dealt(3, 1);
        let sig = sign_locally(&public, &shares, b"write Object O").expect("sign");
        assert!(public.verify(b"write Object O", &sig));
        assert!(!public.verify(b"read Object O", &sig));
    }

    #[test]
    fn combine_rejects_missing_share() {
        let (public, shares) = dealt(3, 2);
        let partial: Vec<SignatureShare> = shares[..2]
            .iter()
            .map(|s| produce_share(s, b"m").expect("share"))
            .collect();
        assert!(matches!(
            combine(&public, b"m", &partial),
            Err(CryptoError::BadShares(_))
        ));
    }

    #[test]
    fn combine_rejects_duplicate_share() {
        let (public, shares) = dealt(3, 3);
        let s0 = produce_share(&shares[0], b"m").expect("share");
        let s1 = produce_share(&shares[1], b"m").expect("share");
        let dup = vec![s0.clone(), s1, s0];
        assert!(matches!(
            combine(&public, b"m", &dup),
            Err(CryptoError::BadShares(_))
        ));
    }

    #[test]
    fn combine_detects_corrupted_share() {
        let (public, shares) = dealt(3, 4);
        let mut sig_shares: Vec<SignatureShare> = shares
            .iter()
            .map(|s| produce_share(s, b"m").expect("share"))
            .collect();
        sig_shares[1].value = &sig_shares[1].value + &Nat::one();
        assert_eq!(
            combine(&public, b"m", &sig_shares),
            Err(CryptoError::SelfCheckFailed)
        );
    }

    mod bad_share_robustness {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Arbitrarily corrupted share values (zero, huge, unreduced)
            /// must surface as `SelfCheckFailed`, never as a panic; an
            /// accepted result must verify.
            #[test]
            fn combine_never_panics_on_random_bad_shares(
                victim in 0usize..3,
                limbs in proptest::collection::vec(any::<u64>(), 0..6),
            ) {
                let (public, shares) = dealt(3, 40);
                let mut ss: Vec<SignatureShare> = shares
                    .iter()
                    .map(|s| produce_share(s, b"m").expect("share"))
                    .collect();
                ss[victim].value = Nat::from_limbs(limbs);
                match combine(&public, b"m", &ss) {
                    Ok(sig) => prop_assert!(public.verify(b"m", &sig)),
                    Err(e) => prop_assert_eq!(e, CryptoError::SelfCheckFailed),
                }
            }
        }
    }

    #[test]
    fn network_protocol_produces_verifying_signature() {
        let (public, shares) = dealt(3, 5);
        let (sig, stats) = sign_over_network(
            &public,
            &shares,
            0,
            b"joint access request",
            FaultPlan::reliable(),
        )
        .expect("sign");
        assert!(public.verify(b"joint access request", &sig));
        // 2 requests + 2 share replies + 2 session-done notices.
        assert_eq!(stats.messages_sent, 6);
    }

    #[test]
    fn any_party_can_be_requestor() {
        let (public, shares) = dealt(4, 6);
        for requestor in 0..4 {
            let (sig, _) =
                sign_over_network(&public, &shares, requestor, b"m", FaultPlan::reliable())
                    .expect("sign");
            assert!(public.verify(b"m", &sig));
        }
    }

    #[test]
    fn requestor_out_of_range_rejected() {
        let (public, shares) = dealt(3, 7);
        assert!(matches!(
            sign_over_network(&public, &shares, 9, b"m", FaultPlan::reliable()),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn timeout_signing_succeeds_when_everyone_is_online() {
        let (public, shares) = dealt(3, 20);
        let online = [true, true, true];
        let (sig, _) = sign_over_network_with_timeout(
            &public,
            &shares,
            0,
            b"all online",
            &online,
            std::time::Duration::from_secs(5),
        )
        .expect("sign");
        assert!(public.verify(b"all online", &sig));
    }

    #[test]
    fn timeout_signing_fails_with_one_cosigner_offline() {
        // §3.3's motivation: n-of-n signatures need *everyone*.
        let (public, shares) = dealt(3, 21);
        let online = [true, true, false];
        let err = sign_over_network_with_timeout(
            &public,
            &shares,
            0,
            b"one offline",
            &online,
            std::time::Duration::from_millis(100),
        )
        .unwrap_err();
        assert!(matches!(err, CryptoError::Protocol(_)));
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn timeout_signing_rejects_offline_requestor() {
        let (public, shares) = dealt(3, 22);
        let online = [false, true, true];
        assert!(matches!(
            sign_over_network_with_timeout(
                &public,
                &shares,
                0,
                b"m",
                &online,
                std::time::Duration::from_millis(50),
            ),
            Err(CryptoError::InvalidParameters(_))
        ));
    }

    #[test]
    fn signatures_interchangeable_with_local_combination() {
        let (public, shares) = dealt(3, 8);
        let local = sign_locally(&public, &shares, b"m").expect("local");
        let (networked, _) =
            sign_over_network(&public, &shares, 1, b"m", FaultPlan::reliable()).expect("net");
        // RSA-FDH is deterministic: both paths agree exactly.
        assert_eq!(local, networked);
    }
}
