//! Small-exponents randomized batch *screening* (Bellare–Garay–Rabin)
//! with bisection fallback and exact per-item settlement.
//!
//! To verify k FDH signatures `(hᵢ, sᵢ)` against one public key `(N, e)`,
//! draw random nonzero weights `rᵢ` and test the single equation
//!
//! ```text
//! (Π sᵢ^{rᵢ})^e  ≡  Π hᵢ^{rᵢ}   (mod N)
//! ```
//!
//! Both products run through [`MontgomeryContext::multi_modpow`] (one
//! shared squaring chain). The weights are essential to the screen's
//! discriminating power — a weightless product check cannot even tell
//! swapped signatures apart (`s₁ ↔ s₂` leaves `Π sᵢ` unchanged) — and
//! with independent full-range `λ`-bit weights (`λ = 32` here) the
//! combined equality binds every item to `sᵢ^e ≡ ±hᵢ` except with
//! probability `~2^{-λ}`.
//!
//! **Why the screen can never be the accept authority in `Z_N*`.** The
//! group `Z_N*` contains `-1`, an element of order 2 that anyone can
//! compute without factoring `N`. Replacing a valid signature `s` with
//! `N - s` multiplies the combined left-hand side by `(-1)^{rᵢ·e}`, so
//! the cheat survives the combined equality whenever the weight parities
//! over the flipped items cancel: with probability 1 if the parities are
//! fixed (e.g. weights forced odd — a bug this module once had), and
//! still with probability 1/2 per check even with secret full-range
//! weights, because one group equation leaks only one parity bit about
//! the sign vector. No product-based test in `Z_N*` can do better — the
//! standard `2^{-λ}` small-exponents bound assumes a group of prime
//! order, which `Z_N*` is not.
//!
//! **Exact settlement.** Verdicts therefore never come from the combined
//! check alone. A passing screen is *settled*: every screened item is
//! confirmed with the exact serial equation `sᵢ^e ≡ hᵢ` before being
//! reported valid. For recurring residues that confirmation runs over
//! the fixed-base ladder the item must build anyway to go warm — about
//! two Montgomery multiplies on top of the squaring chain — so
//! settlement is nearly free on the path that matters. A failing screen
//! bisects; single-item leaves run the same exact equation. Either way
//! the accept/reject vector equals the serial path's **unconditionally**,
//! for every weight sequence, including adversarially known ones: the
//! weights bound wasted work (how quickly a bad batch is localized),
//! never the verdicts.
//!
//! [`MontgomeryContext::multi_modpow`]: jaap_bigint::MontgomeryContext::multi_modpow

use jaap_bigint::Nat;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::precomp::ModulusPrecomp;

/// One signature to batch: the FDH-encoded digest and the raw residue.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// `FDH(msg, N)` — the expected value of `sig^e mod N`.
    pub h: Nat,
    /// The signature residue.
    pub sig: Nat,
}

/// The outcome of a batch: per-item verdicts plus work counters.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// `results[i]` ⟺ item `i` verifies (same verdicts as serial).
    pub results: Vec<bool>,
    /// Combined (multi-item) screening checks performed.
    pub combined_checks: u64,
    /// Combined checks that failed and fell back to bisection.
    pub fallbacks: u64,
    /// Single-item exact checks performed (bisection leaves).
    pub leaf_checks: u64,
    /// Exact per-item confirmations of screened (combined-pass) items.
    pub settle_checks: u64,
}

/// Verifies `items` against the key behind `mp`: one combined screening
/// check, exact per-item settlement on a pass, bisection on a failure.
///
/// `seed` drives the weight RNG. The verdicts are exact for **any** seed
/// (see the module docs — every reported accept was individually
/// confirmed), so fixed seeds in tests are safe; but the seed should
/// still be unpredictable to whoever submitted the signatures
/// (`rand::SeedableRng::from_os_rng`-derived, as the coalition server
/// does), because weight-aware adversaries can otherwise steer the
/// screen toward worst-case bisection work. Equal seeds reproduce
/// identical work counters.
///
/// `recurring` marks the signature residues as recurring bases (standing
/// certificates re-presented on every request; leave it off for one-shot
/// residues). It changes the cost model, never the verdicts:
///
/// * items whose fixed-base ladder is already warm are peeled off into
///   exact single-item leaf checks — with `e = 2¹⁶ + 1` a warm ladder
///   check is two Montgomery multiplies, far below the ~30-multiply
///   marginal share of a combined product, so re-combining warm bases
///   would only slow the batch down;
/// * the remaining cold items run the combined screen, and their exact
///   settlement (or bisection leaf) checks build their ladders (one
///   squaring chain each, amortized against every future presentation)
///   so the next batch takes the warm path.
#[must_use]
pub fn verify_batch(
    mp: &ModulusPrecomp,
    items: &[BatchItem],
    seed: u64,
    recurring: bool,
) -> BatchOutcome {
    let n = mp.context().modulus();
    let mut out = BatchOutcome {
        results: vec![false; items.len()],
        ..BatchOutcome::default()
    };
    // Range prefilter: out-of-range residues are rejected without any
    // arithmetic (exactly as `RsaPublicKey::verify` rejects them) and
    // must not poison the combined product.
    let candidates: Vec<usize> = (0..items.len())
        .filter(|&i| !items[i].sig.is_zero() && items[i].sig < *n)
        .collect();
    if candidates.is_empty() {
        return out;
    }
    // Warm-ladder bypass: leaf-check known bases exactly, combine the rest.
    let mut cold: Vec<usize> = Vec::with_capacity(candidates.len());
    for &i in &candidates {
        if recurring && mp.has_window(&items[i].sig) {
            out.leaf_checks += 1;
            out.results[i] = mp.verify(&items[i].h, &items[i].sig, true);
        } else {
            cold.push(i);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Full-range nonzero 32-bit weights. Parities must stay free: any
    // fixed parity (the old `| 1`) lets `-1 ∈ Z_N*` cancel out of the
    // combined product deterministically (module docs). Zero is
    // resampled so no item rides the screen unweighted.
    let weights: Vec<Nat> = cold
        .iter()
        .map(|_| loop {
            let w = rng.next_u32();
            if w != 0 {
                break Nat::from(u64::from(w));
            }
        })
        .collect();
    check(mp, items, &cold, &weights, recurring, &mut out);
    out
}

/// Recursive combined check over `idx` (indices into `items`, parallel to
/// `weights` via position in `idx`'s original ordering — both slices
/// shrink together).
fn check(
    mp: &ModulusPrecomp,
    items: &[BatchItem],
    idx: &[usize],
    weights: &[Nat],
    recurring: bool,
    out: &mut BatchOutcome,
) {
    debug_assert_eq!(idx.len(), weights.len());
    if idx.is_empty() {
        return;
    }
    if idx.len() == 1 {
        let it = &items[idx[0]];
        out.leaf_checks += 1;
        out.results[idx[0]] = mp.verify(&it.h, &it.sig, recurring);
        return;
    }
    let ctx = mp.context();
    let sig_pairs: Vec<(&Nat, &Nat)> = idx
        .iter()
        .zip(weights)
        .map(|(&i, r)| (&items[i].sig, r))
        .collect();
    let h_pairs: Vec<(&Nat, &Nat)> = idx
        .iter()
        .zip(weights)
        .map(|(&i, r)| (&items[i].h, r))
        .collect();
    let lhs = ctx.modpow(&ctx.multi_modpow(&sig_pairs), mp.exponent());
    let rhs = ctx.multi_modpow(&h_pairs);
    out.combined_checks += 1;
    if lhs == rhs {
        // The combined equality only binds each item to `sᵢ^e ≡ ±hᵢ`
        // (the -1 subgroup of Z_N* can cancel across the weighted
        // product — module docs), so it screens rather than accepts:
        // settle every item with the exact serial equation. Recurring
        // residues settle over the fixed-base ladder they must build
        // anyway to go warm, so the confirmation is ~2 multiplies.
        for &i in idx {
            out.settle_checks += 1;
            out.results[i] = mp.verify(&items[i].h, &items[i].sig, recurring);
        }
        return;
    }
    out.fallbacks += 1;
    let mid = idx.len() / 2;
    check(mp, items, &idx[..mid], &weights[..mid], recurring, out);
    check(mp, items, &idx[mid..], &weights[mid..], recurring, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdh;
    use crate::precomp::VerifierPrecomp;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup(count: usize) -> (Arc<ModulusPrecomp>, Vec<BatchItem>) {
        let kp = RsaKeyPair::generate(&mut StdRng::seed_from_u64(77), 192).expect("keygen");
        let precomp = VerifierPrecomp::new();
        let n = kp.public().modulus().clone();
        let mp = precomp
            .for_key(&n, kp.public().exponent())
            .expect("odd modulus");
        let items = (0..count)
            .map(|i| {
                let msg = format!("batch message {i}");
                let sig = kp.sign(msg.as_bytes()).expect("sign");
                BatchItem {
                    h: fdh::encode(msg.as_bytes(), &n),
                    sig: sig.value().clone(),
                }
            })
            .collect();
        (mp, items)
    }

    #[test]
    fn all_valid_passes_in_one_combined_check() {
        let (mp, items) = setup(8);
        let out = verify_batch(&mp, &items, 1, true);
        assert!(out.results.iter().all(|&r| r));
        assert_eq!(out.combined_checks, 1);
        assert_eq!(out.fallbacks, 0);
        assert_eq!(out.leaf_checks, 0);
        // Every screened accept is individually confirmed.
        assert_eq!(out.settle_checks, 8);
    }

    #[test]
    fn warm_bases_skip_the_combined_check() {
        let (mp, items) = setup(8);
        // Cold pass: one combined screen, settled exactly — the
        // settlement checks build the ladders.
        let cold = verify_batch(&mp, &items, 1, true);
        assert_eq!(cold.combined_checks, 1);
        assert_eq!(cold.leaf_checks, 0);
        assert_eq!(cold.settle_checks, 8);
        // Warm pass: every base is known, so each item is an exact leaf
        // check over its ladder — no combined product at all.
        let warm = verify_batch(&mp, &items, 1, true);
        assert!(warm.results.iter().all(|&r| r));
        assert_eq!(warm.combined_checks, 0);
        assert_eq!(warm.leaf_checks, 8);
        assert_eq!(warm.settle_checks, 0);
        // One-shot residues never earn ladders and always combine.
        let oneshot = verify_batch(&mp, &items, 1, false);
        assert_eq!(oneshot.combined_checks, 1);
        assert_eq!(oneshot.leaf_checks, 0);
        assert_eq!(oneshot.settle_checks, 8);
    }

    #[test]
    fn bisection_pins_the_exact_offender() {
        let (mp, mut items) = setup(8);
        items[5].sig = items[5].sig.addm(&Nat::one(), mp.context().modulus());
        let out = verify_batch(&mp, &items, 2, false);
        for (i, &r) in out.results.iter().enumerate() {
            assert_eq!(r, i != 5, "item {i}");
        }
        assert!(out.fallbacks >= 1, "combined check must fail");
        // Bisection needs only O(log k) leaf checks, not k.
        assert!(out.leaf_checks <= 4, "got {}", out.leaf_checks);
        // Every verdict came from exactly one exact check.
        assert_eq!(out.leaf_checks + out.settle_checks, 8);
    }

    #[test]
    fn minus_s_maul_is_rejected_for_every_seed() {
        // REVIEW regression: -1 has order 2 in Z_N*, so replacing an
        // *even* number of valid signatures s with N - s cancels out of
        // the weighted product whenever the flipped weights' parities
        // sum to zero — with the old forced-odd weights, always. The
        // screen may pass or fail depending on the seed; the verdicts
        // must reject the mauled items either way (settlement on a
        // pass, bisection on a failure), in both residue modes.
        let (mp, mut items) = setup(8);
        let n = mp.context().modulus().clone();
        for i in [2usize, 6] {
            items[i].sig = &n - &items[i].sig;
        }
        let (mut screened, mut bisected) = (0u32, 0u32);
        for seed in 0..16u64 {
            for recurring in [false, true] {
                let out = verify_batch(&mp, &items, seed, recurring);
                for (i, &r) in out.results.iter().enumerate() {
                    assert_eq!(r, i != 2 && i != 6, "item {i}, seed {seed}");
                }
                if !recurring {
                    if out.fallbacks == 0 {
                        screened += 1;
                    } else {
                        bisected += 1;
                    }
                }
            }
        }
        // With free weight parities both screen outcomes occur across
        // the seeds (each has probability 1/2 per draw); the screened
        // case is the one the old code falsely accepted.
        assert!(screened > 0, "no seed exercised settle-side rejection");
        assert!(bisected > 0, "no seed exercised bisection rejection");
    }

    #[test]
    fn swapped_signatures_are_rejected() {
        // The classic attack a weightless product check misses: swapping
        // two valid signatures leaves Π sᵢ unchanged.
        let (mp, mut items) = setup(6);
        items.swap(1, 4);
        let tmp = items[1].h.clone();
        items[1].h = items[4].h.clone();
        items[4].h = tmp;
        // (h, sig) pairs are now crosswise: h₁ with sig₄ and vice versa.
        let out = verify_batch(&mp, &items, 3, false);
        assert!(!out.results[1]);
        assert!(!out.results[4]);
        for i in [0, 2, 3, 5] {
            assert!(out.results[i], "item {i} is untouched");
        }
    }

    #[test]
    fn out_of_range_residues_rejected_without_poisoning() {
        let (mp, mut items) = setup(4);
        items[0].sig = Nat::zero();
        items[2].sig = mp.context().modulus().clone();
        let out = verify_batch(&mp, &items, 4, false);
        assert_eq!(out.results, vec![false, true, false, true]);
        assert_eq!(out.fallbacks, 0, "in-range items pass in one check");
        assert_eq!(out.settle_checks, 2, "only in-range items settle");
    }

    mod serial_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Batch verdicts equal the serial per-item verdicts under
            /// arbitrary corruption patterns and weight seeds.
            #[test]
            fn matches_serial_verdicts_under_random_corruption(
                corrupt in proptest::collection::vec(any::<bool>(), 7),
                delta in any::<u64>(),
                seed in any::<u64>(),
                recurring in any::<bool>(),
            ) {
                let (mp, mut mutated) = setup(7);
                let n = mp.context().modulus().clone();
                for (i, c) in corrupt.iter().enumerate() {
                    if *c {
                        mutated[i].sig = mutated[i].sig.addm(&Nat::from(delta | 1), &n);
                    }
                }
                let serial: Vec<bool> = mutated
                    .iter()
                    .map(|it| mp.verify(&it.h, &it.sig, false))
                    .collect();
                let out = verify_batch(&mp, &mutated, seed, recurring);
                prop_assert_eq!(out.results, serial);
            }
        }
    }
}
