//! Resilient signing sessions: bounded-time joint and threshold signing
//! over a faulty network.
//!
//! The protocols in [`crate::joint`] and [`crate::threshold`] assume the
//! environment eventually delivers every message. This module drops that
//! assumption: a [`SigningSession`] drives the §3.2/§3.3 exchanges with
//!
//! * a **per-round receive timeout** — every network wait is bounded, so no
//!   signing path can hang on a crashed, partitioned, or lossy peer;
//! * **bounded retries with deterministic exponential backoff** — an
//!   unanswered request is re-sent up to [`SessionConfig::max_retries`]
//!   times, waiting `backoff_base · 2^(round-1)` between rounds;
//! * **co-signer failover** (m-of-n only) — the requestor opens the session
//!   against a minimal cohort of `m` signers and, when a cohort member stays
//!   silent, reroutes the request to a standby domain. The combination step
//!   recomputes the Lagrange coefficients from whichever index subset
//!   actually responded, so signing succeeds whenever any `m` domains are
//!   live — the executable form of the paper's §3.3 availability argument.
//!
//! A session that cannot assemble its quorum returns
//! [`CryptoError::QuorumUnreachable`] with exact responsive/needed counts
//! instead of blocking forever, plus a [`SessionReport`] retry trace suitable
//! for an audit log.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jaap_bigint::Nat;
use jaap_net::{Endpoint, FaultPlan, NetError, Network, NetworkStats, PartyId};
use jaap_obs::{Counter, Histogram, MetricsRegistry};

use crate::joint::{self, SignatureShare};
use crate::rsa::RsaSignature;
use crate::shared::{KeyShare, SharedPublicKey};
use crate::threshold::{self, ThresholdPublic, ThresholdShare, ThresholdSigShare};
use crate::CryptoError;

/// Timeout/retry policy of a signing session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// How long the requestor waits for shares in one round before
    /// retrying or failing over.
    pub round_timeout: Duration,
    /// How many retry rounds follow the initial round.
    pub max_retries: u32,
    /// Base of the deterministic exponential backoff: the wait before retry
    /// round `r` is `backoff_base · 2^(r-1)`.
    pub backoff_base: Duration,
}

impl SessionConfig {
    /// A tight policy for tests and benches: short rounds, fast backoff.
    #[must_use]
    pub fn fast() -> Self {
        SessionConfig {
            round_timeout: Duration::from_millis(60),
            max_retries: 3,
            backoff_base: Duration::from_millis(5),
        }
    }

    /// The deterministic wait before retry round `round` (1-based).
    #[must_use]
    pub fn backoff_for(&self, round: u32) -> Duration {
        // Saturate the shift so a pathological max_retries cannot overflow.
        self.backoff_base * (1u32 << (round - 1).min(16))
    }

    /// Worst-case wall-clock budget of the whole session: the bound
    /// co-signers use for their own receive loop, guaranteeing every party
    /// exits even if the requestor's `Done` notice is lost.
    #[must_use]
    pub fn session_deadline(&self) -> Duration {
        let rounds = self.max_retries + 2; // initial + retries + slack
        let mut total = self.round_timeout * rounds;
        for r in 1..=self.max_retries {
            total += self.backoff_for(r);
        }
        total
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            round_timeout: Duration::from_millis(200),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
        }
    }
}

/// What happened during a session: rounds used, failovers performed, and a
/// human-readable retry trace for audit logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Rounds executed (1 = no retries were needed).
    pub rounds: u32,
    /// Failovers performed: `(unresponsive party, standby that replaced it)`.
    pub reroutes: Vec<(usize, usize)>,
    /// Signers whose shares were collected (requestor included).
    pub responsive: Vec<usize>,
    /// One line per recovery action, in order.
    pub trace: Vec<String>,
}

impl SessionReport {
    /// Single-line rendering for audit logs; empty string when the session
    /// needed no recovery actions.
    #[must_use]
    pub fn summary(&self) -> String {
        self.trace.join("; ")
    }
}

/// Wire messages of a signing session (both compound and threshold modes).
#[derive(Debug, Clone)]
pub enum SessionMsg {
    /// Requestor → co-signer: message to sign plus the key id (§3.2).
    Request {
        /// Message bytes.
        msg: Vec<u8>,
        /// `SHA-256(N || e)` identifying the key.
        key_id: String,
    },
    /// Co-signer → requestor: its signature share.
    Share(Nat),
    /// Co-signer → requestor: refusal (unknown key id).
    Refuse(String),
    /// Requestor → co-signers: the session is over (success or abort).
    Done,
}

/// Pre-resolved session instruments (see [`MetricsRegistry`]); resolving
/// them once per session keeps the round loop at atomic operations only.
struct SessionMetrics {
    /// Latency of each request/collect round.
    round_ns: Arc<Histogram>,
    /// Rounds used per session (1 = no retries were needed).
    rounds: Arc<Histogram>,
    /// Retry rounds beyond the first.
    retries: Arc<Counter>,
    /// Backoff waits, as recorded durations.
    backoff_ns: Arc<Histogram>,
    /// Co-signer failovers to a standby domain.
    failovers: Arc<Counter>,
    /// Sessions that ended in [`CryptoError::QuorumUnreachable`].
    quorum_failures: Arc<Counter>,
    /// Sessions started.
    sessions: Arc<Counter>,
}

impl SessionMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        SessionMetrics {
            round_ns: registry.histogram("session.round_ns"),
            rounds: registry.histogram("session.rounds"),
            retries: registry.counter("session.retries"),
            backoff_ns: registry.histogram("session.backoff_ns"),
            failovers: registry.counter("session.failovers"),
            quorum_failures: registry.counter("session.quorum_failures"),
            sessions: registry.counter("session.sessions"),
        }
    }
}

/// Namespace for running resilient signing sessions; see the module docs.
#[derive(Debug)]
pub struct SigningSession;

impl SigningSession {
    /// Runs a compound (n-of-n, §3.2) signature over a faulty network with
    /// timeouts and retries. Every co-signer must contribute; there are no
    /// standbys to fail over to, so a crashed or partitioned co-signer makes
    /// the session fail with [`CryptoError::QuorumUnreachable`] after the
    /// retry budget — never by hanging.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] on inconsistent inputs;
    /// [`CryptoError::QuorumUnreachable`] when fewer than `n` signers
    /// responded within the retry budget; combination failures.
    pub fn sign_compound(
        public: &SharedPublicKey,
        shares: &[KeyShare],
        requestor: usize,
        msg: &[u8],
        faults: FaultPlan,
        config: &SessionConfig,
    ) -> Result<(RsaSignature, SessionReport, NetworkStats), CryptoError> {
        let (outcome, report, stats) =
            Self::run_compound(public, shares, requestor, msg, faults, config);
        outcome.map(|sig| (sig, report, stats))
    }

    /// Like [`SigningSession::sign_compound`], but always returns the
    /// [`SessionReport`] and [`NetworkStats`] — even when the session
    /// failed. Callers that audit recovery actions (the coalition server's
    /// retry trace) use this form.
    pub fn run_compound(
        public: &SharedPublicKey,
        shares: &[KeyShare],
        requestor: usize,
        msg: &[u8],
        faults: FaultPlan,
        config: &SessionConfig,
    ) -> (
        Result<RsaSignature, CryptoError>,
        SessionReport,
        NetworkStats,
    ) {
        Self::run_compound_observed(public, shares, requestor, msg, faults, config, None)
    }

    /// Like [`SigningSession::run_compound`], but records session telemetry
    /// — round latencies, retry/backoff waits, failovers, quorum failures —
    /// and per-link network outcomes into `metrics` when one is supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn run_compound_observed(
        public: &SharedPublicKey,
        shares: &[KeyShare],
        requestor: usize,
        msg: &[u8],
        faults: FaultPlan,
        config: &SessionConfig,
        metrics: Option<&MetricsRegistry>,
    ) -> (
        Result<RsaSignature, CryptoError>,
        SessionReport,
        NetworkStats,
    ) {
        let n = public.n_parties();
        if shares.len() != n {
            let err =
                CryptoError::InvalidParameters(format!("need {n} shares, got {}", shares.len()));
            return (Err(err), SessionReport::default(), NetworkStats::default());
        }
        if requestor >= n {
            let err =
                CryptoError::InvalidParameters(format!("requestor index {requestor} out of range"));
            return (Err(err), SessionReport::default(), NetworkStats::default());
        }
        let key_id = public.key_id();
        run_session(
            n,
            n,
            requestor,
            msg,
            &key_id,
            faults,
            config,
            metrics,
            &|index, body| joint::produce_share(&shares[index], body).map(|s| s.value),
            &|collected| {
                let sig_shares: Vec<SignatureShare> = collected
                    .iter()
                    .map(|(&index, value)| SignatureShare {
                        index,
                        value: value.clone(),
                    })
                    .collect();
                joint::combine(public, msg, &sig_shares)
            },
        )
    }

    /// Runs an m-of-n threshold signature (§3.3) over a faulty network with
    /// timeouts, retries, and co-signer failover: the requestor asks a
    /// minimal cohort of `m` signers, reroutes to standby domains when
    /// cohort members stay silent, and combines with Lagrange coefficients
    /// recomputed for whichever subset responded.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameters`] on inconsistent inputs;
    /// [`CryptoError::QuorumUnreachable`] when fewer than `m` signers
    /// responded within the retry budget; combination failures.
    pub fn sign_threshold(
        public: &ThresholdPublic,
        shares: &[ThresholdShare],
        requestor: usize,
        msg: &[u8],
        faults: FaultPlan,
        config: &SessionConfig,
    ) -> Result<(RsaSignature, SessionReport, NetworkStats), CryptoError> {
        let (outcome, report, stats) =
            Self::run_threshold(public, shares, requestor, msg, faults, config);
        outcome.map(|sig| (sig, report, stats))
    }

    /// Like [`SigningSession::sign_threshold`], but always returns the
    /// [`SessionReport`] and [`NetworkStats`] — even when the session
    /// failed.
    pub fn run_threshold(
        public: &ThresholdPublic,
        shares: &[ThresholdShare],
        requestor: usize,
        msg: &[u8],
        faults: FaultPlan,
        config: &SessionConfig,
    ) -> (
        Result<RsaSignature, CryptoError>,
        SessionReport,
        NetworkStats,
    ) {
        Self::run_threshold_observed(public, shares, requestor, msg, faults, config, None)
    }

    /// Like [`SigningSession::run_threshold`], but records session telemetry
    /// — round latencies, retry/backoff waits, failovers, quorum failures —
    /// and per-link network outcomes into `metrics` when one is supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn run_threshold_observed(
        public: &ThresholdPublic,
        shares: &[ThresholdShare],
        requestor: usize,
        msg: &[u8],
        faults: FaultPlan,
        config: &SessionConfig,
        metrics: Option<&MetricsRegistry>,
    ) -> (
        Result<RsaSignature, CryptoError>,
        SessionReport,
        NetworkStats,
    ) {
        let n = public.parties();
        let m = public.threshold();
        if shares.len() != n {
            let err =
                CryptoError::InvalidParameters(format!("need {n} shares, got {}", shares.len()));
            return (Err(err), SessionReport::default(), NetworkStats::default());
        }
        if requestor >= n {
            let err =
                CryptoError::InvalidParameters(format!("requestor index {requestor} out of range"));
            return (Err(err), SessionReport::default(), NetworkStats::default());
        }
        let key_id = public.rsa().key_id();
        run_session(
            n,
            m,
            requestor,
            msg,
            &key_id,
            faults,
            config,
            metrics,
            &|index, body| shares[index].sign_share(body).map(|s| s.value),
            &|collected| {
                let sig_shares: Vec<ThresholdSigShare> = collected
                    .iter()
                    .map(|(&index, value)| ThresholdSigShare {
                        index,
                        value: value.clone(),
                    })
                    .collect();
                threshold::combine(public, msg, &sig_shares)
            },
        )
    }
}

/// Computes one party's signature share over a message.
type MakeShareFn<'a> = dyn Fn(usize, &[u8]) -> Result<Nat, CryptoError> + Sync + 'a;
/// Combines the collected shares into a full signature.
type CombineFn<'a> = dyn Fn(&BTreeMap<usize, Nat>) -> Result<RsaSignature, CryptoError> + Sync + 'a;

/// Spawns all parties, runs the requestor driver and the co-signer loops,
/// and reconciles the per-party results.
///
/// An invalid fault plan surfaces as [`CryptoError::InvalidParameters`]
/// (via [`Network::try_mesh_with`]) rather than a panic, so library callers
/// with caller-supplied fault plans get an error they can handle.
#[allow(clippy::too_many_arguments)]
fn run_session(
    n: usize,
    needed: usize,
    requestor: usize,
    msg: &[u8],
    key_id: &str,
    faults: FaultPlan,
    config: &SessionConfig,
    metrics: Option<&MetricsRegistry>,
    make_share: &MakeShareFn<'_>,
    combine: &CombineFn<'_>,
) -> (
    Result<RsaSignature, CryptoError>,
    SessionReport,
    NetworkStats,
) {
    let mesh = match metrics {
        Some(registry) => Network::<SessionMsg>::try_mesh_observed(n, faults, false, registry),
        None => Network::<SessionMsg>::try_mesh_with(n, faults, false),
    };
    let (endpoints, handle) = match mesh {
        Ok(mesh) => mesh,
        Err(e) => {
            return (
                Err(CryptoError::InvalidParameters(format!("network: {e}"))),
                SessionReport::default(),
                NetworkStats::default(),
            );
        }
    };
    let session_metrics = metrics.map(SessionMetrics::resolve);
    if let Some(m) = &session_metrics {
        m.sessions.inc();
    }
    let mut results = jaap_net::run_parties(endpoints, |mut ep| {
        let me = ep.id().0;
        if me == requestor {
            Ok(Some(drive(
                &mut ep,
                needed,
                msg,
                key_id,
                config,
                session_metrics.as_ref(),
                make_share,
                combine,
            )))
        } else {
            cosign(&mut ep, PartyId(requestor), key_id, me, config, make_share).map(|()| None)
        }
    });
    let requestor_result = results.swap_remove(requestor);
    match requestor_result {
        Ok(Some((outcome, report))) => {
            // When the requestor failed, a co-signer's own failure (e.g. a
            // share computation error) is the better root cause to surface.
            let outcome = if outcome.is_err() {
                results
                    .into_iter()
                    .find_map(Result::err)
                    .map_or(outcome, Err)
            } else {
                outcome
            };
            (outcome, report, handle.stats())
        }
        // The requestor branch always produces Ok(Some(..)); this arm only
        // exists to satisfy the type.
        _ => (
            Err(CryptoError::Protocol("requestor produced no result".into())),
            SessionReport::default(),
            handle.stats(),
        ),
    }
}

/// Requestor side: request/collect rounds with backoff, failover, and a
/// final `Done` broadcast so co-signers exit promptly. The report is
/// returned alongside the outcome so failed sessions still carry their
/// retry trace and responsive-signer list to the audit log.
#[allow(clippy::too_many_arguments)]
fn drive(
    ep: &mut Endpoint<SessionMsg>,
    needed: usize,
    msg: &[u8],
    key_id: &str,
    config: &SessionConfig,
    metrics: Option<&SessionMetrics>,
    make_share: &MakeShareFn<'_>,
    combine: &CombineFn<'_>,
) -> (Result<RsaSignature, CryptoError>, SessionReport) {
    let mut report = SessionReport::default();
    let mut collected: BTreeMap<usize, Nat> = BTreeMap::new();
    let outcome = collect_quorum(
        ep,
        needed,
        msg,
        key_id,
        config,
        metrics,
        make_share,
        &mut report,
        &mut collected,
    );
    break_session(ep);
    report.responsive = collected.keys().copied().collect();
    if let Some(m) = metrics {
        m.rounds.record(u64::from(report.rounds));
        if matches!(outcome, Err(CryptoError::QuorumUnreachable { .. })) {
            m.quorum_failures.inc();
        }
    }
    let outcome = outcome.and_then(|()| combine(&collected));
    (outcome, report)
}

/// The request/collect round loop: fills `collected` until it holds a
/// quorum or the retry budget runs out.
#[allow(clippy::too_many_arguments)]
fn collect_quorum(
    ep: &mut Endpoint<SessionMsg>,
    needed: usize,
    msg: &[u8],
    key_id: &str,
    config: &SessionConfig,
    metrics: Option<&SessionMetrics>,
    make_share: &MakeShareFn<'_>,
    report: &mut SessionReport,
    collected: &mut BTreeMap<usize, Nat>,
) -> Result<(), CryptoError> {
    let me = ep.id().0;
    let n = ep.n();
    collected.insert(me, make_share(me, msg)?);

    // Minimal cohort: the requestor plus the first `needed - 1` other
    // parties by index; everyone else is a standby, in index order.
    let mut cohort: Vec<usize> = (0..n).filter(|&i| i != me).take(needed - 1).collect();
    let mut standbys: VecDeque<usize> = (0..n).filter(|&i| i != me).skip(needed - 1).collect();

    let request = SessionMsg::Request {
        msg: msg.to_vec(),
        key_id: key_id.to_string(),
    };
    for &p in &cohort {
        send_lossy(ep, p, request.clone())?;
    }

    loop {
        report.rounds += 1;
        let round_started = Instant::now();
        let round_deadline = round_started + config.round_timeout;
        // Drain shares until quorum or the round deadline.
        while collected.len() < needed {
            let Some(budget) = round_deadline
                .checked_duration_since(Instant::now())
                .filter(|b| !b.is_zero())
            else {
                break;
            };
            match ep.recv_timeout(budget) {
                Ok(env) => match env.payload {
                    SessionMsg::Share(value) => {
                        collected.entry(env.from.0).or_insert(value);
                    }
                    SessionMsg::Refuse(reason) => {
                        return Err(CryptoError::Protocol(format!(
                            "co-signer {} refused: {reason}",
                            env.from
                        )));
                    }
                    SessionMsg::Request { .. } | SessionMsg::Done => {}
                },
                Err(NetError::Timeout) => break,
                Err(e) => {
                    return Err(CryptoError::Protocol(format!("network: {e}")));
                }
            }
        }
        if let Some(m) = metrics {
            m.round_ns.record_duration(round_started.elapsed());
        }
        if collected.len() >= needed {
            return Ok(());
        }
        if report.rounds > config.max_retries {
            return Err(CryptoError::QuorumUnreachable {
                responsive: collected.len(),
                needed,
            });
        }
        // Recovery: fail over silent cohort members to standbys where
        // possible, otherwise re-request with backoff.
        let silent: Vec<usize> = cohort
            .iter()
            .copied()
            .filter(|p| !collected.contains_key(p))
            .collect();
        let backoff = config.backoff_for(report.rounds);
        if let Some(m) = metrics {
            m.retries.inc();
            m.backoff_ns.record_duration(backoff);
        }
        std::thread::sleep(backoff);
        for p in silent {
            if let Some(standby) = standbys.pop_front() {
                if let Some(m) = metrics {
                    m.failovers.inc();
                }
                report.reroutes.push((p, standby));
                report.trace.push(format!(
                    "round {}: co-signer {p} unresponsive, failing over to standby {standby}",
                    report.rounds
                ));
                let slot = cohort
                    .iter()
                    .position(|&c| c == p)
                    .expect("member in cohort");
                cohort[slot] = standby;
                send_lossy(ep, standby, request.clone())?;
            } else {
                report.trace.push(format!(
                    "round {}: co-signer {p} unresponsive, re-requesting (no standby left)",
                    report.rounds
                ));
                send_lossy(ep, p, request.clone())?;
            }
        }
    }
}

/// Co-signer side: answer (re-)requests until `Done` arrives or the session
/// deadline expires. Every wait is a `recv_timeout` — a co-signer can never
/// hang on a dead requestor.
fn cosign(
    ep: &mut Endpoint<SessionMsg>,
    requestor: PartyId,
    key_id: &str,
    me: usize,
    config: &SessionConfig,
    make_share: &MakeShareFn<'_>,
) -> Result<(), CryptoError> {
    let deadline = Instant::now() + config.session_deadline();
    // Cache the share so duplicate/retried requests are answered cheaply
    // and identically (idempotent replies).
    let mut cached: Option<(Vec<u8>, Nat)> = None;
    loop {
        let Some(budget) = deadline
            .checked_duration_since(Instant::now())
            .filter(|b| !b.is_zero())
        else {
            return Ok(()); // session over from our perspective
        };
        match ep.recv_timeout(budget) {
            Ok(env) if env.from == requestor => match env.payload {
                SessionMsg::Request { msg, key_id: kid } => {
                    if kid != key_id {
                        let _ = ep.send(requestor, SessionMsg::Refuse("unknown key id".into()));
                        continue;
                    }
                    let value = match &cached {
                        Some((m, v)) if *m == msg => v.clone(),
                        _ => {
                            let v = make_share(me, &msg)?;
                            cached = Some((msg, v.clone()));
                            v
                        }
                    };
                    let _ = ep.send(requestor, SessionMsg::Share(value));
                }
                SessionMsg::Done => return Ok(()),
                SessionMsg::Share(_) | SessionMsg::Refuse(_) => {}
            },
            Ok(_) => {} // stray message from another co-signer
            Err(NetError::Timeout | NetError::Disconnected) => return Ok(()),
            Err(e) => return Err(CryptoError::Protocol(format!("network: {e}"))),
        }
    }
}

/// Sends, treating network-level errors as fatal but fault-plan suppression
/// as normal (the sender cannot tell, by design).
fn send_lossy(ep: &Endpoint<SessionMsg>, to: usize, msg: SessionMsg) -> Result<(), CryptoError> {
    ep.send(PartyId(to), msg)
        .map_err(|e| CryptoError::Protocol(format!("network: {e}")))
}

/// Tells every co-signer the session is over (best effort — losses are
/// covered by the co-signers' own deadline).
fn break_session(ep: &Endpoint<SessionMsg>) {
    let _ = ep.broadcast(SessionMsg::Done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use crate::shared::SharedRsaKey;
    use crate::threshold::ThresholdKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dealt_compound(n: usize, seed: u64) -> (SharedPublicKey, Vec<KeyShare>) {
        let mut rng = StdRng::seed_from_u64(seed);
        SharedRsaKey::deal(&mut rng, 192, n).expect("deal")
    }

    fn dealt_threshold(m: usize, n: usize, seed: u64) -> (ThresholdPublic, Vec<ThresholdShare>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
        ThresholdKey::deal(&mut rng, &kp, m, n).expect("deal")
    }

    #[test]
    fn compound_session_on_reliable_network() {
        let (public, shares) = dealt_compound(3, 1);
        let (sig, report, stats) = SigningSession::sign_compound(
            &public,
            &shares,
            0,
            b"session",
            FaultPlan::reliable(),
            &SessionConfig::fast(),
        )
        .expect("sign");
        assert!(public.verify(b"session", &sig));
        assert_eq!(report.rounds, 1);
        assert!(report.reroutes.is_empty());
        assert_eq!(report.responsive, vec![0, 1, 2]);
        // 2 requests + 2 shares + 2 Done notices.
        assert_eq!(stats.messages_sent, 6);
    }

    #[test]
    fn compound_session_retries_through_drops() {
        let (public, shares) = dealt_compound(3, 2);
        // Noticeable loss: retries must eventually get through. With 9
        // attempts per co-signer the failure probability is negligible.
        let faults = FaultPlan::seeded(7).with_drop(0.25);
        let config = SessionConfig {
            round_timeout: Duration::from_millis(50),
            max_retries: 8,
            backoff_base: Duration::from_millis(1),
        };
        let (sig, report, _) =
            SigningSession::sign_compound(&public, &shares, 0, b"lossy", faults, &config)
                .expect("sign despite drops");
        assert!(public.verify(b"lossy", &sig));
        assert!(report.rounds >= 1);
    }

    #[test]
    fn compound_session_fails_fast_with_crashed_cosigner() {
        let (public, shares) = dealt_compound(3, 3);
        // Party 2 is dead from the start: n-of-n can never complete.
        let faults = FaultPlan::reliable().with_crash(2, 0);
        let started = Instant::now();
        let err = SigningSession::sign_compound(
            &public,
            &shares,
            0,
            b"doomed",
            faults,
            &SessionConfig::fast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CryptoError::QuorumUnreachable {
                responsive: 2,
                needed: 3
            }
        );
        // Bounded: well under the worst-case session deadline plus slack.
        assert!(started.elapsed() < SessionConfig::fast().session_deadline() * 2);
    }

    #[test]
    fn threshold_session_fails_over_to_standby() {
        let (public, shares) = dealt_threshold(2, 3, 4);
        // Initial cohort for requestor 0 is {1}; party 1 is dead, so the
        // session must fail over to standby 2 and still sign.
        let faults = FaultPlan::reliable().with_crash(1, 0);
        let (sig, report, _) = SigningSession::sign_threshold(
            &public,
            &shares,
            0,
            b"failover",
            faults,
            &SessionConfig::fast(),
        )
        .expect("failover signing");
        assert!(public.verify(b"failover", &sig));
        assert_eq!(report.reroutes, vec![(1, 2)]);
        assert_eq!(report.responsive, vec![0, 2]);
        assert!(report.summary().contains("failing over to standby 2"));
    }

    #[test]
    fn threshold_session_fails_when_quorum_impossible() {
        let (public, shares) = dealt_threshold(3, 4, 5);
        // Only requestor 0 and party 1 are alive: 2 < m = 3.
        let faults = FaultPlan::reliable().with_crash(2, 0).with_crash(3, 0);
        let err = SigningSession::sign_threshold(
            &public,
            &shares,
            0,
            b"short",
            faults,
            &SessionConfig::fast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CryptoError::QuorumUnreachable {
                responsive: 2,
                needed: 3
            }
        );
    }

    #[test]
    fn threshold_session_survives_partition_of_cohort_member() {
        let (public, shares) = dealt_threshold(2, 4, 6);
        // The requestor cannot reach party 1 (severed link) but standbys
        // 2 and 3 are reachable.
        let faults = FaultPlan::reliable().with_partition(&[0], &[1]);
        let (sig, report, _) = SigningSession::sign_threshold(
            &public,
            &shares,
            0,
            b"partitioned",
            faults,
            &SessionConfig::fast(),
        )
        .expect("sign around the partition");
        assert!(public.verify(b"partitioned", &sig));
        assert_eq!(report.reroutes.first(), Some(&(1, 2)));
    }

    #[test]
    fn observed_session_records_rounds_failovers_and_link_stats() {
        let (public, shares) = dealt_threshold(2, 3, 4);
        let registry = jaap_obs::MetricsRegistry::new();
        // Party 1 (the initial cohort) is dead: one retry round fails over
        // to standby 2 and the session still signs.
        let faults = FaultPlan::reliable().with_crash(1, 0);
        let (outcome, report, _stats) = SigningSession::run_threshold_observed(
            &public,
            &shares,
            0,
            b"observed",
            faults,
            &SessionConfig::fast(),
            Some(&registry),
        );
        assert!(outcome.is_ok());
        assert_eq!(report.reroutes, vec![(1, 2)]);
        assert_eq!(registry.counter_value("session.sessions"), Some(1));
        assert_eq!(registry.counter_value("session.failovers"), Some(1));
        assert!(registry.counter_value("session.retries").expect("retries") >= 1);
        assert_eq!(registry.counter_value("session.quorum_failures"), Some(0));
        let rounds = registry
            .histogram_snapshot("session.rounds")
            .expect("rounds histogram");
        assert_eq!(rounds.count, 1);
        assert_eq!(rounds.max, u64::from(report.rounds));
        let round_ns = registry
            .histogram_snapshot("session.round_ns")
            .expect("round latency histogram");
        assert_eq!(round_ns.count, u64::from(report.rounds));
        // The observed mesh recorded per-link outcomes: the requestor
        // reached standby 2 at least twice (request + Done notice).
        assert!(
            registry
                .counter_value("net.link.0->2.delivered")
                .expect("link")
                >= 2
        );
    }

    #[test]
    fn observed_session_counts_quorum_failures() {
        let (public, shares) = dealt_compound(3, 3);
        let registry = jaap_obs::MetricsRegistry::new();
        let faults = FaultPlan::reliable().with_crash(2, 0);
        let (outcome, _report, _stats) = SigningSession::run_compound_observed(
            &public,
            &shares,
            0,
            b"doomed",
            faults,
            &SessionConfig::fast(),
            Some(&registry),
        );
        assert!(matches!(
            outcome,
            Err(CryptoError::QuorumUnreachable { .. })
        ));
        assert_eq!(registry.counter_value("session.quorum_failures"), Some(1));
    }

    #[test]
    fn invalid_fault_plan_is_an_error_not_a_panic() {
        let (public, shares) = dealt_compound(3, 8);
        let faults = FaultPlan {
            drop_prob: 2.5,
            ..FaultPlan::reliable()
        };
        let (outcome, report, stats) = SigningSession::run_compound(
            &public,
            &shares,
            0,
            b"bad plan",
            faults,
            &SessionConfig::fast(),
        );
        assert!(matches!(
            outcome,
            Err(CryptoError::InvalidParameters(ref m)) if m.contains("invalid FaultPlan")
        ));
        assert_eq!(report, SessionReport::default());
        assert_eq!(stats, NetworkStats::default());
    }

    #[test]
    fn session_reports_are_deterministic_for_a_seed() {
        let (public, shares) = dealt_threshold(2, 3, 7);
        let run = || {
            SigningSession::sign_threshold(
                &public,
                &shares,
                0,
                b"replay",
                FaultPlan::seeded(99).with_drop(0.3),
                &SessionConfig::fast(),
            )
        };
        match (run(), run()) {
            (Ok((s1, r1, _)), Ok((s2, r2, _))) => {
                assert_eq!(s1, s2);
                assert_eq!(r1.reroutes, r2.reroutes);
            }
            (Err(e1), Err(e2)) => assert_eq!(e1, e2),
            (a, b) => panic!(
                "runs diverged: {:?} vs {:?}",
                a.map(|(_, r, _)| r),
                b.map(|(_, r, _)| r)
            ),
        }
    }

    #[test]
    fn backoff_is_exponential_and_deadline_covers_it() {
        let cfg = SessionConfig {
            round_timeout: Duration::from_millis(100),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(10));
        assert_eq!(cfg.backoff_for(2), Duration::from_millis(20));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(40));
        let worst = cfg.round_timeout * 4 + Duration::from_millis(70);
        assert!(cfg.session_deadline() >= worst);
    }
}
