//! Full-domain hashing: deterministic encoding of a message as a residue
//! modulo `N`.
//!
//! Joint and threshold signatures need every co-signer to exponentiate the
//! *same* representative of the message, so we use an MGF1-style
//! counter-expanded SHA-256 full-domain hash truncated to `bit_len(N) - 1`
//! bits. Conventional [`crate::rsa`] signatures reuse the same encoding so a
//! verifier does not care which scheme produced a signature.

use jaap_bigint::Nat;

use crate::sha256::Sha256;

/// Domain-separation prefix so FDH outputs can never collide with key ids.
const DOMAIN: &[u8] = b"jaap-fdh-v1";

/// Encodes `msg` as a natural number in `[2, 2^(bits-1))` where
/// `bits = modulus.bit_len()`.
///
/// The low end is clamped away from `0`/`1` because those fixed points make
/// degenerate "signatures" (`0^d = 0`, `1^d = 1`).
///
/// # Panics
///
/// Panics if `modulus` has fewer than 16 bits.
#[must_use]
pub fn encode(msg: &[u8], modulus: &Nat) -> Nat {
    let bits = modulus.bit_len();
    assert!(bits >= 16, "modulus too small for full-domain hashing");
    let out_bits = bits - 1;
    let out_bytes = out_bits.div_ceil(8);

    let mut stream = Vec::with_capacity(out_bytes + 32);
    let mut counter = 0u32;
    while stream.len() < out_bytes {
        let mut h = Sha256::new();
        h.update(DOMAIN);
        h.update(&counter.to_be_bytes());
        h.update(msg);
        stream.extend_from_slice(&h.finalize());
        counter += 1;
    }
    stream.truncate(out_bytes);

    let mut value = Nat::from_bytes_be(&stream);
    // Mask down to exactly out_bits.
    for i in out_bits..value.bit_len() {
        value.set_bit(i, false);
    }
    if value < Nat::two() {
        value = Nat::two();
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulus_bits(bits: usize) -> Nat {
        Nat::one().shl_bits(bits - 1) // any value with that bit length
    }

    #[test]
    fn output_strictly_below_half_modulus_bits() {
        let m = modulus_bits(256);
        for msg in [&b""[..], b"x", b"a longer message body"] {
            let e = encode(msg, &m);
            assert!(e.bit_len() <= 255);
            assert!(e >= Nat::two());
        }
    }

    #[test]
    fn deterministic() {
        let m = modulus_bits(512);
        assert_eq!(encode(b"msg", &m), encode(b"msg", &m));
    }

    #[test]
    fn distinct_messages_distinct_encodings() {
        let m = modulus_bits(512);
        assert_ne!(encode(b"msg-a", &m), encode(b"msg-b", &m));
    }

    #[test]
    fn counter_expansion_covers_large_moduli() {
        // 2048-bit modulus needs 8 SHA-256 blocks of stream.
        let m = modulus_bits(2048);
        let e = encode(b"big", &m);
        assert!(e.bit_len() > 1900, "should fill most of the domain");
    }

    #[test]
    fn encoding_depends_on_modulus_size_not_value() {
        let m1 = modulus_bits(256);
        let m2 = &modulus_bits(256) + &Nat::from(12345u64);
        assert_eq!(encode(b"m", &m1), encode(b"m", &m2));
        let m3 = modulus_bits(257);
        assert_ne!(encode(b"m", &m1), encode(b"m", &m3));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_modulus_panics() {
        let _ = encode(b"m", &Nat::from(255u64));
    }
}
