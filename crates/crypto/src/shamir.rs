//! Shamir secret sharing, in two flavors:
//!
//! * [`field`] — over a prime field `F_p`. Used by the BGW-style share
//!   multiplication inside Boneh–Franklin key generation (the modulus
//!   `N = pq` is reconstructed publicly from degree-2t product shares).
//! * [`integer`] — over the integers with Shoup's `Δ = n!` scaling. Used by
//!   the m-of-n threshold signature scheme (§3.3), where no party may learn
//!   `φ(N)` and hence shares cannot be reduced modulo anything.

use jaap_bigint::{random_below, Int, Nat};
use rand::RngCore;

/// Shamir sharing over a prime field.
pub mod field {
    use super::{random_below, Nat, RngCore};

    /// A share: the evaluation of the secret polynomial at `x = index + 1`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FieldShare {
        /// Party index (evaluation point is `index + 1`).
        pub index: usize,
        /// Share value in `F_p`.
        pub value: Nat,
    }

    /// Splits `secret` into `n` shares with reconstruction threshold
    /// `degree + 1` over `F_p`.
    ///
    /// # Panics
    ///
    /// Panics if `secret >= p`, `n == 0`, or `degree >= n`.
    #[must_use]
    pub fn share(
        rng: &mut dyn RngCore,
        secret: &Nat,
        degree: usize,
        n: usize,
        p: &Nat,
    ) -> Vec<FieldShare> {
        assert!(secret < p, "secret must be reduced mod p");
        assert!(n > 0 && degree < n, "need degree < n shares");
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(secret.clone());
        for _ in 0..degree {
            coeffs.push(random_below(rng, p));
        }
        (0..n)
            .map(|index| {
                let x = Nat::from(index as u64 + 1);
                FieldShare {
                    index,
                    value: eval_poly(&coeffs, &x, p),
                }
            })
            .collect()
    }

    fn eval_poly(coeffs: &[Nat], x: &Nat, p: &Nat) -> Nat {
        // Horner's rule.
        let mut acc = Nat::zero();
        for c in coeffs.iter().rev() {
            acc = acc.mulm(x, p).addm(c, p);
        }
        acc
    }

    /// Interpolates the polynomial through `shares` at `x = 0`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate share indices or an empty share set.
    #[must_use]
    pub fn interpolate_at_zero(shares: &[FieldShare], p: &Nat) -> Nat {
        assert!(!shares.is_empty(), "cannot interpolate zero shares");
        let mut acc = Nat::zero();
        for (j, sj) in shares.iter().enumerate() {
            let xj = Nat::from(sj.index as u64 + 1);
            let mut num = Nat::one();
            let mut den = Nat::one();
            for (k, sk) in shares.iter().enumerate() {
                if j == k {
                    continue;
                }
                assert_ne!(sj.index, sk.index, "duplicate share index");
                let xk = Nat::from(sk.index as u64 + 1);
                num = num.mulm(&xk, p); // (0 - xk) contributes sign below
                den = den.mulm(&xk.subm(&xj, p), p); // (xk - xj)
            }
            // λ_j = Π xk / Π (xk - xj): the (-1)^(m-1) signs of numerator and
            // denominator cancel when written this way.
            let lagrange = num.mulm(&den.modinv(p).expect("distinct points"), p);
            acc = acc.addm(&sj.value.mulm(&lagrange, p), p);
        }
        acc
    }

    /// Pointwise product of two share vectors (each party multiplies its own
    /// shares). The result encodes the product polynomial of doubled degree.
    #[must_use]
    pub fn pointwise_mul(a: &[FieldShare], b: &[FieldShare], p: &Nat) -> Vec<FieldShare> {
        a.iter()
            .zip(b)
            .map(|(sa, sb)| {
                assert_eq!(sa.index, sb.index, "mismatched share vectors");
                FieldShare {
                    index: sa.index,
                    value: sa.value.mulm(&sb.value, p),
                }
            })
            .collect()
    }

    /// Pointwise sum of share vectors: shares of the sum of the secrets.
    #[must_use]
    pub fn pointwise_add(a: &[FieldShare], b: &[FieldShare], p: &Nat) -> Vec<FieldShare> {
        a.iter()
            .zip(b)
            .map(|(sa, sb)| {
                assert_eq!(sa.index, sb.index, "mismatched share vectors");
                FieldShare {
                    index: sa.index,
                    value: sa.value.addm(&sb.value, p),
                }
            })
            .collect()
    }
}

/// Shamir sharing over the integers with `Δ = n!` scaling (Shoup).
pub mod integer {
    use super::{Int, Nat, RngCore};
    use jaap_bigint::random_nat;

    /// An integer share: evaluation of `f` at `x = index + 1` where
    /// `f(0) = Δ · secret`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IntShare {
        /// Party index (evaluation point is `index + 1`).
        pub index: usize,
        /// Share value (a possibly negative integer).
        pub value: Int,
    }

    /// `Δ = n!`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (the factorial would not matter for any realistic
    /// coalition and keeps exponent sizes sane).
    #[must_use]
    pub fn delta(n: usize) -> Nat {
        assert!(n <= 20, "coalition size capped at 20 for Δ = n!");
        let mut acc = Nat::one();
        for i in 2..=n as u64 {
            acc = acc.mul_u64(i);
        }
        acc
    }

    /// Shares `secret` m-of-n over the integers: `f(0) = Δ·secret`, random
    /// coefficients bounded by `Δ² · coeff_bound`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `m > n`, or `n == 0`.
    #[must_use]
    pub fn share(
        rng: &mut dyn RngCore,
        secret: &Int,
        m: usize,
        n: usize,
        coeff_bound_bits: usize,
    ) -> Vec<IntShare> {
        assert!(m >= 1 && m <= n && n >= 1, "need 1 <= m <= n");
        let d = delta(n);
        let mut coeffs: Vec<Int> = Vec::with_capacity(m);
        coeffs.push(Int::from_nat(&d * secret.magnitude()));
        if secret.is_negative() {
            coeffs[0] = -&coeffs[0];
        }
        for _ in 1..m {
            coeffs.push(Int::from_nat(random_nat(rng, coeff_bound_bits)));
        }
        (0..n)
            .map(|index| {
                let x = Int::from(index as i64 + 1);
                let mut acc = Int::zero();
                for c in coeffs.iter().rev() {
                    acc = &(&acc * &x) + c;
                }
                IntShare { index, value: acc }
            })
            .collect()
    }

    /// The integer `Δ · λ^S_{0,j}` for the share with party index `j` within
    /// subset `S` (indices). Always an integer by the classic `n!` argument.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in `subset` or the division is inexact (which
    /// would indicate corrupted indices).
    #[must_use]
    pub fn lagrange_delta(subset: &[usize], j: usize, n: usize) -> Int {
        assert!(subset.contains(&j), "j must be in the subset");
        let mut num = Int::from_nat(delta(n));
        let mut den = Int::one();
        let xj = j as i64 + 1;
        for &k in subset {
            if k == j {
                continue;
            }
            let xk = k as i64 + 1;
            num = &num * &Int::from(-xk);
            den = &den * &Int::from(xj - xk);
        }
        let (q, r) = num.div_rem_euclid(den.magnitude());
        assert!(r.is_zero(), "Δ·λ must be an integer");
        if den.is_negative() {
            -q
        } else {
            q
        }
    }

    /// Reconstructs `Δ² · secret` from any `m` shares out of the original
    /// `n`-share split.
    ///
    /// # Panics
    ///
    /// Panics on duplicate indices.
    #[must_use]
    pub fn reconstruct_delta2_secret(shares: &[IntShare], n: usize) -> Int {
        let subset: Vec<usize> = shares.iter().map(|s| s.index).collect();
        let mut acc = Int::zero();
        for s in shares {
            let coeff = lagrange_delta(&subset, s.index, n);
            acc = &acc + &(&coeff * &s.value);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    mod field_tests {
        use super::super::field::*;
        use super::*;

        fn p() -> Nat {
            Nat::from(1_000_000_007u64)
        }

        #[test]
        fn share_and_reconstruct() {
            let secret = Nat::from(123_456u64);
            let shares = share(&mut rng(), &secret, 2, 5, &p());
            assert_eq!(shares.len(), 5);
            assert_eq!(interpolate_at_zero(&shares[..3], &p()), secret);
            assert_eq!(interpolate_at_zero(&shares[1..4], &p()), secret);
            assert_eq!(interpolate_at_zero(&shares, &p()), secret);
        }

        #[test]
        fn too_few_shares_give_wrong_secret() {
            let secret = Nat::from(777u64);
            let shares = share(&mut rng(), &secret, 2, 5, &p());
            // Degree-2 polynomial from 2 points: almost surely wrong.
            assert_ne!(interpolate_at_zero(&shares[..2], &p()), secret);
        }

        #[test]
        fn degree_zero_is_replication() {
            let secret = Nat::from(42u64);
            let shares = share(&mut rng(), &secret, 0, 3, &p());
            for s in &shares {
                assert_eq!(s.value, secret);
            }
        }

        #[test]
        fn additive_homomorphism() {
            let mut r = rng();
            let a = Nat::from(100u64);
            let b = Nat::from(233u64);
            let sa = share(&mut r, &a, 1, 3, &p());
            let sb = share(&mut r, &b, 1, 3, &p());
            let sum_shares = pointwise_add(&sa, &sb, &p());
            assert_eq!(interpolate_at_zero(&sum_shares[..2], &p()), &a + &b);
        }

        #[test]
        fn multiplicative_homomorphism_with_degree_doubling() {
            // Degree t shares, pointwise multiply -> degree 2t; with
            // n >= 2t+1 shares the product reconstructs.
            let mut r = rng();
            let a = Nat::from(65_537u64);
            let b = Nat::from(99_991u64);
            let sa = share(&mut r, &a, 1, 3, &p());
            let sb = share(&mut r, &b, 1, 3, &p());
            let prod = pointwise_mul(&sa, &sb, &p());
            assert_eq!(interpolate_at_zero(&prod, &p()), (&a * &b).rem_nat(&p()));
        }

        #[test]
        #[should_panic(expected = "reduced mod p")]
        fn oversized_secret_panics() {
            let _ = share(&mut rng(), &(&p() + &Nat::one()), 1, 3, &p());
        }

        #[test]
        #[should_panic(expected = "duplicate share index")]
        fn duplicate_indices_panic() {
            let secret = Nat::from(5u64);
            let shares = share(&mut rng(), &secret, 1, 3, &p());
            let dup = vec![shares[0].clone(), shares[0].clone()];
            let _ = interpolate_at_zero(&dup, &p());
        }
    }

    mod integer_tests {
        use super::super::integer::*;
        use super::*;

        #[test]
        fn delta_factorials() {
            assert_eq!(delta(1), Nat::one());
            assert_eq!(delta(3), Nat::from(6u64));
            assert_eq!(delta(5), Nat::from(120u64));
        }

        #[test]
        fn lagrange_delta_is_exact_for_all_subsets_of_5() {
            // Exhaustive over 3-subsets of {0..5}: the assert inside
            // lagrange_delta proves integrality.
            let n = 5;
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        let subset = [a, b, c];
                        for &j in &subset {
                            let _ = lagrange_delta(&subset, j, n);
                        }
                    }
                }
            }
        }

        #[test]
        fn reconstructs_delta2_secret_from_any_m_shares() {
            let n = 5;
            let m = 3;
            let secret = Int::from(987_654_321i64);
            let shares = share(&mut rng(), &secret, m, n, 128);
            let d = delta(n);
            let expect = &Int::from_nat(&d * &d) * &secret;
            assert_eq!(reconstruct_delta2_secret(&shares[..3], n), expect);
            assert_eq!(reconstruct_delta2_secret(&shares[2..5], n), expect);
            let picked = vec![shares[0].clone(), shares[2].clone(), shares[4].clone()];
            assert_eq!(reconstruct_delta2_secret(&picked, n), expect);
        }

        #[test]
        fn negative_secret_supported() {
            let n = 4;
            let secret = Int::from(-31337i64);
            let shares = share(&mut rng(), &secret, 2, n, 64);
            let d = delta(n);
            let expect = &Int::from_nat(&d * &d) * &secret;
            assert_eq!(reconstruct_delta2_secret(&shares[1..3], n), expect);
        }

        #[test]
        fn share_sums_are_shares_of_sums() {
            // Additive homomorphism underpins the dealer-free conversion.
            let n = 4;
            let m = 2;
            let s1 = Int::from(1000i64);
            let s2 = Int::from(-400i64);
            let mut r = rng();
            let sh1 = share(&mut r, &s1, m, n, 64);
            let sh2 = share(&mut r, &s2, m, n, 64);
            let combined: Vec<IntShare> = sh1
                .iter()
                .zip(&sh2)
                .map(|(a, b)| IntShare {
                    index: a.index,
                    value: &a.value + &b.value,
                })
                .collect();
            let d = delta(n);
            let expect = &Int::from_nat(&d * &d) * &(&s1 + &s2);
            assert_eq!(reconstruct_delta2_secret(&combined[..2], n), expect);
        }

        #[test]
        #[should_panic(expected = "1 <= m <= n")]
        fn zero_threshold_panics() {
            let _ = share(&mut rng(), &Int::one(), 0, 3, 64);
        }
    }
}
