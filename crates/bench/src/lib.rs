//! Shared helpers for the experiment benches (see EXPERIMENTS.md).

pub mod loadgen;
pub mod overload;

use jaap_coalition::scenario::{Coalition, CoalitionBuilder};

/// Builds the standard Figure 1 coalition used across benches.
///
/// # Panics
///
/// Panics if construction fails (benches treat that as fatal).
#[must_use]
pub fn standard_coalition(key_bits: usize, seed: u64) -> Coalition {
    CoalitionBuilder::new()
        .domains(&["D1", "D2", "D3"])
        .key_bits(key_bits)
        .seed(seed)
        .build()
        .expect("coalition construction")
}

/// Builds a coalition with `n` domains and the given write threshold.
///
/// # Panics
///
/// Panics if construction fails.
#[must_use]
pub fn coalition_of(n: usize, write_threshold: usize, key_bits: usize, seed: u64) -> Coalition {
    let names: Vec<String> = (1..=n).map(|i| format!("D{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    CoalitionBuilder::new()
        .domains(&refs)
        .write_threshold(write_threshold)
        .key_bits(key_bits)
        .seed(seed)
        .build()
        .expect("coalition construction")
}

/// Prints a markdown-ish table header used by the experiment tables.
pub fn table_header(title: &str, columns: &[&str]) {
    println!("\n### {title}");
    println!("{}", columns.join(" | "));
    println!(
        "{}",
        columns
            .iter()
            .map(|_| "---")
            .collect::<Vec<_>>()
            .join(" | ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let mut c = standard_coalition(192, 1);
        assert!(c.request_read(&["User_D1"]).expect("read").granted);
        let c5 = coalition_of(5, 3, 192, 2);
        assert_eq!(c5.domains().len(), 5);
    }
}
