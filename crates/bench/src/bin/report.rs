//! One-command reproduction: regenerates every experiment table from
//! EXPERIMENTS.md and writes `REPORT.md`.
//!
//! ```sh
//! cargo run --release -p jaap-bench --bin report
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use jaap_bench::{coalition_of, standard_coalition};
use jaap_coalition::availability;
use jaap_coalition::liability::{exposure_probability, min_compromises, Scheme};
use jaap_core::syntax::Time;
use jaap_crypto::shared::SharedRsaKey;
use jaap_crypto::{collusion, joint};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// First numeric value following `"key":` in a flat JSON record — enough
/// for the single-level bench records this binary reads, with no JSON
/// dependency.
fn json_number(src: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &src[src.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::new();
    writeln!(out, "# REPORT — regenerated experiment tables\n")?;
    writeln!(
        out,
        "Produced by `cargo run --release -p jaap-bench --bin report`. \
         See EXPERIMENTS.md for the paper-vs-measured discussion.\n"
    )?;

    // E4: keygen.
    writeln!(out, "## E4 — distributed shared key generation\n")?;
    writeln!(out, "| bits | n | wall | candidates | messages |")?;
    writeln!(out, "|---|---|---|---|---|")?;
    for bits in [128usize, 256, 384] {
        let start = Instant::now();
        let (_p, _s, stats) = SharedRsaKey::generate(bits, 3, 42 + bits as u64)?;
        writeln!(
            out,
            "| {bits} | 3 | {:?} | {} | {} |",
            start.elapsed(),
            stats.candidates_tried,
            stats.network.messages_sent
        )?;
    }

    // E5: signatures + ratio.
    writeln!(out, "\n## E5 — joint signature cost and keygen ratio\n")?;
    writeln!(out, "| bits | n | signature | keygen/signature |")?;
    writeln!(out, "|---|---|---|---|")?;
    for bits in [128usize, 256] {
        let kg_start = Instant::now();
        let (public, shares, _) = SharedRsaKey::generate(bits, 3, 7)?;
        let keygen = kg_start.elapsed();
        let start = Instant::now();
        let iters = 20u32;
        for i in 0..iters {
            let msg = format!("m{i}");
            let _ = joint::sign_locally(&public, &shares, msg.as_bytes())?;
        }
        let sig = start.elapsed() / iters;
        writeln!(
            out,
            "| {bits} | 3 | {sig:?} | {:.0}x |",
            keygen.as_secs_f64() / sig.as_secs_f64()
        )?;
    }

    // E6: availability.
    writeln!(out, "\n## E6 — m-of-n availability (p_up = 0.95)\n")?;
    writeln!(out, "| n | n-of-n | majority | gain |")?;
    writeln!(out, "|---|---|---|---|")?;
    for n in [3usize, 5, 7, 9] {
        let full = availability::analytic(n, n, 0.95);
        let maj = availability::analytic(n, n / 2 + 1, 0.95);
        writeln!(out, "| {n} | {full:.4} | {maj:.4} | {:.2}x |", maj / full)?;
    }

    // E7: liability.
    writeln!(out, "\n## E7 — trust liability (q = 0.05, n = 3)\n")?;
    writeln!(out, "| scheme | min compromises | exposure |")?;
    writeln!(out, "|---|---|---|")?;
    for (label, scheme) in [
        ("Case I lockbox", Scheme::CaseILockbox { n: 3 }),
        (
            "Case I, 3 replicas",
            Scheme::CaseIReplicated { n: 3, replicas: 3 },
        ),
        ("Case II 2-of-3", Scheme::CaseIIThreshold { m: 2, n: 3 }),
        ("Case II 3-of-3", Scheme::CaseIIShared { n: 3 }),
    ] {
        writeln!(
            out,
            "| {label} | {} | {:.2e} |",
            min_compromises(scheme),
            exposure_probability(scheme, 0.05)
        )?;
    }

    // E11: collusion with real key material.
    writeln!(out, "\n## E11 — collusion (192-bit shared key, n = 3)\n")?;
    writeln!(out, "| colluders | key recovered |")?;
    writeln!(out, "|---|---|")?;
    let mut rng = StdRng::seed_from_u64(5);
    let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3)?;
    for k in 1..=3usize {
        let pooled: Vec<_> = shares[..k].iter().collect();
        writeln!(
            out,
            "| {k} | {} |",
            collusion::collude_additive(&public, &pooled).is_compromised()
        )?;
    }

    // E2/E8: authorization decisions and costs.
    writeln!(
        out,
        "\n## E2/E8 — authorization decisions (2-of-3 writes)\n"
    )?;
    writeln!(out, "| request | decision | axiom apps | sig checks |")?;
    writeln!(out, "|---|---|---|---|")?;
    let mut c = standard_coalition(256, 31);
    for (label, signers) in [
        ("write 2-of-3", vec!["User_D1", "User_D2"]),
        ("write 1 signer", vec!["User_D1"]),
        ("read 1-of-3", vec!["User_D3"]),
    ] {
        let d = if label.starts_with("read") {
            c.request_read(&signers)?
        } else {
            c.request_write(&signers)?
        };
        writeln!(
            out,
            "| {label} | {} | {} | {} |",
            if d.granted { "GRANT" } else { "DENY" },
            d.axiom_applications,
            d.signature_checks
        )?;
    }

    // E9: revocation.
    writeln!(out, "\n## E9 — revocation series\n")?;
    writeln!(out, "| phase | write decision |")?;
    writeln!(out, "|---|---|")?;
    let mut c = standard_coalition(256, 32);
    let before = c.request_write(&["User_D1", "User_D2"])?;
    writeln!(
        out,
        "| before revocation | {} |",
        if before.granted { "GRANT" } else { "DENY" }
    )?;
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20))?;
    c.advance_time(Time(21)).expect("clock");
    let after = c.request_write(&["User_D1", "User_D2"])?;
    writeln!(
        out,
        "| after revocation | {} |",
        if after.granted { "GRANT" } else { "DENY" }
    )?;

    // E10: dynamics.
    writeln!(out, "\n## E10 — coalition dynamics (join costs)\n")?;
    writeln!(out, "| n after join | rekey | revoked | reissued |")?;
    writeln!(out, "|---|---|---|---|")?;
    let mut c = coalition_of(3, 2, 192, 41);
    for i in 4..=6 {
        let r = c.join_domain(&format!("D{i}"))?;
        writeln!(
            out,
            "| {} | {:?} | {} | {} |",
            r.domain_count, r.rekey_wall, r.certs_revoked, r.certs_reissued
        )?;
    }

    // E13→E22 trajectory: one headline number per committed bench record
    // (`BENCH_e*.json`, written by the CI smoke runs), so the report shows
    // how the stack's performance story developed without re-running the
    // long benches.
    writeln!(out, "\n## E13→E22 — committed bench-record trajectory\n")?;
    writeln!(out, "| record | headline |")?;
    writeln!(out, "|---|---|")?;
    for (file, label, key, unit) in [
        (
            "BENCH_e13.json",
            "E13 journal recovery",
            "recover_ms",
            " ms",
        ),
        ("BENCH_e14.json", "E14 decision throughput", "rps", " rps"),
        (
            "BENCH_e15.json",
            "E15 observability overhead",
            "overhead_pct",
            " %",
        ),
        (
            "BENCH_e16.json",
            "E16 warm logic speedup (memo on)",
            "warm_logic_speedup",
            "x",
        ),
        (
            "BENCH_e17.json",
            "E17 journaled decision rate",
            "journaled_rps",
            " rps",
        ),
        (
            "BENCH_e18.json",
            "E18 log shipping",
            "ship_us_per_record",
            " us/record",
        ),
        (
            "BENCH_e19.json",
            "E19 sharded baseline",
            "baseline_rps",
            " rps",
        ),
        ("BENCH_e20.json", "E20 crypto-path speedup", "speedup", "x"),
        (
            "BENCH_e21.json",
            "E21 open-loop sustained rate",
            "achieved_rps",
            " rps",
        ),
        (
            "BENCH_e22.json",
            "E22 overdriven goodput",
            "overdrive_goodput_rps",
            " rps",
        ),
    ] {
        match std::fs::read_to_string(file) {
            Ok(src) => {
                let shown = json_number(&src, key)
                    .map_or_else(|| "?".to_string(), |v| format!("{v}{unit}"));
                writeln!(out, "| {label} | {shown} |")?;
            }
            Err(_) => writeln!(out, "| {label} | (record not committed) |")?,
        }
    }
    if let Ok(src) = std::fs::read_to_string("BENCH_e21.json") {
        if let (Some(p99), Some(resident), Some(principals)) = (
            json_number(&src, "p99_us"),
            json_number(&src, "resident_peak_bytes"),
            json_number(&src, "principals"),
        ) {
            writeln!(
                out,
                "| E21 detail | {principals} principals, p99 {p99} us, \
                 resident peak {:.0} KiB |",
                resident / 1024.0
            )?;
        }
    }
    if let Ok(src) = std::fs::read_to_string("BENCH_e22.json") {
        if let (Some(shed), Some(p99), Some(probes)) = (
            json_number(&src, "overdrive_shed_overloaded"),
            json_number(&src, "overdrive_p99_us"),
            json_number(&src, "probes_matched"),
        ) {
            writeln!(
                out,
                "| E22 detail | {shed} typed Overloaded sheds under 2x \
                 overdrive, accepted p99 {p99} us, {probes} recovery twin \
                 probes identical |"
            )?;
        }
    }

    std::fs::write("REPORT.md", &out)?;
    println!("{out}");
    println!("(written to REPORT.md)");
    Ok(())
}
