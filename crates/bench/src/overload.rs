//! Concurrent open-loop overload driver (E22).
//!
//! Drives a [`ConcurrentServer`] from `lanes` independent worker threads
//! against a precomputed arrival schedule — lane `w` owns arrivals
//! `w, w + lanes, w + 2·lanes, …` and sleeps/yields until each one's
//! scheduled instant before calling `decide`. The discipline stays
//! open-loop: the
//! offered times are fixed up front, so a lane that falls behind its own
//! schedule is carrying queueing delay, and that delay spends the
//! request's deadline budget.
//!
//! The lane count is deliberately set *above* the server's in-flight
//! limit when probing overload: while offered load fits capacity most
//! lanes sit idle waiting for their slots, but during a square-wave
//! overdrive burst more lanes go active than the admission gate allows,
//! and the excess comes back as typed [`ShedReason::Overloaded`]
//! decisions — the behaviour E22 prices. Accepted (actually evaluated)
//! decisions record scheduled-arrival → completion latency; sheds are
//! tallied by reason, never mixed into the accepted percentiles.

use std::time::{Duration, Instant};

use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::request::JointAccessRequest;
use jaap_coalition::server::ShedReason;
use jaap_obs::Histogram;

use crate::loadgen::{arrival_schedule, BurstProfile};

/// Overload-driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Arrivals to offer.
    pub requests: usize,
    /// Base arrival rate (requests per second).
    pub rate_per_sec: f64,
    /// Square-wave overdrive bursts layered on the base rate.
    pub burst: Option<BurstProfile>,
    /// Per-request deadline budget from the scheduled arrival.
    pub deadline: Option<Duration>,
    /// Driver threads. Set above the server's in-flight limit to let
    /// bursts actually hit the admission gate.
    pub lanes: usize,
}

/// What one overload run measured.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Arrivals offered (`== config.requests`).
    pub offered: usize,
    /// Evaluated and granted.
    pub granted: usize,
    /// Evaluated and denied by policy.
    pub denied: usize,
    /// Shed at the admission gate (typed `Overloaded`).
    pub shed_overloaded: usize,
    /// Shed at a deadline phase boundary (typed `DeadlineExceeded`).
    pub shed_deadline: usize,
    /// Shed for any other typed reason (e.g. poisoned journal).
    pub shed_other: usize,
    /// Accepted-decision latency percentiles, scheduled arrival →
    /// completion (µs). Sheds are excluded — they are refusals, not
    /// service.
    pub accepted_p50_us: u64,
    /// 99th percentile accepted latency (µs).
    pub accepted_p99_us: u64,
    /// Worst accepted latency (µs).
    pub accepted_max_us: u64,
    /// Evaluated decisions per wall-clock second (the goodput).
    pub accepted_rps: f64,
    /// Whole-run wall time (seconds).
    pub elapsed_s: f64,
}

impl OverloadReport {
    /// Decisions that were actually evaluated (granted or denied).
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.granted + self.denied
    }

    /// All typed sheds.
    #[must_use]
    pub fn shed(&self) -> usize {
        self.shed_overloaded + self.shed_deadline + self.shed_other
    }
}

/// Per-lane tally, merged after the scope joins.
#[derive(Debug, Default, Clone, Copy)]
struct LaneTally {
    granted: usize,
    denied: usize,
    shed_overloaded: usize,
    shed_deadline: usize,
    shed_other: usize,
}

/// Drives `server` open-loop from `config.lanes` threads, drawing
/// requests round-robin from the pre-built (already signed) `pool`.
///
/// The caller configures the server first — in-flight limit, replay
/// protection off (pool requests repeat), caches as desired.
///
/// # Panics
///
/// Panics when `pool` is empty or `lanes` is zero.
#[must_use]
pub fn run_overload(
    server: &ConcurrentServer,
    pool: &[JointAccessRequest],
    config: &OverloadConfig,
) -> OverloadReport {
    assert!(!pool.is_empty(), "overload driver needs a request pool");
    assert!(config.lanes > 0, "overload driver needs at least one lane");
    let offsets = arrival_schedule(config.requests, config.rate_per_sec, config.burst.as_ref());
    let accepted_latency = Histogram::new();

    let start = Instant::now();
    let tallies: Vec<LaneTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.lanes)
            .map(|lane| {
                let offsets = &offsets;
                let accepted_latency = &accepted_latency;
                scope.spawn(move || {
                    let mut tally = LaneTally::default();
                    let mut reader = server.reader();
                    let mut i = lane;
                    while i < offsets.len() {
                        let scheduled = start + offsets[i];
                        // Sleep the bulk of the wait, then yield: lanes
                        // must not busy-spin a core the deciding lane
                        // needs (open-loop drivers outnumber cores on
                        // small boxes). Oversleep lands as queueing
                        // delay, which the deadline budget then prices.
                        loop {
                            let now = Instant::now();
                            if now >= scheduled {
                                break;
                            }
                            let remaining = scheduled - now;
                            if remaining > Duration::from_micros(500) {
                                std::thread::sleep(remaining - Duration::from_micros(300));
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        let decision = match config.deadline {
                            Some(budget) => {
                                let req = pool[i % pool.len()]
                                    .clone()
                                    .with_deadline(scheduled + budget);
                                server.decide_with_reader(&mut reader, &req)
                            }
                            None => server.decide_with_reader(&mut reader, &pool[i % pool.len()]),
                        };
                        match decision.shed {
                            Some(ShedReason::Overloaded) => tally.shed_overloaded += 1,
                            Some(ShedReason::DeadlineExceeded) => tally.shed_deadline += 1,
                            Some(_) => tally.shed_other += 1,
                            None => {
                                accepted_latency.record_duration(scheduled.elapsed());
                                if decision.granted {
                                    tally.granted += 1;
                                } else {
                                    tally.denied += 1;
                                }
                            }
                        }
                        i += config.lanes;
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overload lane"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut merged = LaneTally::default();
    for t in &tallies {
        merged.granted += t.granted;
        merged.denied += t.denied;
        merged.shed_overloaded += t.shed_overloaded;
        merged.shed_deadline += t.shed_deadline;
        merged.shed_other += t.shed_other;
    }
    let snap = accepted_latency.snapshot();
    let accepted = merged.granted + merged.denied;
    OverloadReport {
        offered: config.requests,
        granted: merged.granted,
        denied: merged.denied,
        shed_overloaded: merged.shed_overloaded,
        shed_deadline: merged.shed_deadline,
        shed_other: merged.shed_other,
        accepted_p50_us: snap.p50 / 1_000,
        accepted_p99_us: snap.p99 / 1_000,
        accepted_max_us: snap.max / 1_000,
        accepted_rps: accepted as f64 / elapsed_s,
        elapsed_s,
    }
}

/// Measures the server's closed-loop single-rate capacity: `lanes`
/// threads decide `requests` pool entries flat-out, no schedule, no
/// deadlines. The returned rate is the calibration baseline the E22
/// goodput floor is expressed against.
///
/// # Panics
///
/// Panics when `pool` is empty or `lanes` is zero.
#[must_use]
pub fn calibrate_capacity(
    server: &ConcurrentServer,
    pool: &[JointAccessRequest],
    requests: usize,
    lanes: usize,
) -> f64 {
    assert!(!pool.is_empty() && lanes > 0, "bad calibration inputs");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for lane in 0..lanes {
            scope.spawn(move || {
                let mut reader = server.reader();
                let mut i = lane;
                while i < requests {
                    let _ = server.decide_with_reader(&mut reader, &pool[i % pool.len()]);
                    i += lanes;
                }
            });
        }
    });
    requests as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_coalition;
    use jaap_core::protocol::Operation;

    #[test]
    fn overdriven_run_sheds_typed_and_accepted_books_balance() {
        let mut c = standard_coalition(192, 0xE22);
        c.server_mut().set_replay_protection(false).expect("config");
        let req = c
            .build_request(&["User_D1", "User_D2"], Operation::new("read", "Object O"))
            .expect("request");
        let server = ConcurrentServer::new(c.into_server());
        server.set_inflight_limit(1);
        let config = OverloadConfig {
            requests: 64,
            rate_per_sec: 100_000.0,
            burst: None,
            deadline: None,
            lanes: 4,
        };
        // Occupy the gate's only slot for the whole run: every arrival
        // must come back as a typed Overloaded shed, never queued. (A
        // held permit, not scheduling luck, makes this deterministic on
        // any core count.)
        let hold = server.acquire_slot().expect("empty gate");
        let report = run_overload(&server, std::slice::from_ref(&req), &config);
        assert_eq!(report.offered, 64);
        assert_eq!(report.shed_overloaded, 64, "full gate sheds every arrival");
        assert_eq!(report.accepted(), 0);
        assert_eq!(report.shed_other, 0);
        // The lock-free shed path audits into the bounded ring, typed.
        let shed_lines = server.shed_audit();
        assert_eq!(shed_lines.len(), report.shed());
        assert!(shed_lines.iter().all(|e| e.shed.is_some() && !e.granted));

        // Release the slot: the same offered load is now served — the
        // first decide against an empty gate is always admitted, and
        // every arrival still books as exactly one accept or shed.
        drop(hold);
        let report = run_overload(&server, &[req], &config);
        assert_eq!(
            report.accepted() + report.shed(),
            64,
            "every arrival accounted"
        );
        assert!(report.accepted() > 0, "the admitted lane must serve");
        assert_eq!(report.shed_other, 0);
    }
}
