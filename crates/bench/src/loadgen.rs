//! Open-loop load generator over a persistent certified population (E21).
//!
//! Builds a synthetic coalition population of N principals — each with a
//! CA-issued identity certificate and an AA-issued `G_read` attribute
//! certificate — persisted into a [`CertStore`], then drives the server
//! at a **fixed arrival rate**: request *i* is scheduled at
//! `start + i/λ` regardless of how fast the server drains, and latency
//! is measured from the scheduled arrival to completion, so queueing
//! delay under overload is visible (the open-loop discipline; a
//! closed-loop driver would hide it by slowing its own offer rate).
//!
//! Principal popularity is Zipf-distributed: the hot head stays warm in
//! the verify cache and page cache while the cold tail forces the store
//! to page certificate bodies in from its cold tier — the working-set
//! split the paged store exists for. Membership churn mints fresh
//! principals mid-run, and revocation storms push CRLs revoking
//! cold-tail principals through the server at fixed intervals.
//!
//! Every principal signs with a **unique modulus**: prime search at
//! population scale would dominate setup, so a small pool of `key_pool`
//! generated keypairs is factored into `2·key_pool` distinct primes and
//! each principal's keypair is derived from a distinct prime *pair* via
//! [`RsaKeyPair::from_primes`] (one modular inverse per principal, no
//! prime search). Uniqueness matters: the belief engine binds each key
//! to the principal it speaks for, so sharing keys across principals
//! silently clobbers earlier bindings and denies them.

use std::time::{Duration, Instant};

use jaap_bigint::Nat;
use jaap_coalition::request::{statement_bytes, JointAccessRequest, WireStatement};
use jaap_coalition::scenario::Coalition;
use jaap_core::certs::Validity;
use jaap_core::protocol::Operation;
use jaap_core::syntax::{GroupId, Time};
use jaap_crypto::rsa::RsaKeyPair;
use jaap_obs::Histogram;
use jaap_pki::{AttributeCertificate, CrlEntry, IdentityCertificate, ThresholdSubject};
use jaap_store::{CertStore, Column};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The object every generated request reads (registered by the standard
/// coalition builder).
pub const OBJECT: &str = "Object O";

/// Group the population's attribute certificates grant (readable on
/// `Object O` in the standard ACL).
pub const GROUP: &str = "G_read";

/// Zipf sampler over ranks `0..n` via a precomputed CDF and binary
/// search — O(log n) per draw, no floating-point harmonic recomputation
/// on the hot path.
#[derive(Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 is the classic web-popularity skew).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over an empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Maps a uniform draw in `[0, 1)` to a rank in `0..n`.
    #[must_use]
    pub fn sample(&self, uniform: f64) -> usize {
        self.cdf
            .partition_point(|&c| c < uniform)
            .min(self.cdf.len() - 1)
    }
}

/// Uniform f64 in `[0, 1)` from the vendored generator.
fn uniform(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// The synthetic certified population: principal names, the prime pool
/// their moduli are combined from, and one derived keypair each.
#[derive(Debug)]
pub struct Population {
    names: Vec<String>,
    primes: Vec<Nat>,
    keys: Vec<RsaKeyPair>,
    validity: Validity,
}

impl Population {
    /// Issues identity + `G_read` attribute certificates for `n`
    /// principals (round-robin across the coalition's CAs) and persists
    /// every certificate into `store`. Prime search is amortised: only
    /// `key_pool` keypairs are generated; their `2·key_pool` factors
    /// seed the prime pool every principal's unique modulus is combined
    /// from.
    ///
    /// # Panics
    ///
    /// Panics on issuance or store failure (benches treat both as
    /// fatal), or when the prime pool is too small for `n` unique
    /// moduli (raise `key_pool`).
    #[must_use]
    pub fn certify(
        coalition: &Coalition,
        store: &CertStore,
        n: usize,
        key_pool: usize,
        key_bits: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = Nat::from(jaap_crypto::rsa::PUBLIC_EXPONENT);
        let mut primes: Vec<Nat> = Vec::with_capacity(2 * key_pool.max(1));
        for _ in 0..key_pool.max(1) {
            let pair = RsaKeyPair::generate(&mut rng, key_bits).expect("pool keypair");
            let (p, q) = pair.factors();
            for prime in [p.clone(), q.clone()] {
                // Keep only primes with e ∤ (p-1) so every pairing has
                // gcd(e, phi) = 1 and `from_primes` cannot fail.
                if !(&prime - &Nat::one()).rem_nat(&e).is_zero() && !primes.contains(&prime) {
                    primes.push(prime);
                }
            }
        }
        let validity = Validity::new(Time(0), Time(1_000_000));
        let mut pop = Population {
            names: Vec::with_capacity(n),
            primes,
            keys: Vec::with_capacity(n),
            validity,
        };
        for _ in 0..n {
            pop.mint(coalition, store);
        }
        pop
    }

    /// Derives the unique keypair for principal `i`: the `i`-th distinct
    /// unordered pair of pool primes, walked as (offset, gap) so no two
    /// principals share a modulus. A pool of `m` primes covers
    /// `m·⌊(m-1)/2⌋` principals.
    fn derive_keypair(&self, i: usize) -> RsaKeyPair {
        let m = self.primes.len();
        let a = i % m;
        let gap = 1 + i / m;
        assert!(
            gap <= (m - 1) / 2,
            "prime pool of {m} exhausted at principal {i}; raise key_pool"
        );
        let b = (a + gap) % m;
        RsaKeyPair::from_primes(self.primes[a].clone(), self.primes[b].clone())
            .expect("filtered primes always combine")
    }

    /// Mints one more principal (identity + attribute certificate into
    /// the store) — the churn path. Returns its index.
    pub fn mint(&mut self, coalition: &Coalition, store: &CertStore) -> usize {
        let i = self.names.len();
        let name = format!("P{i:07}");
        self.keys.push(self.derive_keypair(i));
        let key = self.keys[i].public().clone();
        let domains = coalition.domains();
        let ca = domains[i % domains.len()].ca();
        let id = ca
            .issue_identity(&name, &key, self.validity, Time(1))
            .expect("issue identity");
        let grant = coalition
            .aa()
            .issue_attribute_certificate(&name, &key, GroupId::new(GROUP), self.validity, Time(6))
            .expect("issue attribute certificate");
        store.put_identity_cert(&id).expect("store identity");
        store.put_attribute_cert(&grant).expect("store grant");
        self.names.push(name);
        i
    }

    /// Number of certified principals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no principals have been certified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The principal name at `index`.
    #[must_use]
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// The keypair principal `index` signs with.
    #[must_use]
    pub fn keypair(&self, index: usize) -> &RsaKeyPair {
        &self.keys[index]
    }

    /// Builds a read request for principal `index`, fetching its
    /// certificate bodies back out of the indexed store — the lookup the
    /// experiment prices: hot principals come from resident pages, the
    /// cold tail forces a cold-tier read.
    ///
    /// # Panics
    ///
    /// Panics when the store is missing the principal's rows.
    #[must_use]
    pub fn build_read(&self, store: &CertStore, index: usize, at: Time) -> JointAccessRequest {
        let name = &self.names[index];
        let id: IdentityCertificate = store
            .identity_by_subject(name)
            .expect("store read")
            .expect("identity row");
        let grant: AttributeCertificate = store
            .attribute_grant(name, GROUP)
            .expect("store read")
            .expect("grant row");
        let operation = Operation::new("read", OBJECT);
        let body = statement_bytes(name, &operation, at);
        let signature = self.keypair(index).sign(&body).expect("statement sign");
        JointAccessRequest {
            identity_certs: vec![id],
            threshold_certs: vec![],
            attribute_certs: vec![grant],
            statements: vec![WireStatement {
                principal: name.clone(),
                at,
                signature,
            }],
            operation,
            at,
            deadline: None,
        }
    }

    /// A single-member threshold subject for principal `index` (the form
    /// CRL entries carry).
    #[must_use]
    pub fn crl_subject(&self, index: usize) -> ThresholdSubject {
        ThresholdSubject::new(
            vec![(
                self.names[index].clone(),
                self.keypair(index).public().clone(),
            )],
            1,
        )
        .expect("single-member subject")
    }
}

/// Square-wave overdrive: arrival rates alternate every `half_period`
/// between the configured base rate and `overdrive x` that rate. The E22
/// overload experiment drives 2x bursts against a server calibrated at
/// its single-rate capacity.
#[derive(Debug, Clone, Copy)]
pub struct BurstProfile {
    /// Multiplier applied to the base rate during the high half-period.
    pub overdrive: f64,
    /// Length of each half-period (low, then high, then low, ...).
    pub half_period: Duration,
}

/// Precomputes open-loop arrival offsets: request `i` is offered at
/// `start + offsets[i]` no matter how fast the server drains (the
/// open-loop discipline). With a burst profile the offsets follow the
/// square wave; without one they are a constant-rate lattice.
#[must_use]
pub fn arrival_schedule(
    requests: usize,
    rate_per_sec: f64,
    burst: Option<&BurstProfile>,
) -> Vec<Duration> {
    let mut out = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    for _ in 0..requests {
        let rate = match burst {
            Some(b) => {
                let phase = (t / b.half_period.as_secs_f64()) as u64;
                if phase % 2 == 1 {
                    rate_per_sec * b.overdrive
                } else {
                    rate_per_sec
                }
            }
            None => rate_per_sec,
        };
        out.push(Duration::from_secs_f64(t));
        t += 1.0 / rate;
    }
    out
}

/// Open-loop driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Requests to offer.
    pub requests: usize,
    /// Base arrival rate (requests per second).
    pub rate_per_sec: f64,
    /// Square-wave overdrive bursts layered on the base rate (`None` =
    /// constant rate).
    pub burst: Option<BurstProfile>,
    /// Per-request deadline budget, measured from the *scheduled*
    /// arrival — queueing delay spends it. `None` = no deadlines.
    pub deadline: Option<Duration>,
    /// Zipf exponent over the principal population.
    pub zipf_exponent: f64,
    /// Mint one fresh principal every this many requests (0 = off).
    pub churn_every: usize,
    /// Admit one CRL revoking a cold-tail principal every this many
    /// requests (0 = off).
    pub storm_every: usize,
    /// Advance the server clock every this many requests (keeps request
    /// timestamps moving like a live system's).
    pub tick_every: usize,
    /// Driver RNG seed.
    pub seed: u64,
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests served (always equals the configured count — open-loop
    /// backlog is absorbed as queueing latency, never dropped).
    pub served: usize,
    /// Requests granted.
    pub granted: usize,
    /// Requests denied (revoked cold-tail principals).
    pub denied: usize,
    /// Requests shed with a typed `DeadlineExceeded` outcome (budget gone
    /// at a phase boundary) — Indeterminate, not policy denials.
    pub shed_deadline: usize,
    /// Requests shed for any other typed reason (overload, poisoned).
    pub shed_other: usize,
    /// Offered arrival rate.
    pub offered_rps: f64,
    /// Served throughput over the whole run.
    pub achieved_rps: f64,
    /// Scheduled-arrival → completion latency percentiles (µs).
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Worst observed latency (µs).
    pub max_us: u64,
    /// Peak store-resident bytes observed across the run.
    pub resident_peak_bytes: u64,
    /// Principals minted mid-run.
    pub churned: usize,
    /// CRLs admitted mid-run.
    pub storms: usize,
    /// Population indexes the revocation storms struck, in storm order.
    pub revoked: Vec<usize>,
    /// Principals certified when the run ended.
    pub population: usize,
}

/// Drives `coalition`'s server open-loop against the certified
/// population. The caller has already attached `store` to the server and
/// sized its bounds; this function only offers load and measures.
///
/// # Panics
///
/// Panics on store, signing, or clock failures.
#[must_use]
pub fn run_open_loop(
    coalition: &mut Coalition,
    store: &CertStore,
    population: &mut Population,
    config: &LoadgenConfig,
) -> LoadgenReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let latency = Histogram::new();
    let mut granted = 0usize;
    let mut denied = 0usize;
    let mut churned = 0usize;
    let mut storms = 0usize;
    let mut revoked = Vec::new();
    let mut crl_seq = 1u64;
    let mut resident_peak = store.resident_bytes();
    let mut clock = {
        let now = coalition.server().now();
        now.0
    };
    let zipf = ZipfSampler::new(population.len(), config.zipf_exponent);
    let mut shed_deadline = 0usize;
    let mut shed_other = 0usize;
    let offsets = arrival_schedule(config.requests, config.rate_per_sec, config.burst.as_ref());

    let start = Instant::now();
    for (i, &offset) in offsets.iter().enumerate() {
        // Open-loop: the i-th arrival is fixed by the precomputed
        // schedule. If the server is behind, we do not wait (the backlog
        // shows up as latency); if it is ahead, we hold the request until
        // its slot.
        let scheduled = start + offset;
        while Instant::now() < scheduled {
            std::hint::spin_loop();
        }

        if config.tick_every > 0 && i % config.tick_every == 0 && i > 0 {
            clock += 1;
            coalition
                .server_mut()
                .advance_clock(Time(clock))
                .expect("clock");
        }
        if config.churn_every > 0 && i % config.churn_every == 0 && i > 0 {
            population.mint(coalition, store);
            churned += 1;
        }
        if config.storm_every > 0 && i % config.storm_every == 0 && i > 0 {
            // Revoke a cold-tail principal from G_read: the CRL is
            // journaled store-before-effect, anchors the revocation
            // column, and invalidates any cached verifications.
            let cold = population.len() - 1 - (storms % 16);
            let crl = coalition
                .ra()
                .issue_crl(
                    crl_seq,
                    Time(clock),
                    vec![CrlEntry {
                        subject: population.crl_subject(cold),
                        group: GroupId::new(GROUP),
                        revoked_from: Time(clock),
                    }],
                )
                .expect("issue crl");
            coalition.server_mut().admit_crl(&crl).expect("admit crl");
            crl_seq += 1;
            storms += 1;
            revoked.push(cold);
        }

        let principal = zipf.sample(uniform(&mut rng));
        let at = coalition.server().now();
        let mut request = population.build_read(store, principal, at);
        if let Some(budget) = config.deadline {
            request = request.with_deadline(scheduled + budget);
        }
        let decision = coalition.server_mut().handle_request(&request);
        match decision.shed {
            Some(jaap_coalition::server::ShedReason::DeadlineExceeded) => shed_deadline += 1,
            Some(_) => shed_other += 1,
            None if decision.granted => granted += 1,
            None => denied += 1,
        }
        latency.record_duration(scheduled.elapsed());

        if i % 256 == 0 {
            resident_peak = resident_peak.max(store.resident_bytes());
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    resident_peak = resident_peak.max(store.resident_bytes());

    let snap = latency.snapshot();
    LoadgenReport {
        served: config.requests,
        granted,
        denied,
        shed_deadline,
        shed_other,
        offered_rps: config.rate_per_sec,
        achieved_rps: config.requests as f64 / elapsed,
        p50_us: snap.p50 / 1_000,
        p99_us: snap.p99 / 1_000,
        p999_us: snap.p999 / 1_000,
        max_us: snap.max / 1_000,
        resident_peak_bytes: resident_peak,
        churned,
        storms,
        revoked,
        population: population.len(),
    }
}

/// Sanity check the caller can run after a drive: the store holds a row
/// pair per certified principal and its indexes agree with its log.
///
/// # Panics
///
/// Panics when the store lost rows or an index diverged.
pub fn assert_store_covers_population(store: &CertStore, population: &Population) {
    assert!(
        store.len(Column::IdentitySubject) >= population.len(),
        "store holds {} identity rows for {} principals",
        store.len(Column::IdentitySubject),
        population.len()
    );
    assert!(
        store.len(Column::AttributeGrant) >= population.len(),
        "store holds {} grant rows for {} principals",
        store.len(Column::AttributeGrant),
        population.len()
    );
    store.verify_integrity().expect("store index consistency");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard_coalition;
    use jaap_store::StoreConfig;

    #[test]
    fn zipf_prefers_the_head() {
        let z = ZipfSampler::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        const DRAWS: usize = 4000;
        for _ in 0..DRAWS {
            if z.sample(uniform(&mut rng)) < 10 {
                head += 1;
            }
        }
        // With s=1.1 the top-10 ranks carry roughly half the mass; the
        // loose bound just proves the skew is real.
        assert!(
            head > DRAWS / 4,
            "only {head}/{DRAWS} draws hit the top 10 ranks"
        );
        assert_eq!(ZipfSampler::new(5, 1.0).sample(0.999_999), 4);
        assert_eq!(ZipfSampler::new(5, 1.0).sample(0.0), 0);
    }

    #[test]
    fn certified_population_grants_reads_through_the_store() {
        let mut c = standard_coalition(192, 0xE21);
        let store = CertStore::in_memory(StoreConfig::default());
        c.server_mut()
            .attach_cert_store(store.clone())
            .expect("attach");
        let mut pop = Population::certify(&c, &store, 24, 8, 192, 0xE21);
        let config = LoadgenConfig {
            requests: 48,
            rate_per_sec: 50_000.0,
            burst: None,
            deadline: None,
            zipf_exponent: 1.1,
            churn_every: 16,
            storm_every: 20,
            tick_every: 8,
            seed: 3,
        };
        let report = run_open_loop(&mut c, &store, &mut pop, &config);
        assert_eq!(report.served, 48);
        assert_eq!(report.granted + report.denied, 48);
        assert!(report.granted > 0, "hot principals must grant");
        assert!(report.churned > 0 && report.storms > 0);
        assert_eq!(report.population, 24 + report.churned);
        assert!(report.p999_us >= report.p99_us && report.p99_us >= report.p50_us);
        assert_store_covers_population(&store, &pop);
        // A storm-revoked cold-tail principal is denied from the
        // revocation effective time onwards, while an untouched
        // principal keeps granting.
        let struck = *report.revoked.last().expect("storms fired");
        let at = c.server().now();
        let req = pop.build_read(&store, struck, at);
        let d = c.server_mut().handle_request(&req);
        assert!(!d.granted, "revoked principal must be denied");
        let untouched = (0..pop.len())
            .find(|i| !report.revoked.contains(i))
            .expect("someone survived");
        let req = pop.build_read(&store, untouched, at);
        let d = c.server_mut().handle_request(&req);
        assert!(d.granted, "unrevoked principal must still grant");
    }
}
