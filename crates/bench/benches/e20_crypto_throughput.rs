//! Experiment E20: wire-speed crypto — fixed-base precomputation and
//! small-exponents batch verification on the E15 batch scenario.
//!
//! The same pre-signed joint-write requests are pushed through
//! `verify_batch` twice per round: once with the wire-speed path off
//! (every signature verified individually, fresh Montgomery context per
//! check) and once with `set_crypto_precomp` + `set_batch_verify` on.
//! Each arm gets one untimed warm-up pass first — the accelerated arm
//! uses it to populate the shared per-key Montgomery contexts and
//! fixed-base ladders — so the timed pass prices the *warm* crypto
//! phase, which is what a long-running coalition server actually runs.
//!
//! The crypto phase is read from the `server.phase.crypto_ns` histogram
//! (sum deltas around the timed pass), which includes the batch
//! pre-pass, so the accelerated arm is charged for its combined
//! exponentiations. The run *fails* unless the warm crypto phase is at
//! least `MIN_SPEEDUP`× faster with the wire-speed path on.
//!
//! Set `E20_PROFILE=smoke` for a seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E20_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::{standard_coalition, table_header};
use jaap_coalition::request::JointAccessRequest;
use jaap_coalition::scenario::Coalition;
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E20_PROFILE").is_ok_and(|v| v == "smoke")
}

/// Minimum required warm crypto-phase speedup of the wire-speed path.
const MIN_SPEEDUP: f64 = 2.0;

/// Total nanoseconds the server has spent in the crypto phase so far.
fn crypto_sum_ns(c: &Coalition) -> u64 {
    c.metrics()
        .expect("metrics attached")
        .histogram_snapshot("server.phase.crypto_ns")
        .map_or(0, |s| s.sum)
}

struct Pass {
    crypto_ms: f64,
    wall_ms: f64,
}

/// One measured pass: reset to a cold server (fresh trust store, fresh
/// precomp cache), apply the arm's flags, run an untimed warm-up batch,
/// then time one batch and charge it by the crypto-phase histogram delta.
fn warm_pass(
    c: &mut Coalition,
    requests: &[JointAccessRequest],
    workers: usize,
    accelerated: bool,
) -> Pass {
    c.reset_server(); // resets the flags too — re-apply per arm below
    if accelerated {
        c.set_crypto_precomp(true).expect("config");
        c.set_batch_verify(true).expect("config");
    }
    let warm = c.server_mut().verify_batch(requests, workers);
    assert!(warm.iter().all(|d| d.granted), "all requests must grant");
    let before = crypto_sum_ns(c);
    let started = Instant::now();
    let decisions = c.server_mut().verify_batch(requests, workers);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        decisions.iter().all(|d| d.granted),
        "all requests must grant"
    );
    let crypto_ms = crypto_sum_ns(c).saturating_sub(before) as f64 / 1e6;
    Pass { crypto_ms, wall_ms }
}

struct Point {
    bits: usize,
    workers: usize,
    requests: usize,
    off_crypto_ms: f64,
    on_crypto_ms: f64,
    off_wall_ms: f64,
    on_wall_ms: f64,
    precomp_hits: u64,
    batch_verifies: u64,
    batch_fallbacks: u64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.off_crypto_ms / self.on_crypto_ms
    }
}

/// Interleaved best-of-`rounds` comparison: each round times one baseline
/// and one accelerated pass back to back, so drift hits both arms equally.
fn measure(bits: usize, workers: usize, n_requests: usize, rounds: u32) -> Point {
    let mut c = standard_coalition(bits, 0xE20);
    c.enable_metrics();
    // Mixed traffic: joint writes plus reads, so the AA's batch group
    // carries both the write AC and the read AC (a multi-item combined
    // check) while the identity-cert groups exercise the dedup path.
    let mut requests = Vec::with_capacity(n_requests);
    for i in 0..n_requests {
        c.advance_time(Time(20 + i as i64)).expect("clock");
        let req = if i % 4 == 3 {
            c.build_request(&["User_D1"], Operation::new("read", "Object O"))
        } else {
            c.build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        };
        requests.push(req.expect("request"));
    }
    let mut off = Pass {
        crypto_ms: f64::INFINITY,
        wall_ms: f64::INFINITY,
    };
    let mut on = Pass {
        crypto_ms: f64::INFINITY,
        wall_ms: f64::INFINITY,
    };
    for _ in 0..rounds {
        let p = warm_pass(&mut c, &requests, workers, false);
        off.crypto_ms = off.crypto_ms.min(p.crypto_ms);
        off.wall_ms = off.wall_ms.min(p.wall_ms);
        let p = warm_pass(&mut c, &requests, workers, true);
        on.crypto_ms = on.crypto_ms.min(p.crypto_ms);
        on.wall_ms = on.wall_ms.min(p.wall_ms);
    }
    let registry = c.metrics().expect("metrics attached").clone();
    let counter = |name: &str| registry.counter_value(name).unwrap_or(0);
    Point {
        bits,
        workers,
        requests: n_requests,
        off_crypto_ms: off.crypto_ms,
        on_crypto_ms: on.crypto_ms,
        off_wall_ms: off.wall_ms,
        on_wall_ms: on.wall_ms,
        precomp_hits: counter("server.crypto.precomp_hits"),
        batch_verifies: counter("server.crypto.batch_verifies"),
        batch_fallbacks: counter("server.crypto.batch_fallbacks"),
    }
}

fn print_sweep() {
    let smoke = smoke();
    // Smoke runs single-worker: `verify_batch` then executes inline (no
    // pool hand-off), so the per-request histogram deltas measure crypto
    // work, not scheduler jitter — the assertion needs a stable ratio.
    let (bits, workers, n_requests, rounds): (usize, usize, usize, u32) = if smoke {
        (192, 1, 24, 9)
    } else {
        (1024, 4, 32, 7)
    };

    table_header(
        "E20: warm crypto-phase time, wire-speed path off vs on (best-of-N)",
        &[
            "bits",
            "workers",
            "requests",
            "off ms",
            "on ms",
            "speedup",
            "off wall ms",
            "on wall ms",
        ],
    );
    let p = measure(bits, workers, n_requests, rounds);
    println!(
        "{} | {} | {} | {:.3} | {:.3} | {:.2}x | {:.3} | {:.3}",
        p.bits,
        p.workers,
        p.requests,
        p.off_crypto_ms,
        p.on_crypto_ms,
        p.speedup(),
        p.off_wall_ms,
        p.on_wall_ms,
    );
    assert!(
        p.precomp_hits > 0,
        "warm accelerated passes must hit the shared precomp cache"
    );
    assert!(
        p.batch_verifies > 0,
        "the batch pre-pass must run combined checks"
    );
    assert_eq!(
        p.batch_fallbacks, 0,
        "an all-valid workload must never bisect"
    );
    assert!(
        p.speedup() >= MIN_SPEEDUP,
        "warm crypto-phase speedup {:.2}x is below the required {MIN_SPEEDUP}x",
        p.speedup()
    );

    println!(
        "E20_JSON {{\"experiment\":\"e20_crypto_throughput\",\"profile\":\"{}\",\"bits\":{},\"workers\":{},\"requests\":{},\"off_crypto_ms\":{:.3},\"on_crypto_ms\":{:.3},\"speedup\":{:.2},\"min_speedup\":{:.1},\"off_wall_ms\":{:.3},\"on_wall_ms\":{:.3},\"precomp_hits\":{},\"batch_verifies\":{},\"batch_fallbacks\":{}}}",
        if smoke { "smoke" } else { "full" },
        p.bits,
        p.workers,
        p.requests,
        p.off_crypto_ms,
        p.on_crypto_ms,
        p.speedup(),
        MIN_SPEEDUP,
        p.off_wall_ms,
        p.on_wall_ms,
        p.precomp_hits,
        p.batch_verifies,
        p.batch_fallbacks,
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_crypto_throughput");
    let mut accel = standard_coalition(192, 0xE20 + 1);
    accel.set_crypto_precomp(true).expect("config");
    accel.set_batch_verify(true).expect("config");
    let req = accel
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    group.bench_function("handle_request_wire_speed_on", |b| {
        b.iter(|| accel.server_mut().handle_request(&req));
    });
    let mut plain = standard_coalition(192, 0xE20 + 1);
    let req = plain
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    group.bench_function("handle_request_wire_speed_off", |b| {
        b.iter(|| plain.server_mut().handle_request(&req));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
