//! Experiment E6 (§3.3): joint-signature availability of n-of-n vs m-of-n
//! sharing under per-domain downtime.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_coalition::availability::{analytic, monte_carlo, sweep};

fn print_table() {
    table_header(
        "E6: availability of joint signatures (analytic vs Monte Carlo)",
        &["n", "m", "p_up", "analytic", "monte carlo"],
    );
    for point in sweep(&[3, 5, 7, 9], &[0.90, 0.95, 0.99], 40_000, 7) {
        println!(
            "{} | {} | {:.2} | {:.6} | {:.6}",
            point.n, point.m, point.p_up, point.analytic, point.monte_carlo
        );
    }

    table_header(
        "E6: the §3.3 claim — \"up to (n-m) domains can be down\"",
        &["n", "n-of-n @ p=0.95", "majority @ p=0.95", "gain"],
    );
    for n in [3usize, 5, 7, 9] {
        let full = analytic(n, n, 0.95);
        let maj = analytic(n, n / 2 + 1, 0.95);
        println!("{n} | {full:.4} | {maj:.4} | {:.2}x", maj / full);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_availability");
    group.bench_function("analytic_9choose", |b| {
        b.iter(|| analytic(9, 5, 0.95));
    });
    group.bench_function("monte_carlo_10k_trials", |b| {
        b.iter(|| monte_carlo(5, 3, 0.9, 10_000, 3));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
