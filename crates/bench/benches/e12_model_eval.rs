//! Experiment E12 (Appendices C/D): throughput of the truth-condition
//! evaluator that backs the soundness reproduction.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_core::semantics::{Model, RunBuilder};
use jaap_core::syntax::{Formula, GroupId, KeyId, Message, Subject, Time};
use std::time::Instant;

fn build_model(users: usize, sends_per_user: usize) -> Model {
    let mut b = RunBuilder::new();
    let server = Subject::principal("P");
    let group = Subject::principal("G");
    b.party(server.clone(), 0).party(group.clone(), 0);
    for u in 0..users {
        let subject = Subject::principal(format!("U{u}"));
        b.party(subject.clone(), 0);
        b.give_key(&subject, KeyId::new(format!("K{u}")), Time(0));
        for s in 0..sends_per_user {
            let msg = Message::data(format!("payload {s}")).signed(KeyId::new(format!("K{u}")));
            b.deliver(&subject, &server, msg, Time(1 + s as i64), 1);
        }
    }
    Model::new(b.build())
}

fn print_table() {
    table_header(
        "E12: evaluator throughput over growing runs",
        &["users", "events", "A10 sweep", "membership sweep"],
    );
    for &(users, sends) in &[(3usize, 4usize), (5, 8), (8, 12)] {
        let model = build_model(users, sends);
        let events = users * sends * 2;
        let start = Instant::now();
        for u in 0..users {
            let f = Formula::key_speaks_for(
                KeyId::new(format!("K{u}")),
                Time(20),
                Subject::principal(format!("U{u}")),
            );
            let _ = model.eval(Time(20), &f);
        }
        let ksf = start.elapsed();
        let start = Instant::now();
        for u in 0..users {
            let f = Formula::member_of(
                Subject::principal(format!("U{u}")),
                Time(20),
                GroupId::new("G"),
            );
            let _ = model.eval(Time(20), &f);
        }
        println!("{users} | {events} | {ksf:?} | {:?}", start.elapsed());
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_model_eval");
    let model = build_model(4, 6);
    let a10 = Formula::implies(
        Formula::and(
            Formula::key_speaks_for(KeyId::new("K0"), Time(10), Subject::principal("U0")),
            Formula::received(
                Subject::principal("P"),
                Time(10),
                Message::data("payload 0").signed(KeyId::new("K0")),
            ),
        ),
        Formula::said(
            Subject::principal("U0"),
            Time(10),
            Message::data("payload 0"),
        ),
    );
    group.bench_function("eval_a10_instance", |b| {
        b.iter(|| model.eval(Time(10), &a10));
    });
    let legal = build_model(5, 8);
    group.bench_function("run_legality_check", |b| {
        b.iter(|| legal.run().is_legal());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
