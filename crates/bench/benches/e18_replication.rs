//! Experiment E18: replication lag under network faults, failover
//! wall-clock, and the fsync durability tax.
//!
//! The E14 decision workload (rotating 2-of-3 signed writes plus single
//! signer reads against `Object O`) runs on a journaled primary whose
//! store is teed into a replication outbox. Two replicas follow over a
//! `jaap-net` mesh with seeded drop/duplicate faults. Three measurements:
//!
//! 1. **replication lag vs fault rate** — after every decision the
//!    harness runs ship → apply → ack rounds until both replicas have
//!    acknowledged the whole log; the average number of rounds and the
//!    per-record ship wall-clock quantify how loss stretches the
//!    replication pipeline.
//! 2. **failover time** — the primary is "crashed" and the designated
//!    replica is promoted through the recovery replay path
//!    (`Replica::promote`, a higher fencing term); the clock runs from
//!    the crash to the first probe decision, which must match the live
//!    primary's answer to the same probe.
//! 3. **fsync tax** — `FileStore` append throughput under
//!    `SyncPolicy::{Never, EveryAppend, EveryN(8)}` for one fixed-size
//!    framed record, the durability spectrum from §5e's flush-only
//!    default to power-loss-safe.
//!
//! Set `E18_PROFILE=smoke` for a seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E18_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_coalition::replication::{Primary, Replica, ReplicationNet};
use jaap_coalition::request::JointAccessRequest;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_net::{FaultPlan, ReplMessage};
use jaap_wal::{
    frame_record_with_term, FileStore, JournalStore, LogOutbox, MemStore, SyncPolicy, TeeStore,
};
use std::time::Instant;

const N_REPLICAS: usize = 2;
const PRIMARY_TERM: u64 = 1;
const MAX_ROUNDS_PER_OP: usize = 64;

fn smoke() -> bool {
    std::env::var("E18_PROFILE").is_ok_and(|v| v == "smoke")
}

/// One measured fault-rate cell.
struct Cell {
    drop_prob: f64,
    requests: usize,
    records_acked: u64,
    avg_sync_rounds: f64,
    ship_us_per_record: f64,
    catchups: u64,
    net_dropped: u64,
    failover_ms: f64,
    records_replayed: usize,
}

/// The E14 batch: writes signed by rotating 2-of-3 signer pairs and reads
/// by single signers.
fn build_batch(c: &Coalition, n: usize) -> Vec<JointAccessRequest> {
    let users = ["User_D1", "User_D2", "User_D3"];
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                c.build_request(&[users[i % 3]], Operation::new("read", "Object O"))
            } else {
                c.build_request(
                    &[users[i % 3], users[(i + 1) % 3]],
                    Operation::new("write", "Object O"),
                )
            }
            .expect("request")
        })
        .collect()
}

fn measure_cell(bits: usize, requests: usize, drop_prob: f64) -> Cell {
    let mut c: Coalition = CoalitionBuilder::new()
        .key_bits(bits)
        .seed(0xE18)
        .build()
        .expect("coalition");
    c.advance_time(Time(20)).expect("clock");
    let batch = build_batch(&c, requests);

    let outbox = LogOutbox::new();
    c.server_mut()
        .attach_journal(Box::new(TeeStore::new(MemStore::new(), outbox.clone())))
        .expect("attach");
    c.server_mut().set_journal_term(PRIMARY_TERM);
    let plan = FaultPlan::seeded(0xE18)
        .with_drop(drop_prob)
        .with_duplicate(drop_prob / 2.0);
    let mut net = ReplicationNet::new(PRIMARY_TERM, N_REPLICAS, outbox, plan).expect("net");

    // Bootstrap snapshot first, so per-op rounds measure appends only.
    net.sync(MAX_ROUNDS_PER_OP);
    assert!(net.primary.all_caught_up(), "bootstrap must converge");

    let mut total_rounds = 0usize;
    let shipping_started = Instant::now();
    for req in &batch {
        let _ = c.server_mut().handle_request(req);
        total_rounds += net.sync(MAX_ROUNDS_PER_OP);
        assert!(
            net.primary.all_caught_up(),
            "per-op replication must converge (drop={drop_prob})"
        );
    }
    let ship_elapsed = shipping_started.elapsed();

    // The live answer to the probe, shipped before the crash so both
    // sides hold byte-identical logs at failover time.
    let probe = &batch[0];
    let live = c.server_mut().handle_request(probe);
    net.sync(MAX_ROUNDS_PER_OP);
    assert!(net.primary.all_caught_up(), "probe record must replicate");

    let primary_stats = net.primary.stats();
    let net_dropped = net.net_handle().stats().messages_dropped;

    // Crash the primary: all that survives is the replicas. Promote the
    // designated one and time crash -> first correct probe decision.
    let trust = c.trust_store();
    let failover_started = Instant::now();
    let (mut promoted, report) = net.replicas[0]
        .promote("P", trust, PRIMARY_TERM + 1)
        .expect("promote");
    let decision = promoted.handle_request(probe);
    let failover_ms = failover_started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        decision.granted, live.granted,
        "promoted replica must answer the probe like the live primary"
    );
    assert_eq!(decision.detail, live.detail, "probe detail must match");

    Cell {
        drop_prob,
        requests,
        records_acked: primary_stats.acked_records,
        avg_sync_rounds: total_rounds as f64 / requests as f64,
        ship_us_per_record: ship_elapsed.as_secs_f64() * 1e6 / requests as f64,
        catchups: primary_stats.catchups,
        net_dropped,
        failover_ms,
        records_replayed: report.records_replayed,
    }
}

/// Appends/sec for `appends` fixed-size framed records under `policy`.
fn fsync_rate(dir: &std::path::Path, name: &str, policy: SyncPolicy, appends: usize) -> f64 {
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let mut store = FileStore::with_sync_policy(&path, policy).expect("open");
    let frame = frame_record_with_term(PRIMARY_TERM, &[0xAB; 256]);
    let started = Instant::now();
    for _ in 0..appends {
        store.append(&frame).expect("append");
    }
    let rate = appends as f64 / started.elapsed().as_secs_f64();
    let len = store.len().expect("len");
    assert_eq!(len, (frame.len() * appends) as u64, "log length mismatch");
    let _ = std::fs::remove_file(&path);
    rate
}

fn print_sweep() {
    let smoke = smoke();
    let (bits, requests, fsync_appends): (usize, usize, usize) = if smoke {
        (96, 12, 256)
    } else {
        (192, 48, 2048)
    };
    let drop_probs = [0.0, 0.1, 0.3];

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "(host parallelism: {cores} core{})",
        if cores == 1 { "" } else { "s" }
    );
    table_header(
        "E18: replication lag vs fault rate, failover wall-clock, fsync tax",
        &[
            "drop p",
            "requests",
            "acked recs",
            "avg rounds",
            "ship µs/rec",
            "catchups",
            "net dropped",
            "failover ms",
            "replayed",
        ],
    );
    let mut cells = Vec::new();
    for &p in &drop_probs {
        let cell = measure_cell(bits, requests, p);
        println!(
            "{:.2} | {} | {} | {:.2} | {:.1} | {} | {} | {:.2} | {}",
            cell.drop_prob,
            cell.requests,
            cell.records_acked,
            cell.avg_sync_rounds,
            cell.ship_us_per_record,
            cell.catchups,
            cell.net_dropped,
            cell.failover_ms,
            cell.records_replayed
        );
        cells.push(cell);
    }

    for cell in &cells {
        assert!(cell.records_replayed > 0, "failover must replay records");
        assert!(cell.avg_sync_rounds >= 1.0, "each record takes a round");
    }
    assert!(
        cells[0].net_dropped == 0 && cells.last().expect("cells").net_dropped > 0,
        "the fault sweep must actually inject loss"
    );

    let tmp = std::env::temp_dir().join(format!("jaap-e18-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("mkdir");
    let never_aps = fsync_rate(&tmp, "never.wal", SyncPolicy::Never, fsync_appends);
    let every_aps = fsync_rate(&tmp, "every.wal", SyncPolicy::EveryAppend, fsync_appends);
    let every8_aps = fsync_rate(&tmp, "every8.wal", SyncPolicy::EveryN(8), fsync_appends);
    let _ = std::fs::remove_dir(&tmp);
    println!(
        "\nfsync tax ({fsync_appends} appends of one framed 256 B record): \
         Never {never_aps:.0}/s | EveryAppend {every_aps:.0}/s | EveryN(8) {every8_aps:.0}/s"
    );

    let lossiest = cells.last().expect("cells");
    println!(
        "worst cell (drop={:.2}): {:.2} sync rounds/record, {:.2} ms failover to first \
         correct decision",
        lossiest.drop_prob, lossiest.avg_sync_rounds, lossiest.failover_ms
    );

    let cell_json: Vec<String> = cells
        .iter()
        .map(|p| {
            format!(
                "{{\"drop_prob\":{:.2},\"requests\":{},\"records_acked\":{},\"avg_sync_rounds\":{:.3},\"ship_us_per_record\":{:.1},\"catchups\":{},\"net_dropped\":{},\"failover_ms\":{:.3},\"records_replayed\":{}}}",
                p.drop_prob,
                p.requests,
                p.records_acked,
                p.avg_sync_rounds,
                p.ship_us_per_record,
                p.catchups,
                p.net_dropped,
                p.failover_ms,
                p.records_replayed
            )
        })
        .collect();
    println!(
        "E18_JSON {{\"experiment\":\"e18_replication\",\"profile\":\"{}\",\"cores\":{},\"bits\":{},\"replicas\":{},\"cells\":[{}],\"fsync\":{{\"appends\":{},\"record_bytes\":256,\"never_aps\":{:.0},\"every_append_aps\":{:.0},\"every8_aps\":{:.0}}}}}",
        if smoke { "smoke" } else { "full" },
        cores,
        bits,
        N_REPLICAS,
        cell_json.join(","),
        fsync_appends,
        never_aps,
        every_aps,
        every8_aps
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_replication");

    // Ship one record through the Primary/Replica state machines directly
    // (no mesh): the pure protocol cost of an append round trip.
    let outbox = LogOutbox::new();
    let mut primary = Primary::new(PRIMARY_TERM, 1, outbox.clone());
    let mut replica = Replica::new(0);
    let frame = frame_record_with_term(PRIMARY_TERM, &[0x5A; 128]);
    let mut offset = 0u64;
    group.bench_function("ship_one_record_direct", |b| {
        b.iter(|| {
            let msg = ReplMessage::Append {
                term: PRIMARY_TERM,
                gen: 0,
                offset,
                frame: frame.clone(),
            };
            let reply = replica.on_message(&msg);
            primary.on_reply(0, &reply);
            offset += 1;
        });
    });

    // Promotion of a small shipped log: recovery replay + fencing bump.
    let mut coalition: Coalition = CoalitionBuilder::new()
        .key_bits(96)
        .seed(0xE18)
        .build()
        .expect("coalition");
    coalition.advance_time(Time(20)).expect("clock");
    let outbox = LogOutbox::new();
    coalition
        .server_mut()
        .attach_journal(Box::new(TeeStore::new(MemStore::new(), outbox.clone())))
        .expect("attach");
    coalition.server_mut().set_journal_term(PRIMARY_TERM);
    let mut net = ReplicationNet::new(PRIMARY_TERM, 1, outbox, FaultPlan::reliable()).expect("net");
    let req = coalition
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    for _ in 0..8 {
        coalition.server_mut().handle_request(&req);
    }
    net.sync(MAX_ROUNDS_PER_OP);
    assert!(net.primary.all_caught_up());
    let trust = coalition.trust_store();
    let mut term = PRIMARY_TERM;
    group.bench_function("promote_8_decision_log", |b| {
        b.iter(|| {
            term += 1;
            net.replicas[0]
                .promote("P", trust.clone(), term)
                .expect("promote")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
