//! Experiment E15: cost and coverage of the observability layer.
//!
//! Part A prices the instrumentation on the E14 batch-decision scenario:
//! the same pre-signed requests are pushed through `verify_batch` with the
//! metrics registry detached and attached, best-of-N, and the run *fails*
//! if the attached path costs more than 5% throughput — the layer must be
//! cheap enough to leave on.
//!
//! Part B exercises an observed coalition end to end — cached + replayed
//! decisions, plus a lossy networked signing session — and dumps the full
//! registry (per-phase latency histograms, cache/replay/retry counters,
//! per-link network outcomes) as the machine-readable record.
//!
//! Set `E15_PROFILE=smoke` for a seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E15_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::{standard_coalition, table_header};
use jaap_coalition::scenario::Coalition;
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_crypto::session::SessionConfig;
use jaap_net::FaultPlan;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E15_PROFILE").is_ok_and(|v| v == "smoke")
}

/// Maximum tolerated throughput overhead of the attached registry.
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// One timed `verify_batch` pass over `requests` against a cold server.
fn batch_ms(
    c: &mut Coalition,
    requests: &[jaap_coalition::request::JointAccessRequest],
    workers: usize,
) -> f64 {
    c.reset_server();
    let started = Instant::now();
    let decisions = c.server_mut().verify_batch(requests, workers);
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    assert!(decisions.iter().all(|d| d.granted), "all writes must grant");
    elapsed
}

struct OverheadPoint {
    bits: usize,
    workers: usize,
    requests: usize,
    off_ms: f64,
    on_ms: f64,
}

impl OverheadPoint {
    fn overhead_pct(&self) -> f64 {
        (self.on_ms - self.off_ms) / self.off_ms * 100.0
    }
}

/// Interleaved best-of-`rounds` comparison: each round times one detached
/// and one attached pass back to back, so drift hits both arms equally.
fn measure_overhead(bits: usize, workers: usize, n_requests: usize, rounds: u32) -> OverheadPoint {
    let mut c = standard_coalition(bits, 0xE15);
    let mut requests = Vec::with_capacity(n_requests);
    for i in 0..n_requests {
        c.advance_time(Time(20 + i as i64)).expect("clock");
        requests.push(
            c.build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
                .expect("request"),
        );
    }
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    for _ in 0..rounds {
        c.disable_metrics();
        off_ms = off_ms.min(batch_ms(&mut c, &requests, workers));
        c.enable_metrics();
        on_ms = on_ms.min(batch_ms(&mut c, &requests, workers));
    }
    OverheadPoint {
        bits,
        workers,
        requests: n_requests,
        off_ms,
        on_ms,
    }
}

/// Part B: an observed coalition worked hard enough that every instrument
/// family shows up in the snapshot. Returns the registry JSON.
fn observed_scenario(bits: usize) -> String {
    let mut c = standard_coalition(bits, 0xE15 + 1);
    let registry = c.enable_metrics();
    c.server_mut().set_replay_protection(true).expect("config");
    c.server_mut()
        .set_replay_protection_capacity(4)
        .expect("config");
    c.set_verification_cache(true).expect("config");

    // Cached + replayed decisions: repeats hit the verification cache, the
    // literal duplicate hits the replay window, and the tiny window evicts.
    let mut first = None;
    for i in 0..6 {
        c.advance_time(Time(20 + i)).expect("clock");
        let req = c
            .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
            .expect("request");
        let d = c.server_mut().handle_request(&req);
        assert!(d.granted);
        first.get_or_insert(req);
    }
    let dup = first.expect("at least one request");
    c.server_mut().handle_request(&dup); // evicted by now: re-processed
    let fresh = c
        .build_request(&["User_D1"], Operation::new("read", "Object O"))
        .expect("read");
    let d = c.server_mut().handle_request(&fresh);
    assert!(d.granted);
    c.server_mut().handle_request(&fresh); // genuine replay hit

    // A lossy networked signing session: rounds, retries/backoff and
    // per-link drop/delivery counters land in the same registry.
    c.aa_mut()
        .set_signing_mode(jaap_coalition::aa::SigningMode::Networked);
    c.set_fault_plan(FaultPlan::seeded(0xE15).with_drop(0.25));
    c.set_session_config(SessionConfig::fast());
    c.advance_time(Time(40)).expect("clock");
    let networked = c
        .request_write(&["User_D1", "User_D2"])
        .expect("networked write");
    assert!(networked.granted || networked.unavailable);

    table_header(
        "E15b: observed-coalition snapshot (selected instruments)",
        &["instrument", "value"],
    );
    for name in [
        "server.decisions",
        "server.granted",
        "server.replay.hits",
        "server.replay.evictions",
        "server.cache.hits",
        "server.cache.misses",
        "session.sessions",
        "session.retries",
    ] {
        println!("{} | {}", name, registry.counter_value(name).unwrap_or(0));
    }
    for name in [
        "server.phase.crypto_ns",
        "server.phase.logic_ns",
        "server.decision_ns",
    ] {
        if let Some(snap) = registry.histogram_snapshot(name) {
            println!(
                "{} | n={} p50≤{}ns p99≤{}ns",
                name, snap.count, snap.p50, snap.p99
            );
        }
    }

    // The snapshot must actually contain the pipeline's phases and the
    // cache/retry counters — this is the artifact later PRs report through.
    let json = registry.to_json();
    for needle in [
        "\"server.phase.recency_ns\"",
        "\"server.phase.crypto_ns\"",
        "\"server.phase.logic_ns\"",
        "\"server.phase.acl_ns\"",
        "\"server.decision_ns\"",
        "\"server.cache.hits\"",
        "\"server.replay.hits\"",
        "\"session.rounds\"",
    ] {
        assert!(json.contains(needle), "snapshot missing {needle}");
    }
    json
}

fn print_sweep() {
    let smoke = smoke();
    let (bits, workers, n_requests, rounds): (usize, usize, usize, u32) = if smoke {
        (192, 2, 12, 5)
    } else {
        (1024, 4, 32, 7)
    };

    table_header(
        "E15a: registry overhead on the E14 batch scenario (best-of-N)",
        &["bits", "workers", "requests", "off ms", "on ms", "overhead"],
    );
    let p = measure_overhead(bits, workers, n_requests, rounds);
    println!(
        "{} | {} | {} | {:.2} | {:.2} | {:.2}%",
        p.bits,
        p.workers,
        p.requests,
        p.off_ms,
        p.on_ms,
        p.overhead_pct()
    );
    assert!(
        p.overhead_pct() <= MAX_OVERHEAD_PCT,
        "metrics overhead {:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget",
        p.overhead_pct()
    );

    let registry_json = observed_scenario(if smoke { 192 } else { 512 });

    println!(
        "E15_JSON {{\"experiment\":\"e15_observability\",\"profile\":\"{}\",\"bits\":{},\"workers\":{},\"requests\":{},\"metrics_off_ms\":{:.3},\"metrics_on_ms\":{:.3},\"overhead_pct\":{:.2},\"max_overhead_pct\":{:.1},\"registry\":{}}}",
        if smoke { "smoke" } else { "full" },
        p.bits,
        p.workers,
        p.requests,
        p.off_ms,
        p.on_ms,
        p.overhead_pct(),
        MAX_OVERHEAD_PCT,
        registry_json
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_observability");
    let mut observed = standard_coalition(192, 0xE15 + 2);
    observed.enable_metrics();
    let req = observed
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    group.bench_function("handle_request_metrics_on", |b| {
        b.iter(|| observed.server_mut().handle_request(&req));
    });
    let mut plain = standard_coalition(192, 0xE15 + 2);
    let req = plain
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    group.bench_function("handle_request_metrics_off", |b| {
        b.iter(|| plain.server_mut().handle_request(&req));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
