//! Experiments E8/E9 (§4.3): authorization protocol cost — derivation
//! steps and wall time — plus the revoked-request series and the D3
//! ablation (logic-checked vs crypto-only reference monitor).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jaap_bench::{coalition_of, standard_coalition, table_header};
use jaap_core::syntax::Time;

fn print_tables() {
    table_header(
        "E8: authorization cost by request kind (3 domains, 256-bit keys)",
        &["request", "decision", "axiom apps", "sig checks", "wall"],
    );
    let mut c = standard_coalition(256, 31);
    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("write 2-of-3", vec!["User_D1", "User_D2"]),
        ("write 3-of-3", vec!["User_D1", "User_D2", "User_D3"]),
        ("write 1 signer (deny)", vec!["User_D1"]),
        ("read 1-of-3", vec!["User_D2"]),
    ];
    for (label, signers) in cases {
        let start = Instant::now();
        let d = if label.starts_with("read") {
            c.request_read(&signers).expect("req")
        } else {
            c.request_write(&signers).expect("req")
        };
        println!(
            "{label} | {} | {} | {} | {:?}",
            if d.granted { "GRANT" } else { "DENY" },
            d.axiom_applications,
            d.signature_checks,
            start.elapsed()
        );
    }

    // E9: revocation series.
    table_header("E9: revocation series", &["phase", "decision"]);
    let mut c = standard_coalition(256, 32);
    let d = c.request_write(&["User_D1", "User_D2"]).expect("req");
    println!(
        "before revocation | {}",
        if d.granted { "GRANT" } else { "DENY" }
    );
    c.advance_time(Time(20)).expect("clock");
    c.revoke_write_ac(Time(20)).expect("revoke");
    c.advance_time(Time(21)).expect("clock");
    let d = c.request_write(&["User_D1", "User_D2"]).expect("req");
    println!(
        "after revocation | {}",
        if d.granted { "GRANT" } else { "DENY" }
    );
    let d = c.request_read(&["User_D1"]).expect("req");
    println!(
        "read after write-AC revocation | {}",
        if d.granted { "GRANT" } else { "DENY" }
    );

    // D3 ablation.
    table_header(
        "E8/D3 ablation: logic-checked vs crypto-only monitor",
        &["monitor", "wall per request", "axiom apps", "proof"],
    );
    for logic in [true, false] {
        let mut c = standard_coalition(256, 33);
        c.server_mut().set_logic_checking(logic).expect("config");
        let start = Instant::now();
        let iters = 50;
        let mut apps = 0;
        let mut has_proof = false;
        for _ in 0..iters {
            let d = c.request_write(&["User_D1", "User_D2"]).expect("req");
            apps = d.axiom_applications;
            has_proof = d.derivation.is_some();
        }
        println!(
            "{} | {:?} | {apps} | {has_proof}",
            if logic {
                "logic-checked"
            } else {
                "crypto-only"
            },
            start.elapsed() / iters
        );
    }

    // Scaling with coalition size.
    table_header(
        "E8: derivation cost vs coalition size (write = majority)",
        &["n", "m", "axiom apps", "sig checks"],
    );
    for n in [3usize, 5, 7] {
        let m = n / 2 + 1;
        let mut c = coalition_of(n, m, 192, 34);
        let signers: Vec<String> = (1..=m).map(|i| format!("User_D{i}")).collect();
        let refs: Vec<&str> = signers.iter().map(String::as_str).collect();
        let d = c.request_write(&refs).expect("req");
        assert!(d.granted);
        println!(
            "{n} | {m} | {} | {}",
            d.axiom_applications, d.signature_checks
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_authorization");
    group.bench_function("authorize_write_2of3_logic", |b| {
        let mut c = standard_coalition(192, 35);
        b.iter(|| c.request_write(&["User_D1", "User_D2"]).expect("req"));
    });
    group.bench_function("authorize_write_2of3_crypto_only", |b| {
        let mut c = standard_coalition(192, 36);
        c.server_mut().set_logic_checking(false).expect("config");
        b.iter(|| c.request_write(&["User_D1", "User_D2"]).expect("req"));
    });
    group.bench_function("authorize_write_4of7", |b| {
        let mut c = coalition_of(7, 4, 192, 37);
        b.iter(|| {
            c.request_write(&["User_D1", "User_D2", "User_D3", "User_D4"])
                .expect("req")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_tables();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
