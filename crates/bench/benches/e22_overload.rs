//! Experiment E22: overload resilience and fail-stop poison semantics.
//!
//! **Phase A (overload).** A concurrent coalition front-end with a
//! bounded in-flight admission gate and per-request deadline budgets is
//! calibrated for closed-loop capacity, then driven open-loop twice at
//! the same base rate: once flat (the control) and once with a
//! square-wave 2× overdrive burst layered on top. The run *fails*
//! unless every arrival is accounted for (served or typed shed), the
//! overdriven goodput holds at least 85% of the control's, the excess
//! comes back as typed `Overloaded`/`DeadlineExceeded` sheds (never a
//! policy Deny, never an untyped error), and accepted-decision p99
//! stays inside the deadline budget — the reject-don't-queue claim.
//!
//! **Phase B (poison).** A journaled serial server runs scripted
//! mutations against a fault-injecting store whose Nth append fsync
//! fails after a short write. The run *fails* unless the server poisons
//! exactly at the scheduled fault, every later mutation refuses with
//! `JournalPoisoned`, every later decision sheds typed (Indeterminate,
//! not Deny), no post-failure effect lands, recovery replays only the
//! durable prefix (the recovered log is byte-identical to a prefix of
//! the faulted medium), and the recovered server is
//! decision-for-decision identical to a never-faulted twin that ran
//! exactly the completed operations.
//!
//! Set `E22_PROFILE=smoke` for the seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E22_JSON "`.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use jaap_bench::loadgen::BurstProfile;
use jaap_bench::overload::{calibrate_capacity, run_overload, OverloadConfig, OverloadReport};
use jaap_bench::{standard_coalition, table_header};
use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::request::{assemble, JointAccessRequest};
use jaap_coalition::scenario::{Coalition, OBJECT_O};
use jaap_coalition::server::{CoalitionServer, ServerDecision, ShedReason};
use jaap_coalition::CoalitionError;
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_obs::MetricsRegistry;
use jaap_wal::{FaultyStore, MemStore, StoreFaultPlan};

fn smoke() -> bool {
    std::env::var("E22_PROFILE").is_ok_and(|v| v == "smoke")
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

struct Profile {
    name: &'static str,
    key_bits: usize,
    /// Closed-loop decisions used to calibrate single-rate capacity.
    calib_requests: usize,
    /// Arrivals offered per open-loop run (control and overdriven).
    requests: usize,
    /// Admission-gate slots.
    inflight: usize,
    /// Open-loop driver lanes (above `inflight` so bursts hit the gate).
    lanes: usize,
    /// Per-request deadline budget.
    deadline: Duration,
    /// Square-wave half period for the overdriven run.
    half_period: Duration,
    /// Base rate as a fraction of calibrated capacity.
    base_frac: f64,
    /// Overdriven goodput floor as a fraction of control goodput.
    goodput_floor: f64,
}

fn profile() -> Profile {
    if smoke() {
        Profile {
            name: "smoke",
            key_bits: 192,
            calib_requests: 600,
            requests: 2_400,
            inflight: 1,
            lanes: 3,
            deadline: Duration::from_millis(50),
            half_period: Duration::from_millis(50),
            base_frac: 0.75,
            goodput_floor: 0.85,
        }
    } else {
        Profile {
            name: "full",
            key_bits: 192,
            calib_requests: 50_000,
            requests: 400_000,
            inflight: (cores() / 2).max(2),
            lanes: cores() + 2,
            deadline: Duration::from_millis(20),
            half_period: Duration::from_millis(250),
            base_frac: 0.85,
            goodput_floor: 0.85,
        }
    }
}

/// What phase A measured, for the JSON line.
struct OverloadOutcome {
    capacity_rps: f64,
    base_rps: f64,
    control: OverloadReport,
    overdrive: OverloadReport,
}

fn print_report(label: &str, r: &OverloadReport) {
    println!(
        "{label} | {} | {} | {} | {} | {} | {} | {} | {} | {:.0}",
        r.offered,
        r.granted,
        r.denied,
        r.shed_overloaded,
        r.shed_deadline,
        r.accepted_p50_us,
        r.accepted_p99_us,
        r.accepted_max_us,
        r.accepted_rps,
    );
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn phase_a(p: &Profile) -> OverloadOutcome {
    let mut c = standard_coalition(p.key_bits, 0xE22);
    // The pool repeats requests, so replay dedup would serve duplicates
    // from the replay window and price nothing.
    c.server_mut().set_replay_protection(false).expect("config");
    c.server_mut().set_verification_cache(true).expect("config");
    c.server_mut().set_crypto_precomp(true).expect("config");
    let read = |c: &Coalition, who: &str| {
        c.build_request(&[who], Operation::new("read", OBJECT_O))
            .expect("read request")
    };
    let pool = vec![
        read(&c, "User_D1"),
        read(&c, "User_D2"),
        read(&c, "User_D3"),
        // One signer below the 2-of-3 write threshold: a policy Deny,
        // kept in the mix so sheds must stay distinguishable from it.
        c.build_request(&["User_D3"], Operation::new("write", OBJECT_O))
            .expect("write request"),
    ];
    let server = ConcurrentServer::new(c.into_server());
    let registry = MetricsRegistry::new();
    server.set_gate_metrics(&registry);
    server.set_inflight_limit(p.inflight);

    // Calibrate closed-loop capacity with exactly as many lanes as gate
    // slots (no admission rejects distort the figure); this also warms
    // the verification cache for both open-loop runs.
    let capacity_rps = calibrate_capacity(&server, &pool, p.calib_requests, p.inflight);
    let base_rps = p.base_frac * capacity_rps;

    let control = run_overload(
        &server,
        &pool,
        &OverloadConfig {
            requests: p.requests,
            rate_per_sec: base_rps,
            burst: None,
            deadline: Some(p.deadline),
            lanes: p.lanes,
        },
    );
    let overdrive = run_overload(
        &server,
        &pool,
        &OverloadConfig {
            requests: p.requests,
            rate_per_sec: base_rps,
            burst: Some(BurstProfile {
                overdrive: 2.0,
                half_period: p.half_period,
            }),
            deadline: Some(p.deadline),
            lanes: p.lanes,
        },
    );

    table_header(
        &format!(
            "E22 phase A: 2x square-wave overdrive vs flat control ({} profile, capacity {:.0} rps, base {:.0} rps)",
            p.name, capacity_rps, base_rps
        ),
        &[
            "run",
            "offered",
            "granted",
            "denied",
            "shed overload",
            "shed deadline",
            "p50 us",
            "p99 us",
            "max us",
            "goodput rps",
        ],
    );
    print_report("control", &control);
    print_report("overdrive", &overdrive);

    // The experiment's invariants, asserted in-bench.
    let deadline_us = u64::try_from(p.deadline.as_micros()).expect("deadline fits");
    for (label, r) in [("control", &control), ("overdrive", &overdrive)] {
        assert_eq!(
            r.accepted() + r.shed(),
            r.offered,
            "{label}: every arrival is served or shed, never dropped"
        );
        assert_eq!(
            r.shed_other, 0,
            "{label}: sheds are Overloaded/DeadlineExceeded only"
        );
        assert!(
            r.accepted_p99_us <= deadline_us,
            "{label}: accepted p99 {}us exceeds the {}us deadline budget — the gate queued instead of rejecting",
            r.accepted_p99_us,
            deadline_us
        );
    }
    // Scheduler noise on a small shared box can shed a handful of
    // control arrivals; the load-bearing claim is the relative goodput
    // floor below, so the control only has to *mostly* serve.
    assert!(
        control.accepted() as f64 >= 0.80 * control.offered as f64,
        "control run at {:.0} rps (75% of capacity) must mostly serve: {} of {}",
        base_rps,
        control.accepted(),
        control.offered
    );
    assert!(
        overdrive.shed() > 0,
        "2x overdrive against a full gate must shed"
    );
    assert!(
        overdrive.accepted_rps >= p.goodput_floor * control.accepted_rps,
        "overdriven goodput {:.0} rps fell below {:.0}% of the control's {:.0} rps",
        overdrive.accepted_rps,
        p.goodput_floor * 100.0,
        control.accepted_rps
    );
    // The gate's instruments and the lock-free shed audit agree with
    // the per-lane tallies.
    let shed_overloaded = control.shed_overloaded + overdrive.shed_overloaded;
    let shed_deadline = control.shed_deadline + overdrive.shed_deadline;
    assert_eq!(
        registry
            .counter_value("server.shed.overloaded")
            .unwrap_or(0),
        shed_overloaded as u64,
        "server.shed.overloaded counter tracks the gate"
    );
    assert_eq!(
        registry.counter_value("server.shed.deadline").unwrap_or(0),
        shed_deadline as u64,
        "server.shed.deadline counter tracks the phase gates"
    );
    assert_eq!(
        registry.gauge_value("server.inflight").unwrap_or(-1),
        0,
        "server.inflight returns to zero once the drivers drain"
    );
    let shed_lines = server.shed_audit();
    assert_eq!(
        shed_lines.len(),
        (control.shed() + overdrive.shed()).min(1024),
        "every shed is audited (into the bounded ring)"
    );
    assert!(
        shed_lines.iter().all(|e| e.shed.is_some() && !e.granted),
        "audited sheds stay typed — distinguishable from policy denials"
    );

    OverloadOutcome {
        capacity_rps,
        base_rps,
        control,
        overdrive,
    }
}

/// What phase B measured, for the JSON line.
struct PoisonOutcome {
    completed_ops: usize,
    refused_mutations: usize,
    shed_decisions: usize,
    records_replayed: usize,
    truncated_bytes: u64,
    durable_bytes: u64,
    recovered_bytes: u64,
    probes_matched: usize,
}

/// A pre-poison scripted mutation, replayable against the twin.
enum Mutation {
    Advance(Time),
    Content(Vec<u8>),
}

fn apply_mutation(server: &mut CoalitionServer, m: &Mutation) -> Result<(), CoalitionError> {
    match m {
        Mutation::Advance(to) => server.advance_clock(*to),
        Mutation::Content(bytes) => server.set_content(OBJECT_O, bytes.clone()),
    }
}

/// Builds a joint request at an explicit time (post-recovery probes must
/// stamp the time themselves, not the scenario server's clock).
fn probe_request(c: &Coalition, signers: &[&str], action: &str, at: Time) -> JointAccessRequest {
    let users: Vec<_> = signers.iter().map(|n| c.user(n).expect("user")).collect();
    let ids = signers
        .iter()
        .map(|n| c.identity_cert(n).expect("cert").clone())
        .collect();
    let ac = if action == "read" {
        c.read_ac().clone()
    } else {
        c.write_ac().clone()
    };
    assemble(
        &users,
        ids,
        vec![ac],
        vec![],
        Operation::new(action, OBJECT_O),
        at,
    )
    .expect("assemble probe")
}

fn assert_same_decision(ours: &ServerDecision, twins: &ServerDecision, ctx: &str) {
    assert_eq!(ours.granted, twins.granted, "granted diverged: {ctx}");
    assert_eq!(ours.detail, twins.detail, "detail diverged: {ctx}");
    assert_eq!(
        ours.axiom_applications, twins.axiom_applications,
        "axiom count diverged: {ctx}"
    );
    assert_eq!(
        ours.signature_checks, twins.signature_checks,
        "signature checks diverged: {ctx}"
    );
    assert_eq!(
        ours.cached_signature_checks, twins.cached_signature_checks,
        "cached checks diverged: {ctx}"
    );
    assert_eq!(
        ours.unavailable, twins.unavailable,
        "unavailable diverged: {ctx}"
    );
    assert_eq!(ours.shed, twins.shed, "shed reason diverged: {ctx}");
}

/// The append index whose fsync fails (0-based, counted from the first
/// post-attach mutation; the bootstrap snapshot goes through `reset`).
const FAIL_AFTER: u64 = 5;

#[allow(clippy::too_many_lines)]
fn phase_b() -> PoisonOutcome {
    let mut c = standard_coalition(192, 0xE22 + 7);
    c.server_mut().set_replay_protection(true).expect("config");
    let medium = MemStore::new();
    let handle = medium.clone();
    let faulty = FaultyStore::new(
        medium,
        StoreFaultPlan::seeded(0xE22).with_sync_fail_after(FAIL_AFTER),
    )
    .expect("fault plan");
    c.server_mut()
        .attach_journal(Box::new(faulty))
        .expect("attach journal");

    // Scripted mutations — one journal append each — until the
    // scheduled fsync failure poisons the server.
    let mut completed: Vec<Mutation> = Vec::new();
    let mut next_t = c.server().now().0 + 1;
    let mut poisoned_at: Option<usize> = None;
    for i in 0..(FAIL_AFTER as usize + 4) {
        let m = if i % 3 == 2 {
            Mutation::Content(vec![u8::try_from(i).expect("small"); 8])
        } else {
            let m = Mutation::Advance(Time(next_t));
            next_t += 1;
            m
        };
        match apply_mutation(c.server_mut(), &m) {
            Ok(()) => completed.push(m),
            Err(CoalitionError::JournalPoisoned(_)) => {
                poisoned_at = Some(i);
                break;
            }
            Err(e) => panic!("unexpected pre-poison error: {e}"),
        }
    }
    assert_eq!(
        poisoned_at,
        Some(FAIL_AFTER as usize),
        "the scheduled fsync failure poisons exactly the {FAIL_AFTER}th mutation"
    );
    assert!(
        c.server().poisoned().is_some(),
        "poison is sticky state, not a one-shot error"
    );
    let clock_at_poison = c.server().now();
    let content_at_poison = c
        .server()
        .objects()
        .iter()
        .find(|o| o.name == OBJECT_O)
        .expect("object")
        .content
        .clone();

    // Every later mutation refuses typed; no effect lands.
    let mut refused_mutations = 0usize;
    for m in [
        Mutation::Advance(Time(next_t + 10)),
        Mutation::Content(vec![0xEE; 8]),
    ] {
        match apply_mutation(c.server_mut(), &m) {
            Err(CoalitionError::JournalPoisoned(_)) => refused_mutations += 1,
            other => panic!("poisoned server accepted a mutation: {other:?}"),
        }
    }
    assert_eq!(
        c.server().now(),
        clock_at_poison,
        "no post-poison clock effect"
    );

    // Every later decision sheds typed: Indeterminate, not Deny.
    let mut shed_decisions = 0usize;
    for signers in [&["User_D1"][..], &["User_D2"][..]] {
        let req = probe_request(&c, signers, "read", clock_at_poison);
        let d = c.server_mut().handle_request(&req);
        assert_eq!(d.shed, Some(ShedReason::JournalPoisoned), "typed shed");
        assert!(d.unavailable && !d.granted, "Indeterminate, not Deny");
        shed_decisions += 1;
    }

    // Recover from the durable prefix: the faulted append short-wrote a
    // torn tail, which replay must truncate, never apply.
    let durable = handle.snapshot();
    let recovery_medium = MemStore::from_bytes(durable.clone());
    let recovered_handle = recovery_medium.clone();
    let (mut recovered, report) =
        CoalitionServer::recover("P", c.trust_store(), Box::new(recovery_medium))
            .expect("recover from durable prefix");
    let recovered_bytes = recovered_handle.snapshot();
    assert!(
        recovered_bytes.len() <= durable.len()
            && recovered_bytes[..] == durable[..recovered_bytes.len()],
        "the recovered log is byte-identical to a prefix of the faulted medium"
    );

    // A never-faulted twin: a fresh server configured exactly as the
    // journaled one was at attach, replaying only the completed script.
    let mut twin = CoalitionServer::new("P", c.trust_store());
    twin.add_object(OBJECT_O, c.server().objects()[0].acl.clone())
        .expect("twin object");
    twin.advance_clock(Time(10)).expect("twin clock");
    twin.set_replay_protection(true).expect("config");
    for m in &completed {
        apply_mutation(&mut twin, m).expect("twin replay");
    }

    assert_eq!(recovered.now(), twin.now(), "clocks agree after recovery");
    assert_eq!(
        recovered.now(),
        clock_at_poison,
        "recovery stops at the durable prefix"
    );
    assert_eq!(
        recovered.objects(),
        twin.objects(),
        "object state (ACL, version, content) agrees after recovery"
    );
    assert_eq!(
        recovered.objects()[0].content,
        content_at_poison,
        "the failed append's content never landed"
    );

    // Probe workload: the recovered server and the twin must decide
    // identically — grant, deny, and replay-protection behaviour alike.
    let probe_t = Time(clock_at_poison.0 + 5);
    recovered
        .advance_clock(probe_t)
        .expect("recovered journal is writable again");
    twin.advance_clock(probe_t).expect("twin clock");
    let mut probes_matched = 0usize;
    let reread = probe_request(&c, &["User_D1"], "read", probe_t);
    let probes = [
        (
            "granted read",
            probe_request(&c, &["User_D1"], "read", probe_t),
        ),
        (
            "granted 2-of-3 write",
            probe_request(&c, &["User_D1", "User_D2"], "write", probe_t),
        ),
        (
            "denied 1-of-3 write",
            probe_request(&c, &["User_D3"], "write", probe_t),
        ),
        ("replayed read", reread),
    ];
    for (ctx, req) in &probes {
        let ours = recovered.handle_request(req);
        let twins = twin.handle_request(req);
        assert_same_decision(&ours, &twins, ctx);
        probes_matched += 1;
    }

    table_header(
        "E22 phase B: fail-stop poison and durable-prefix recovery",
        &[
            "completed ops",
            "refused mutations",
            "shed decisions",
            "records replayed",
            "truncated bytes",
            "durable bytes",
            "recovered bytes",
            "probes matched",
        ],
    );
    println!(
        "{} | {} | {} | {} | {} | {} | {} | {}",
        completed.len(),
        refused_mutations,
        shed_decisions,
        report.records_replayed,
        report.truncated_bytes,
        durable.len(),
        recovered_bytes.len(),
        probes_matched,
    );

    PoisonOutcome {
        completed_ops: completed.len(),
        refused_mutations,
        shed_decisions,
        records_replayed: report.records_replayed,
        truncated_bytes: report.truncated_bytes,
        durable_bytes: durable.len() as u64,
        recovered_bytes: recovered_bytes.len() as u64,
        probes_matched,
    }
}

fn print_sweep() {
    let p = profile();
    let a = phase_a(&p);
    let b = phase_b();

    println!(
        "E22_JSON {{\"experiment\":\"e22_overload\",\"profile\":\"{}\",\"cores\":{},\"key_bits\":{},\"requests\":{},\"inflight\":{},\"lanes\":{},\"deadline_ms\":{},\"capacity_rps\":{:.0},\"base_rps\":{:.0},\"control_goodput_rps\":{:.0},\"control_p99_us\":{},\"control_shed\":{},\"overdrive_goodput_rps\":{:.0},\"overdrive_p99_us\":{},\"overdrive_granted\":{},\"overdrive_denied\":{},\"overdrive_shed_overloaded\":{},\"overdrive_shed_deadline\":{},\"goodput_floor\":{},\"poison_completed_ops\":{},\"poison_refused_mutations\":{},\"poison_shed_decisions\":{},\"recovery_records_replayed\":{},\"recovery_truncated_bytes\":{},\"durable_bytes\":{},\"recovered_bytes\":{},\"probes_matched\":{}}}",
        p.name,
        cores(),
        p.key_bits,
        p.requests,
        p.inflight,
        p.lanes,
        p.deadline.as_millis(),
        a.capacity_rps,
        a.base_rps,
        a.control.accepted_rps,
        a.control.accepted_p99_us,
        a.control.shed(),
        a.overdrive.accepted_rps,
        a.overdrive.accepted_p99_us,
        a.overdrive.granted,
        a.overdrive.denied,
        a.overdrive.shed_overloaded,
        a.overdrive.shed_deadline,
        p.goodput_floor,
        b.completed_ops,
        b.refused_mutations,
        b.shed_decisions,
        b.records_replayed,
        b.truncated_bytes,
        b.durable_bytes,
        b.recovered_bytes,
        b.probes_matched,
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_overload");
    let mut coalition = standard_coalition(192, 0xE22 + 9);
    coalition
        .server_mut()
        .set_replay_protection(false)
        .expect("config");
    coalition
        .server_mut()
        .set_verification_cache(true)
        .expect("config");
    let req = coalition
        .build_request(&["User_D1"], Operation::new("read", OBJECT_O))
        .expect("request");
    let server = ConcurrentServer::new(coalition.into_server());
    server.set_inflight_limit(1);
    group.bench_function("admitted_decision", |b| {
        let mut reader = server.reader();
        b.iter(|| server.decide_with_reader(&mut reader, &req));
    });
    group.bench_function("gate_reject", |b| {
        // Hold the only slot so every decide sheds at the gate: prices
        // the lock-free reject path itself.
        let _hold = server.acquire_slot().expect("empty gate");
        let mut reader = server.reader();
        b.iter(|| server.decide_with_reader(&mut reader, &req));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
