//! Experiment E10 (§6): cost of coalition dynamics — re-keying plus
//! revocation and re-issue of certificates on every join/leave.

use criterion::{criterion_group, Criterion};
use jaap_bench::{coalition_of, table_header};

fn print_table() {
    table_header(
        "E10: join cost as the coalition grows (192-bit keys)",
        &["n after join", "rekey", "revoked", "reissued", "total"],
    );
    let mut c = coalition_of(3, 2, 192, 41);
    for i in 4..=9 {
        let r = c.join_domain(&format!("D{i}")).expect("join");
        println!(
            "{} | {:?} | {} | {} | {:?}",
            r.domain_count, r.rekey_wall, r.certs_revoked, r.certs_reissued, r.total_wall
        );
    }

    table_header(
        "E10: leave cost (shrinking back)",
        &["n after leave", "total"],
    );
    for i in (5..=9).rev() {
        let r = c.leave_domain(&format!("D{i}")).expect("leave");
        println!("{} | {:?}", r.domain_count, r.total_wall);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_dynamics");
    group.sample_size(10);
    group.bench_function("join_then_leave_n3", |b| {
        let mut coalition = coalition_of(3, 2, 192, 42);
        b.iter(|| {
            coalition.join_domain("DX").expect("join");
            coalition.leave_domain("DX").expect("leave");
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
