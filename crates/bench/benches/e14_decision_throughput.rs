//! Experiment E14: decision throughput of the optimized authorization
//! pipeline.
//!
//! Part A quantifies the single-thread RSA signing win: the seed
//! implementation's exponentiation (fixed 4-bit windows, a 16-entry table
//! including even powers, and a trial division after every square) is
//! re-created here verbatim and raced against the library's current
//! non-CRT path (Montgomery CIOS + sliding windows) and the full CRT +
//! Montgomery fast path.
//!
//! Part B sweeps the coalition server's batch pipeline: workers × cache ×
//! modulus size, measuring granted-decision throughput of
//! `CoalitionServer::verify_batch` over independently signed write
//! requests.
//!
//! Set `E14_PROFILE=smoke` for a seconds-scale sweep (CI); the default
//! profile uses 2048-bit keys for Part A.
//!
//! Machine-readable record: one line, grep `"^E14_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_bigint::Nat;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_crypto::fdh;
use jaap_crypto::rsa::RsaKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E14_PROFILE").is_ok_and(|v| v == "smoke")
}

/// The seed tree's `Nat::modpow`, reproduced exactly: 4-bit fixed windows
/// over a 16-entry table (even powers included), squarings through the
/// general multiplier, and a full division-based reduction at every step.
fn seed_modpow(base: &Nat, exp: &Nat, m: &Nat) -> Nat {
    assert!(!m.is_zero());
    if m.is_one() {
        return Nat::zero();
    }
    if exp.is_zero() {
        return Nat::one();
    }
    let base = base.rem_nat(m);
    if base.is_zero() {
        return Nat::zero();
    }
    let mut table = Vec::with_capacity(16);
    table.push(Nat::one());
    for i in 1..16 {
        let prev: &Nat = &table[i - 1];
        table.push(prev.mulm(&base, m));
    }
    let nibbles = exp.bit_len().div_ceil(4);
    let mut acc = Nat::one();
    for i in (0..nibbles).rev() {
        if i != nibbles - 1 {
            for _ in 0..4 {
                acc = acc.mul_nat(&acc).rem_nat(m);
            }
        }
        let nib = seed_nibble(exp, i);
        if nib != 0 {
            acc = acc.mulm(&table[nib as usize], m);
        }
    }
    acc
}

fn seed_nibble(n: &Nat, i: usize) -> u8 {
    let bit = i * 4;
    let mut v = 0u8;
    for k in 0..4 {
        if n.bit(bit + k) {
            v |= 1 << k;
        }
    }
    v
}

struct SignPoint {
    bits: usize,
    seed_ms: f64,
    classic_ms: f64,
    crt_ms: f64,
}

impl SignPoint {
    fn speedup_total(&self) -> f64 {
        self.seed_ms / self.crt_ms
    }
    fn speedup_montgomery(&self) -> f64 {
        self.seed_ms / self.classic_ms
    }
}

/// Times the three private-op pipelines on identical FDH-encoded inputs.
fn measure_sign(bits: usize, trials: u32) -> SignPoint {
    let mut rng = StdRng::seed_from_u64(0xE14 + bits as u64);
    let kp = RsaKeyPair::generate(&mut rng, bits).expect("keygen");
    assert!(kp.has_crt(), "keygen must retain CRT parameters");
    let n = kp.public().modulus().clone();
    let msgs: Vec<Vec<u8>> = (0..trials)
        .map(|i| format!("E14 corpus item {i}").into_bytes())
        .collect();

    let started = Instant::now();
    let mut seed_sigs = Vec::new();
    for msg in &msgs {
        let h = fdh::encode(msg, &n);
        seed_sigs.push(seed_modpow(&h, kp.private_exponent(), &n));
    }
    let seed_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(trials);

    let started = Instant::now();
    let mut classic_sigs = Vec::new();
    for msg in &msgs {
        classic_sigs.push(kp.sign_classic(msg).expect("sign_classic"));
    }
    let classic_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(trials);

    let started = Instant::now();
    let mut crt_sigs = Vec::new();
    for msg in &msgs {
        crt_sigs.push(kp.sign(msg).expect("sign"));
    }
    let crt_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(trials);

    // All three pipelines must agree bit for bit.
    for ((seed, classic), crt) in seed_sigs.iter().zip(&classic_sigs).zip(&crt_sigs) {
        assert_eq!(seed, classic.value(), "seed path disagrees");
        assert_eq!(classic.value(), crt.value(), "CRT path disagrees");
    }

    SignPoint {
        bits,
        seed_ms,
        classic_ms,
        crt_ms,
    }
}

struct BatchPoint {
    bits: usize,
    workers: usize,
    cache: bool,
    requests: usize,
    total_ms: f64,
    throughput: f64,
}

/// Sweeps every (cache, workers) cell for one modulus size. The coalition
/// (and its expensive keygen) is built once; each cell resets the server
/// to a cold state and replays the same pre-signed requests through one
/// `verify_batch` call, so the cells differ only in the configuration
/// under test.
fn run_batch_sweep(
    bits: usize,
    worker_counts: &[usize],
    n_requests: usize,
    points: &mut Vec<BatchPoint>,
) {
    let mut c: Coalition = CoalitionBuilder::new()
        .key_bits(bits)
        .seed(0xE14)
        .build()
        .expect("coalition");
    let mut requests = Vec::with_capacity(n_requests);
    for i in 0..n_requests {
        c.advance_time(Time(20 + i as i64)).expect("clock");
        requests.push(
            c.build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
                .expect("request"),
        );
    }
    for &cache in &[false, true] {
        for &workers in worker_counts {
            c.reset_server();
            c.set_verification_cache(cache).expect("config");
            let started = Instant::now();
            let decisions = c.server_mut().verify_batch(&requests, workers);
            let elapsed = started.elapsed();
            assert!(decisions.iter().all(|d| d.granted), "all writes must grant");
            let p = BatchPoint {
                bits,
                workers,
                cache,
                requests: n_requests,
                total_ms: elapsed.as_secs_f64() * 1e3,
                throughput: n_requests as f64 / elapsed.as_secs_f64(),
            };
            println!(
                "{} | {} | {} | {} | {:.2} | {:.1}",
                p.bits, p.workers, p.cache, p.requests, p.total_ms, p.throughput
            );
            points.push(p);
        }
    }
}

fn print_sweep() {
    let smoke = smoke();

    // Part A: single-thread signing latency.
    table_header(
        "E14a: RSA sign latency — seed vs Montgomery vs CRT+Montgomery",
        &["bits", "seed ms", "mont ms", "crt ms", "x(mont)", "x(crt)"],
    );
    let (sign_bits, sign_trials): (&[usize], u32) = if smoke {
        (&[256], 2)
    } else {
        (&[1024, 2048], 3)
    };
    let mut sign_points = Vec::new();
    for &bits in sign_bits {
        let p = measure_sign(bits, sign_trials);
        println!(
            "{} | {:.2} | {:.2} | {:.2} | {:.2}x | {:.2}x",
            p.bits,
            p.seed_ms,
            p.classic_ms,
            p.crt_ms,
            p.speedup_montgomery(),
            p.speedup_total()
        );
        sign_points.push(p);
    }

    // Part B: batch decision throughput. Worker scaling is bounded by the
    // host's physical parallelism, so record it alongside the sweep: on a
    // single-core host the workers axis measures pool overhead only.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\n(host parallelism: {cores} core{})",
        if cores == 1 { "" } else { "s" }
    );
    table_header(
        "E14b: verify_batch decision throughput",
        &["bits", "workers", "cache", "requests", "total ms", "req/s"],
    );
    let (batch_bits, worker_counts, n_requests): (&[usize], &[usize], usize) = if smoke {
        (&[96], &[1, 2], 6)
    } else {
        (&[1024, 2048], &[1, 2, 4, 8], 32)
    };
    let mut batch_points = Vec::new();
    for &bits in batch_bits {
        run_batch_sweep(bits, worker_counts, n_requests, &mut batch_points);
    }

    // Machine-readable record (one line, grep "^E14_JSON ").
    let sign_cells: Vec<String> = sign_points
        .iter()
        .map(|p| {
            format!(
                "{{\"bits\":{},\"seed_ms\":{:.3},\"montgomery_ms\":{:.3},\"crt_ms\":{:.3},\"speedup_montgomery\":{:.2},\"speedup_crt\":{:.2}}}",
                p.bits,
                p.seed_ms,
                p.classic_ms,
                p.crt_ms,
                p.speedup_montgomery(),
                p.speedup_total()
            )
        })
        .collect();
    let batch_cells: Vec<String> = batch_points
        .iter()
        .map(|p| {
            format!(
                "{{\"bits\":{},\"workers\":{},\"cache\":{},\"requests\":{},\"total_ms\":{:.3},\"throughput\":{:.1}}}",
                p.bits, p.workers, p.cache, p.requests, p.total_ms, p.throughput
            )
        })
        .collect();
    println!(
        "E14_JSON {{\"experiment\":\"e14_decision_throughput\",\"profile\":\"{}\",\"cores\":{},\"sign\":[{}],\"batch\":[{}]}}",
        if smoke { "smoke" } else { "full" },
        cores,
        sign_cells.join(","),
        batch_cells.join(",")
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_decision_throughput");
    let mut rng = StdRng::seed_from_u64(0xE14);
    let kp = RsaKeyPair::generate(&mut rng, 512).expect("keygen");
    group.bench_function("sign_512_crt_montgomery", |b| {
        b.iter(|| kp.sign(b"bench").expect("sign"));
    });
    group.bench_function("sign_512_montgomery_only", |b| {
        b.iter(|| kp.sign_classic(b"bench").expect("sign"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
