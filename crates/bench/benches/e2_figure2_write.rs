//! Experiments E2/E3 (Figure 2): write (2-of-3) and read (1-of-3) request
//! verification — grant and deny paths.

use criterion::{criterion_group, Criterion};
use jaap_bench::{standard_coalition, table_header};

fn print_table() {
    let mut c = standard_coalition(256, 21);
    table_header(
        "E2/E3: Figure 2 decision matrix (2-of-3 writes, 1-of-3 reads)",
        &["request", "signers", "decision", "sig checks", "axiom apps"],
    );
    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("write", vec!["User_D1", "User_D2"]),
        ("write", vec!["User_D1", "User_D3"]),
        ("write", vec!["User_D2", "User_D3"]),
        ("write", vec!["User_D1", "User_D2", "User_D3"]),
        ("write", vec!["User_D1"]),
        ("write", vec!["User_D2"]),
        ("read", vec!["User_D1"]),
        ("read", vec!["User_D3"]),
    ];
    for (op, signers) in cases {
        let d = match op {
            "write" => c.request_write(&signers).expect("req"),
            _ => c.request_read(&signers).expect("req"),
        };
        println!(
            "{op} | {signers:?} | {} | {} | {}",
            if d.granted { "GRANT" } else { "DENY" },
            d.signature_checks,
            d.axiom_applications
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_figure2");
    group.bench_function("write_grant_2of3", |b| {
        let mut c = standard_coalition(192, 22);
        b.iter(|| c.request_write(&["User_D1", "User_D2"]).expect("req"));
    });
    group.bench_function("write_deny_1of3", |b| {
        let mut c = standard_coalition(192, 23);
        b.iter(|| c.request_write(&["User_D1"]).expect("req"));
    });
    group.bench_function("read_grant_1of3", |b| {
        let mut c = standard_coalition(192, 24);
        b.iter(|| c.request_read(&["User_D2"]).expect("req"));
    });
    group.bench_function("write_grant_3of3", |b| {
        let mut c = standard_coalition(192, 25);
        b.iter(|| {
            c.request_write(&["User_D1", "User_D2", "User_D3"])
                .expect("req")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
