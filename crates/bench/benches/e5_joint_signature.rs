//! Experiment E5 (§3.1/§3.2): cost of applying a joint signature, and the
//! keygen : signature cost ratio.
//!
//! Paper reference point (Malkin et al. [21]): 1.2–2 s per joint signature
//! vs 1.5–5 min for keygen — a ratio of roughly 50–250×. The absolute
//! numbers differ on modern hardware and smaller moduli; the ratio's order
//! of magnitude is the reproduced shape.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_crypto::shared::SharedRsaKey;
use jaap_crypto::{joint, threshold};
use jaap_net::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_table() {
    table_header(
        "E5: joint signature cost (dealt shared keys)",
        &["bits", "n", "local", "networked", "messages"],
    );
    for &bits in &[256usize, 512, 1024] {
        for &n in &[3usize, 5, 7] {
            let mut rng = StdRng::seed_from_u64(bits as u64 + n as u64);
            let (public, shares) = SharedRsaKey::deal(&mut rng, bits, n).expect("deal");
            let start = Instant::now();
            let iters = 10;
            for i in 0..iters {
                let msg = format!("certificate body {i}");
                let _ = joint::sign_locally(&public, &shares, msg.as_bytes()).expect("sign");
            }
            let local = start.elapsed() / iters;
            let start = Instant::now();
            let (_sig, stats) = joint::sign_over_network(
                &public,
                &shares,
                0,
                b"networked body",
                FaultPlan::reliable(),
            )
            .expect("sign");
            println!(
                "{bits} | {n} | {local:?} | {:?} | {}",
                start.elapsed(),
                stats.messages_sent
            );
        }
    }

    // Keygen : signature ratio — the paper's headline cost comparison.
    table_header(
        "E5: keygen vs signature ratio (paper: ~50-250x)",
        &["bits", "keygen", "signature", "ratio"],
    );
    for &bits in &[128usize, 256, 384] {
        let start = Instant::now();
        let (public, shares, _) = SharedRsaKey::generate(bits, 3, 5).expect("keygen");
        let keygen = start.elapsed();
        let start = Instant::now();
        let iters = 20;
        for i in 0..iters {
            let msg = format!("m{i}");
            let _ = joint::sign_locally(&public, &shares, msg.as_bytes()).expect("sign");
        }
        let sig = start.elapsed() / iters;
        let ratio = keygen.as_secs_f64() / sig.as_secs_f64();
        println!("{bits} | {keygen:?} | {sig:?} | {ratio:.0}x");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_joint_signature");
    for &bits in &[256usize, 512] {
        for &n in &[3usize, 5] {
            let mut rng = StdRng::seed_from_u64(9);
            let (public, shares) = SharedRsaKey::deal(&mut rng, bits, n).expect("deal");
            group.bench_function(format!("local_{bits}b_n{n}"), |b| {
                b.iter(|| joint::sign_locally(&public, &shares, b"body").expect("sign"));
            });
        }
    }
    // D2 ablation: n-of-n joint vs m-of-n threshold signing.
    {
        let mut rng = StdRng::seed_from_u64(10);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 256, 5).expect("deal");
        let (tp, tshares) =
            threshold::ThresholdKey::from_additive(&mut rng, &public, &shares, 3).expect("convert");
        group.bench_function("threshold_3of5_256b", |b| {
            b.iter(|| {
                let ss: Vec<_> = tshares[..3]
                    .iter()
                    .map(|s| s.sign_share(b"body").expect("share"))
                    .collect();
                threshold::combine(&tp, b"body", &ss).expect("combine")
            });
        });
    }
    group.bench_function("networked_256b_n3", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 256, 3).expect("deal");
        b.iter(|| {
            joint::sign_over_network(&public, &shares, 0, b"body", FaultPlan::reliable())
                .expect("sign")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
