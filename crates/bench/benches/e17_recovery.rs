//! Experiment E17: journal overhead, snapshot compaction, and crash
//! recovery wall-clock.
//!
//! The E14 decision workload (rotating 2-of-3 signed writes plus single
//! signer reads against `Object O`) is driven through three pipelines:
//!
//! 1. **plain** — no journal attached; the reference decision rate.
//! 2. **journaled** — every belief-changing event (cert admissions, clock
//!    advances, decisions) is appended to an in-memory WAL *before* it
//!    takes effect. The throughput delta is the durability tax.
//! 3. **recovered** — `CoalitionServer::recover` replays the journal byte
//!    image the crashed server left behind and must produce a server that
//!    decides identically (spot-checked with a probe request).
//!
//! Each cell also compacts the recovered journal with `snapshot_journal`
//! (the audit log is bounded at `requests / 4`, so rotated-out decision
//! records fall out of the snapshot) and times a second recovery from the
//! compacted image.
//!
//! Set `E17_PROFILE=smoke` for a seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E17_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_coalition::request::JointAccessRequest;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_coalition::server::{CoalitionServer, ServerDecision};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use jaap_wal::MemStore;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E17_PROFILE").is_ok_and(|v| v == "smoke")
}

/// One measured workload-size cell.
struct Cell {
    requests: usize,
    plain_rps: f64,
    journaled_rps: f64,
    overhead_pct: f64,
    journal_bytes: u64,
    recover_ms: f64,
    records_replayed: usize,
    snapshot_bytes: u64,
    snapshot_recover_ms: f64,
    snapshot_records: usize,
}

/// The E14 batch: writes signed by rotating 2-of-3 signer pairs and reads
/// by single signers.
fn build_batch(c: &Coalition, n: usize) -> Vec<JointAccessRequest> {
    let users = ["User_D1", "User_D2", "User_D3"];
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                c.build_request(&[users[i % 3]], Operation::new("read", "Object O"))
            } else {
                c.build_request(
                    &[users[i % 3], users[(i + 1) % 3]],
                    Operation::new("write", "Object O"),
                )
            }
            .expect("request")
        })
        .collect()
}

/// Drives `requests` through the scenario server, returning wall-clock
/// decisions/sec and the grant outcomes.
fn run_pass(c: &mut Coalition, requests: &[JointAccessRequest]) -> (f64, Vec<bool>) {
    let started = Instant::now();
    let grants: Vec<bool> = requests
        .iter()
        .map(|r| c.server_mut().handle_request(r).granted)
        .collect();
    let rps = requests.len() as f64 / started.elapsed().as_secs_f64();
    (rps, grants)
}

/// Recovers a server from `store`, timing replay wall-clock.
fn timed_recover(c: &Coalition, store: MemStore) -> (CoalitionServer, f64, usize) {
    let started = Instant::now();
    let (recovered, report) =
        CoalitionServer::recover("P", c.trust_store(), Box::new(store)).expect("recover");
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;
    (recovered, recover_ms, report.records_replayed)
}

/// The recovered twin must answer `probe` exactly like the live server.
fn assert_probe(
    recovered: &mut CoalitionServer,
    probe: &JointAccessRequest,
    live: &ServerDecision,
) {
    let d = recovered.handle_request(probe);
    assert_eq!(
        d.granted, live.granted,
        "recovered server must answer the probe like the live server"
    );
    assert_eq!(d.detail, live.detail, "probe detail must match");
}

fn measure_cell(c: &mut Coalition, requests: &[JointAccessRequest], audit_cap: usize) -> Cell {
    // Reference pass: no journal.
    c.reset_server();
    c.server_mut()
        .set_audit_capacity(audit_cap)
        .expect("config");
    let (plain_rps, plain_grants) = run_pass(c, requests);
    let probe = &requests[0];
    let live_probe = c.server_mut().handle_request(probe);

    // Journaled pass: identical workload, WAL-before-effect.
    c.reset_server();
    c.server_mut()
        .set_audit_capacity(audit_cap)
        .expect("config");
    let store = MemStore::new();
    let handle = store.clone();
    c.server_mut()
        .attach_journal(Box::new(store))
        .expect("attach");
    let (journaled_rps, journaled_grants) = run_pass(c, requests);
    assert_eq!(
        plain_grants, journaled_grants,
        "journaling must not change decisions"
    );
    let bytes = handle.snapshot();
    let journal_bytes = bytes.len() as u64;

    // Crash: recover from the byte image the "dead" server left behind.
    // The recovery store's buffer is shared with `recovered_handle`, so
    // the in-place snapshot rewrite below is observable from outside.
    let recovery_store = MemStore::from_bytes(bytes);
    let recovered_handle = recovery_store.clone();
    let (mut recovered, recover_ms, records_replayed) = timed_recover(c, recovery_store);

    // Compact, then recover a second time from the compacted image.
    recovered.snapshot_journal().expect("snapshot");
    let snapshot_bytes = recovered
        .journal_len_bytes()
        .expect("len")
        .expect("journal attached");
    assert!(
        snapshot_bytes < journal_bytes,
        "snapshot must compact the log ({snapshot_bytes} >= {journal_bytes})"
    );
    let compacted = recovered_handle.snapshot();
    assert_probe(&mut recovered, probe, &live_probe);
    let (mut from_snapshot, snapshot_recover_ms, snapshot_records) =
        timed_recover(c, MemStore::from_bytes(compacted));
    assert_probe(&mut from_snapshot, probe, &live_probe);

    Cell {
        requests: requests.len(),
        plain_rps,
        journaled_rps,
        overhead_pct: (plain_rps / journaled_rps - 1.0) * 100.0,
        journal_bytes,
        recover_ms,
        records_replayed,
        snapshot_bytes,
        snapshot_recover_ms,
        snapshot_records,
    }
}

fn print_sweep() {
    let smoke = smoke();
    let (bits, sizes): (usize, &[usize]) = if smoke {
        (96, &[8, 16])
    } else {
        (192, &[32, 128])
    };

    let mut c: Coalition = CoalitionBuilder::new()
        .key_bits(bits)
        .seed(0xE17)
        .build()
        .expect("coalition");
    c.advance_time(Time(20)).expect("clock");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "(host parallelism: {cores} core{})",
        if cores == 1 { "" } else { "s" }
    );
    table_header(
        "E17: durability tax and crash-recovery wall-clock — plain vs journaled vs recovered",
        &[
            "requests",
            "plain req/s",
            "journaled req/s",
            "overhead %",
            "log bytes",
            "recover ms",
            "records",
            "snap bytes",
            "snap recover ms",
        ],
    );
    let mut cells = Vec::new();
    for &n in sizes {
        let requests = build_batch(&c, n);
        let cell = measure_cell(&mut c, &requests, (n / 4).max(2));
        println!(
            "{} | {:.1} | {:.1} | {:.1} | {} | {:.2} | {} | {} | {:.2}",
            cell.requests,
            cell.plain_rps,
            cell.journaled_rps,
            cell.overhead_pct,
            cell.journal_bytes,
            cell.recover_ms,
            cell.records_replayed,
            cell.snapshot_bytes,
            cell.snapshot_recover_ms
        );
        cells.push(cell);
    }

    for cell in &cells {
        assert!(cell.records_replayed > 0, "recovery must replay records");
        assert!(cell.snapshot_records > 0, "compacted image must replay too");
    }
    let headline = cells.last().expect("cells");
    println!(
        "\nlargest cell: {:.1}% append overhead, {:.2} ms recovery of {} records, \
         snapshot compaction {} -> {} bytes",
        headline.overhead_pct,
        headline.recover_ms,
        headline.records_replayed,
        headline.journal_bytes,
        headline.snapshot_bytes
    );

    let cell_json: Vec<String> = cells
        .iter()
        .map(|p| {
            format!(
                "{{\"requests\":{},\"plain_rps\":{:.1},\"journaled_rps\":{:.1},\"overhead_pct\":{:.2},\"journal_bytes\":{},\"recover_ms\":{:.3},\"records_replayed\":{},\"snapshot_bytes\":{},\"snapshot_recover_ms\":{:.3},\"snapshot_records\":{}}}",
                p.requests,
                p.plain_rps,
                p.journaled_rps,
                p.overhead_pct,
                p.journal_bytes,
                p.recover_ms,
                p.records_replayed,
                p.snapshot_bytes,
                p.snapshot_recover_ms,
                p.snapshot_records
            )
        })
        .collect();
    println!(
        "E17_JSON {{\"experiment\":\"e17_recovery\",\"profile\":\"{}\",\"cores\":{},\"bits\":{},\"cells\":[{}]}}",
        if smoke { "smoke" } else { "full" },
        cores,
        bits,
        cell_json.join(",")
    );
}

fn bench(c: &mut Criterion) {
    let mut coalition: Coalition = CoalitionBuilder::new()
        .key_bits(96)
        .seed(0xE17)
        .build()
        .expect("coalition");
    coalition.advance_time(Time(20)).expect("clock");
    let req = coalition
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");

    let mut group = c.benchmark_group("e17_recovery");
    group.bench_function("decision_plain", |b| {
        b.iter(|| coalition.server_mut().handle_request(&req));
    });

    // A small fixed log for the recovery benchmark: 8 decisions deep.
    coalition.reset_server();
    let fixed = MemStore::new();
    let fixed_handle = fixed.clone();
    coalition
        .server_mut()
        .attach_journal(Box::new(fixed))
        .expect("attach");
    for _ in 0..8 {
        coalition.server_mut().handle_request(&req);
    }
    let bytes = fixed_handle.snapshot();
    let trust = coalition.trust_store();

    // A fresh journal for the append-overhead benchmark (it grows with
    // the iteration count, so it must not feed the recovery bench).
    coalition.reset_server();
    coalition
        .server_mut()
        .attach_journal(Box::new(MemStore::new()))
        .expect("attach");
    group.bench_function("decision_journaled", |b| {
        b.iter(|| coalition.server_mut().handle_request(&req));
    });

    group.bench_function("recover_8_decision_log", |b| {
        b.iter(|| {
            CoalitionServer::recover(
                "P",
                trust.clone(),
                Box::new(MemStore::from_bytes(bytes.clone())),
            )
            .expect("recover")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
