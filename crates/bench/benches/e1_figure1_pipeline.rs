//! Experiment E1 (Figure 1): the full coalition pipeline — setup,
//! certificate issuance, and a verified joint access.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jaap_bench::{standard_coalition, table_header};
use jaap_coalition::scenario::CoalitionBuilder;

fn print_table() {
    table_header(
        "E1: Figure 1 pipeline stages (256-bit keys, 3 domains)",
        &["stage", "wall"],
    );
    let start = Instant::now();
    let mut c = standard_coalition(256, 77);
    println!("setup (CAs, users, AA deal, ACs) | {:?}", start.elapsed());

    let start = Instant::now();
    let d = c.request_write(&["User_D1", "User_D2"]).expect("write");
    println!("joint write request (grant) | {:?}", start.elapsed());
    assert!(d.granted);

    let start = Instant::now();
    let d = c.request_read(&["User_D3"]).expect("read");
    println!("read request (grant) | {:?}", start.elapsed());
    assert!(d.granted);

    // Full distributed-keygen variant.
    let start = Instant::now();
    let _ = CoalitionBuilder::new()
        .key_bits(96)
        .distributed_keygen(true)
        .seed(78)
        .build()
        .expect("coalition");
    println!("setup with BF keygen (96-bit) | {:?}", start.elapsed());
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_figure1_pipeline");
    group.sample_size(20);
    group.bench_function("setup_dealt_192b", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            standard_coalition(192, seed)
        });
    });
    group.bench_function("write_request_grant", |b| {
        let mut c = standard_coalition(192, 5);
        b.iter(|| c.request_write(&["User_D1", "User_D2"]).expect("write"));
    });
    group.bench_function("read_request_grant", |b| {
        let mut c = standard_coalition(192, 6);
        b.iter(|| c.request_read(&["User_D1"]).expect("read"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
