//! Experiment E13: signing latency and success of resilient sessions under
//! injected faults — message drops and crashed co-signers — at 2-of-3 and
//! 3-of-5 thresholds. Emits a JSON record per sweep for downstream plots.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_crypto::rsa::RsaKeyPair;
use jaap_crypto::session::{SessionConfig, SigningSession};
use jaap_crypto::threshold::{ThresholdKey, ThresholdPublic, ThresholdShare};
use jaap_net::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const TRIALS: u64 = 5;

fn dealt(m: usize, n: usize, seed: u64) -> (ThresholdPublic, Vec<ThresholdShare>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
    ThresholdKey::deal(&mut rng, &kp, m, n).expect("deal")
}

fn sweep_config() -> SessionConfig {
    SessionConfig {
        round_timeout: Duration::from_millis(40),
        max_retries: 4,
        backoff_base: Duration::from_millis(2),
    }
}

struct Point {
    n: usize,
    m: usize,
    drop: f64,
    crashes: usize,
    successes: u64,
    mean_ms: f64,
    mean_rounds: f64,
    reroutes: u64,
}

/// One sweep cell: `TRIALS` sessions at the given loss rate with the first
/// `crashes` non-requestor domains crashed from the start.
fn run_cell(
    public: &ThresholdPublic,
    shares: &[ThresholdShare],
    drop: f64,
    crashes: usize,
) -> Point {
    let (n, m) = (public.parties(), public.threshold());
    let mut successes = 0u64;
    let mut total = Duration::ZERO;
    let mut rounds = 0u64;
    let mut reroutes = 0u64;
    for trial in 0..TRIALS {
        let mut faults = FaultPlan::seeded(0xE13 ^ trial).with_drop(drop);
        for who in 1..=crashes {
            faults = faults.with_crash(who, 0);
        }
        let started = Instant::now();
        let (outcome, report, _) =
            SigningSession::run_threshold(public, shares, 0, b"E13", faults, &sweep_config());
        let elapsed = started.elapsed();
        rounds += u64::from(report.rounds);
        reroutes += report.reroutes.len() as u64;
        if outcome.is_ok() {
            successes += 1;
            total += elapsed;
        }
    }
    Point {
        n,
        m,
        drop,
        crashes,
        successes,
        mean_ms: if successes == 0 {
            f64::NAN
        } else {
            total.as_secs_f64() * 1e3 / successes as f64
        },
        mean_rounds: rounds as f64 / TRIALS as f64,
        reroutes,
    }
}

fn print_sweep() {
    table_header(
        "E13: session latency / recovery under drops and crashes",
        &[
            "n",
            "m",
            "drop",
            "crashes",
            "ok",
            "mean ms",
            "mean rounds",
            "reroutes",
        ],
    );
    let mut points = Vec::new();
    for &(m, n) in &[(2usize, 3usize), (3, 5)] {
        let (public, shares) = dealt(m, n, 1300 + n as u64);
        for &drop in &[0.0, 0.1, 0.2, 0.3] {
            for crashes in 0..=(n - m) {
                let p = run_cell(&public, &shares, drop, crashes);
                println!(
                    "{} | {} | {:.1} | {} | {}/{} | {:.2} | {:.2} | {}",
                    p.n,
                    p.m,
                    p.drop,
                    p.crashes,
                    p.successes,
                    TRIALS,
                    p.mean_ms,
                    p.mean_rounds,
                    p.reroutes
                );
                points.push(p);
            }
        }
    }
    // Machine-readable record (one line, grep "^E13_JSON ").
    let cells: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"n\":{},\"m\":{},\"drop\":{},\"crashes\":{},\"trials\":{},\"successes\":{},\"mean_ms\":{},\"mean_rounds\":{},\"reroutes\":{}}}",
                p.n,
                p.m,
                p.drop,
                p.crashes,
                TRIALS,
                p.successes,
                if p.mean_ms.is_nan() { "null".to_string() } else { format!("{:.3}", p.mean_ms) },
                p.mean_rounds,
                p.reroutes
            )
        })
        .collect();
    println!(
        "E13_JSON {{\"experiment\":\"e13_fault_recovery\",\"points\":[{}]}}",
        cells.join(",")
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_fault_recovery");
    let (public, shares) = dealt(2, 3, 1303);
    group.bench_function("threshold_2of3_reliable", |b| {
        b.iter(|| {
            SigningSession::sign_threshold(
                &public,
                &shares,
                0,
                b"bench",
                FaultPlan::reliable(),
                &SessionConfig::fast(),
            )
            .expect("sign")
        });
    });
    group.bench_function("threshold_2of3_failover_after_crash", |b| {
        b.iter(|| {
            SigningSession::sign_threshold(
                &public,
                &shares,
                0,
                b"bench",
                FaultPlan::reliable().with_crash(1, 0),
                &SessionConfig::fast(),
            )
            .expect("failover")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
