//! Experiment E19: core scaling of the sharded, lock-free-read coalition
//! front-end.
//!
//! A `ShardedCoalition` partitions disjoint object namespaces across N
//! single-writer shards; decisions run their crypto phase against
//! epoch-versioned immutable snapshots without holding any lock, and a
//! persistent worker pool fans a mixed batch across cores. The experiment
//! drives a mixed admit/revoke/decide workload — every round admits a
//! revocation through the cross-shard fan-out (forcing a snapshot
//! republish on every shard), then decides a cross-shard request batch —
//! and sweeps the worker count. The workers=1 point of the *same* system
//! is the single-threaded baseline; speedups are relative to it.
//!
//! Scaling is bounded by the host: on a single-core machine every point
//! measures pool overhead only, so the ≥3x-at-≥4-workers assertion is
//! gated on `available_parallelism() >= 4` (and on the full profile —
//! smoke keys are too small for crypto to dominate the serial tail).
//!
//! Set `E19_PROFILE=smoke` for a seconds-scale run (CI).
//! Machine-readable record: one line, grep `"^E19_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_coalition::concurrent::ConcurrentServer;
use jaap_coalition::request::{assemble, JointAccessRequest};
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_coalition::server::CoalitionServer;
use jaap_coalition::shard::ShardedCoalition;
use jaap_core::protocol::{Acl, Operation};
use jaap_core::syntax::{GroupId, Time};
use jaap_pki::attribute::AttributeRevocation;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E19_PROFILE").is_ok_and(|v| v == "smoke")
}

fn shard_object(i: usize) -> String {
    format!("Object S{i}")
}

/// An independent coalition per shard: its own domains, CAs, AA, and
/// users, so the shard namespaces are disjoint down to the trust roots.
fn shard_coalition(i: usize, key_bits: usize) -> Coalition {
    let names = [format!("S{i}D1"), format!("S{i}D2"), format!("S{i}D3")];
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    CoalitionBuilder::new()
        .domains(&refs)
        .key_bits(key_bits)
        .seed(0xE19 + i as u64)
        .build()
        .expect("shard coalition")
}

fn shard_server(c: &Coalition, i: usize) -> CoalitionServer {
    let mut server = CoalitionServer::new(format!("P{i}"), c.trust_store());
    let mut acl = Acl::new();
    acl.permit(GroupId::new("G_write"), "write");
    acl.permit(GroupId::new("G_read"), "read");
    server.add_object(shard_object(i), acl).expect("add object");
    server.advance_clock(Time(10)).expect("clock");
    server
}

/// A joint request against shard `i`'s object at an explicit time.
fn request_for(c: &Coalition, i: usize, signers: &[String], action: &str) -> JointAccessRequest {
    let users: Vec<_> = signers.iter().map(|n| c.user(n).expect("user")).collect();
    let ids = signers
        .iter()
        .map(|n| c.identity_cert(n).expect("cert").clone())
        .collect();
    let ac = if action == "read" {
        c.read_ac().clone()
    } else {
        c.write_ac().clone()
    };
    assemble(
        &users,
        ids,
        vec![ac],
        vec![],
        Operation::new(action, shard_object(i)),
        Time(10),
    )
    .expect("assemble")
}

/// The mixed cross-shard request batch: quorum writes, under-threshold
/// writes, and reads, round-robined over the shards.
fn build_batch(coalitions: &[Coalition], n: usize) -> Vec<JointAccessRequest> {
    (0..n)
        .map(|k| {
            let s = k % coalitions.len();
            let users: Vec<String> = (1..=3).map(|d| format!("User_S{s}D{d}")).collect();
            match k % 3 {
                0 => request_for(&coalitions[s], s, &users[0..2], "write"),
                1 => request_for(&coalitions[s], s, &users[2..3], "write"),
                _ => request_for(&coalitions[s], s, &users[0..1], "read"),
            }
        })
        .collect()
}

/// Disposable admissions: future-dated revocations of the read attribute.
/// Each is a fresh signed artifact (distinct `from`), admitted through the
/// router fan-out mid-workload; they republish every shard's snapshot but
/// never flip a verdict (the revocation epoch is far in the future).
fn build_revocations(coalitions: &[Coalition], n: usize) -> Vec<AttributeRevocation> {
    (0..n)
        .map(|k| {
            let c = &coalitions[k % coalitions.len()];
            let ac = c.read_ac();
            c.ra()
                .revoke_attribute(
                    &ac.subject,
                    ac.group.clone(),
                    Time(1_000_000 + k as i64),
                    Time(10),
                )
                .expect("revoke")
        })
        .collect()
}

struct Point {
    workers: usize,
    total_ms: f64,
    rps: f64,
}

/// One sweep cell: `rounds` iterations of (fan out one admission, decide
/// the whole batch at `workers`), verdicts checked against the expected
/// pattern every round.
fn run_point(
    router: &ShardedCoalition,
    batch: &[JointAccessRequest],
    revocations: &mut impl Iterator<Item = AttributeRevocation>,
    expected: &[bool],
    rounds: usize,
    workers: usize,
) -> Point {
    let started = Instant::now();
    for _ in 0..rounds {
        let rev = revocations.next().expect("enough revocations");
        let outcomes = router.admit_attribute_revocation(&rev);
        assert!(
            outcomes.iter().any(|o| o.is_ok()),
            "the home shard must admit its revocation"
        );
        let decisions = router.decide_batch(batch, workers);
        for (d, want) in decisions.iter().zip(expected) {
            assert_eq!(d.granted, *want, "verdict changed under concurrency");
        }
    }
    let elapsed = started.elapsed();
    Point {
        workers,
        total_ms: elapsed.as_secs_f64() * 1e3,
        rps: (rounds * batch.len()) as f64 / elapsed.as_secs_f64(),
    }
}

fn print_sweep() {
    let smoke = smoke();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (shards, key_bits, n_requests, rounds, worker_counts): (
        usize,
        usize,
        usize,
        usize,
        &[usize],
    ) = if smoke {
        (2, 192, 8, 3, &[1, 2, 4])
    } else {
        (4, 512, 32, 4, &[1, 2, 4, 8])
    };

    let coalitions: Vec<Coalition> = (0..shards).map(|i| shard_coalition(i, key_bits)).collect();
    let router = ShardedCoalition::new(
        coalitions
            .iter()
            .enumerate()
            .map(|(i, c)| shard_server(c, i))
            .collect(),
    )
    .expect("router");
    let batch = build_batch(&coalitions, n_requests);
    let mut revocations =
        build_revocations(&coalitions, worker_counts.len() * rounds + 1).into_iter();

    // Warmup at workers=1: admits every request's certificate bodies, so
    // all timed cells run against the same steady-state belief sets. The
    // verdict pattern it produces is the reference for every timed round.
    let expected: Vec<bool> = router
        .decide_batch(&batch, 1)
        .iter()
        .map(|d| d.granted)
        .collect();
    assert!(expected.iter().any(|g| *g), "some requests must grant");
    assert!(!expected.iter().all(|g| *g), "some requests must deny");

    println!(
        "(host parallelism: {cores} core{}; {shards} shards, {key_bits}-bit keys)",
        if cores == 1 { "" } else { "s" }
    );
    table_header(
        "E19: sharded mixed admit/revoke/decide throughput",
        &[
            "workers",
            "requests/round",
            "rounds",
            "total ms",
            "req/s",
            "speedup",
        ],
    );
    let mut points = Vec::new();
    for &workers in worker_counts {
        let p = run_point(
            &router,
            &batch,
            &mut revocations,
            &expected,
            rounds,
            workers,
        );
        let baseline = points.first().map_or(p.rps, |b: &Point| b.rps);
        println!(
            "{} | {} | {} | {:.2} | {:.1} | {:.2}x",
            p.workers,
            batch.len(),
            rounds,
            p.total_ms,
            p.rps,
            p.rps / baseline
        );
        points.push(p);
    }

    let baseline_rps = points[0].rps;
    // The scaling gate: only meaningful with real parallelism underneath
    // and with keys big enough that crypto dominates the serial tail.
    let gate = cores >= 4 && !smoke;
    if gate {
        let best = points
            .iter()
            .filter(|p| p.workers >= 4)
            .map(|p| p.rps / baseline_rps)
            .fold(0.0f64, f64::max);
        assert!(
            best >= 3.0,
            "expected >=3x scaling at >=4 workers on a {cores}-core host, got {best:.2}x"
        );
        println!("scaling assertion: PASSED (>=3x at >=4 workers on {cores} cores)");
    } else {
        println!(
            "scaling assertion: SKIPPED ({} — speedups recorded, not asserted)",
            if cores < 4 {
                "host has fewer than 4 cores"
            } else {
                "smoke profile"
            }
        );
    }

    let cells: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"workers\":{},\"total_ms\":{:.3},\"rps\":{:.1},\"speedup\":{:.3}}}",
                p.workers,
                p.total_ms,
                p.rps,
                p.rps / baseline_rps
            )
        })
        .collect();
    println!(
        "E19_JSON {{\"experiment\":\"e19_sharded_throughput\",\"profile\":\"{}\",\"cores\":{cores},\"shards\":{shards},\"key_bits\":{key_bits},\"requests\":{},\"rounds\":{rounds},\"baseline_rps\":{baseline_rps:.1},\"scaling_asserted\":{gate},\"points\":[{}]}}",
        if smoke { "smoke" } else { "full" },
        n_requests,
        cells.join(",")
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_sharded_throughput");
    let coalition = CoalitionBuilder::new()
        .key_bits(192)
        .seed(0xE19)
        .build()
        .expect("coalition");
    let req = coalition
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");
    let server = ConcurrentServer::new(coalition.into_server());
    group.bench_function("snapshot_load_cached_192", |b| {
        let mut reader = server.reader();
        b.iter(|| reader.load().version());
    });
    group.bench_function("decide_lock_free_192", |b| {
        b.iter(|| server.decide(&req).granted);
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
