//! Experiments E7/E11 (§2.2, §3.1): trust liability of Case I vs Case II
//! and the collusion threshold.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_coalition::liability::{exposure_probability, min_compromises, simulate_exposure, Scheme};
use jaap_crypto::collusion::{collude_additive, collude_threshold};
use jaap_crypto::rsa::RsaKeyPair;
use jaap_crypto::shared::SharedRsaKey;
use jaap_crypto::threshold::ThresholdKey;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_tables() {
    table_header(
        "E7: minimum compromises for AA key exposure",
        &[
            "n",
            "Case I (lockbox)",
            "Case II (n-of-n)",
            "Case II (majority)",
        ],
    );
    for n in [3usize, 5, 7, 9] {
        println!(
            "{n} | {} | {} | {}",
            min_compromises(Scheme::CaseILockbox { n }),
            min_compromises(Scheme::CaseIIShared { n }),
            min_compromises(Scheme::CaseIIThreshold { m: n / 2 + 1, n })
        );
    }

    table_header(
        "E7: exposure probability, per-party compromise probability q (n=3)",
        &[
            "q",
            "Case I analytic",
            "Case I MC",
            "Case II analytic",
            "Case II MC",
            "ratio",
        ],
    );
    for q in [0.01f64, 0.05, 0.10, 0.20] {
        let c1 = exposure_probability(Scheme::CaseILockbox { n: 3 }, q);
        let c1mc = simulate_exposure(Scheme::CaseILockbox { n: 3 }, q, 40_000, 1);
        let c2 = exposure_probability(Scheme::CaseIIShared { n: 3 }, q);
        let c2mc = simulate_exposure(Scheme::CaseIIShared { n: 3 }, q, 40_000, 2);
        println!(
            "{q:.2} | {c1:.5} | {c1mc:.5} | {c2:.2e} | {c2mc:.2e} | {:.0}x",
            c1 / c2
        );
    }

    // E11: collusion with real key material.
    table_header(
        "E11: collusion with real shares (192-bit shared key, n=3)",
        &["scheme", "colluders", "key recovered"],
    );
    let mut rng = StdRng::seed_from_u64(5);
    let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
    for k in 1..=3usize {
        let pooled: Vec<_> = shares[..k].iter().collect();
        println!(
            "additive n-of-n | {k} | {}",
            collude_additive(&public, &pooled).is_compromised()
        );
    }
    let kp = RsaKeyPair::generate(&mut rng, 192).expect("keygen");
    let (tp, tshares) = ThresholdKey::deal(&mut rng, &kp, 2, 3).expect("deal");
    for k in 1..=3usize {
        let pooled: Vec<_> = tshares[..k].iter().collect();
        println!(
            "threshold 2-of-3 | {k} | {}",
            collude_threshold(&tp, &pooled).is_compromised()
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_trust_liability");
    group.bench_function("monte_carlo_exposure_10k", |b| {
        b.iter(|| simulate_exposure(Scheme::CaseIIShared { n: 3 }, 0.1, 10_000, 9));
    });
    group.bench_function("collusion_check_full_set", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let (public, shares) = SharedRsaKey::deal(&mut rng, 192, 3).expect("deal");
        let pooled: Vec<_> = shares.iter().collect();
        b.iter(|| collude_additive(&public, &pooled).is_compromised());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_tables();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
