//! Experiment E16: logic-phase throughput with the hash-consed arena and
//! derivation memo.
//!
//! The E14 batch scenario (pre-signed write/read requests through
//! `CoalitionServer::verify_batch`) is replayed against two engine
//! configurations: the reference path (memo off — every decision re-runs
//! the §4.3 four-step derivation) and the memoized path (memo on — a
//! repeated request at the same belief epoch replays its cached proof).
//! The verification cache is on in every cell so the crypto phase is
//! identical across configurations and the *logic* phase is what varies.
//!
//! Reported per cell: cold (first-pass) and warm (repeat-pass) logic-phase
//! latency per decision — read from the `server.phase.logic_ns` histogram,
//! the same instrument E15 validated — plus warm wall-clock decisions/sec
//! for the whole batch pipeline.
//!
//! The headline ratio `warm_logic_speedup` (memo-off warm latency over
//! memo-on warm latency) is asserted to be ≥ 2×.
//!
//! Set `E16_PROFILE=smoke` for a seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E16_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_coalition::request::JointAccessRequest;
use jaap_coalition::scenario::{Coalition, CoalitionBuilder};
use jaap_core::protocol::Operation;
use jaap_core::syntax::Time;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("E16_PROFILE").is_ok_and(|v| v == "smoke")
}

/// One measured configuration cell.
struct Cell {
    memo: bool,
    requests: usize,
    warm_passes: usize,
    cold_logic_us: f64,
    warm_logic_us: f64,
    warm_throughput: f64,
    memo_hits: u64,
    memo_misses: u64,
}

/// Delta of the logic-phase histogram across a closure, in (sum_ns, count).
fn logic_delta(registry: &jaap_obs::MetricsRegistry, mut run: impl FnMut()) -> (u64, u64) {
    let before = registry
        .histogram_snapshot("server.phase.logic_ns")
        .map_or((0, 0), |s| (s.sum, s.count));
    run();
    let after = registry
        .histogram_snapshot("server.phase.logic_ns")
        .map_or((0, 0), |s| (s.sum, s.count));
    (after.0 - before.0, after.1 - before.1)
}

/// Builds the E14 batch: writes signed by rotating 2-of-3 signer pairs and
/// reads by single signers, all replayable (no nonces, fixed timestamps).
fn build_batch(c: &Coalition, n: usize) -> Vec<JointAccessRequest> {
    let users = ["User_D1", "User_D2", "User_D3"];
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                c.build_request(&[users[i % 3]], Operation::new("read", "Object O"))
            } else {
                c.build_request(
                    &[users[i % 3], users[(i + 1) % 3]],
                    Operation::new("write", "Object O"),
                )
            }
            .expect("request")
        })
        .collect()
}

fn measure_cell(
    c: &mut Coalition,
    requests: &[JointAccessRequest],
    memo: bool,
    warm_passes: usize,
    workers: usize,
) -> Cell {
    c.reset_server();
    c.set_verification_cache(true).expect("config");
    c.set_derivation_memo(memo).expect("config");
    let registry = c.enable_metrics();

    // Cold pass: every decision derives (and, with the memo on, stores).
    let (cold_ns, cold_n) = logic_delta(&registry, || {
        let decisions = c.server_mut().verify_batch(requests, workers);
        assert!(decisions.iter().all(|d| d.granted), "batch must grant");
    });

    // Warm passes: identical requests at the same belief epoch.
    let started = Instant::now();
    let (warm_ns, warm_n) = logic_delta(&registry, || {
        for _ in 0..warm_passes {
            let decisions = c.server_mut().verify_batch(requests, workers);
            assert!(decisions.iter().all(|d| d.granted), "warm batch must grant");
        }
    });
    let warm_elapsed = started.elapsed();

    let stats = c.server().derivation_memo_stats().unwrap_or_default();
    Cell {
        memo,
        requests: requests.len(),
        warm_passes,
        cold_logic_us: cold_ns as f64 / 1e3 / cold_n.max(1) as f64,
        warm_logic_us: warm_ns as f64 / 1e3 / warm_n.max(1) as f64,
        warm_throughput: (requests.len() * warm_passes) as f64 / warm_elapsed.as_secs_f64(),
        memo_hits: stats.hits,
        memo_misses: stats.misses,
    }
}

fn print_sweep() {
    let smoke = smoke();
    let (bits, n_requests, warm_passes, workers): (usize, usize, usize, usize) = if smoke {
        (96, 6, 3, 2)
    } else {
        (512, 32, 5, 2)
    };

    let mut c: Coalition = CoalitionBuilder::new()
        .key_bits(bits)
        .seed(0xE16)
        .build()
        .expect("coalition");
    c.advance_time(Time(20)).expect("clock");
    let requests = build_batch(&c, n_requests);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "(host parallelism: {cores} core{})",
        if cores == 1 { "" } else { "s" }
    );
    table_header(
        "E16: logic-phase latency and warm batch throughput — memo off vs on",
        &[
            "memo",
            "requests",
            "cold logic us",
            "warm logic us",
            "warm req/s",
            "hits",
            "misses",
        ],
    );
    let mut cells = Vec::new();
    for memo in [false, true] {
        let cell = measure_cell(&mut c, &requests, memo, warm_passes, workers);
        println!(
            "{} | {} | {:.2} | {:.2} | {:.1} | {} | {}",
            cell.memo,
            cell.requests,
            cell.cold_logic_us,
            cell.warm_logic_us,
            cell.warm_throughput,
            cell.memo_hits,
            cell.memo_misses
        );
        cells.push(cell);
    }

    let reference = &cells[0];
    let memoized = &cells[1];
    assert!(
        memoized.memo_hits as usize >= n_requests * warm_passes,
        "warm passes must hit the memo (hits = {})",
        memoized.memo_hits
    );
    let warm_logic_speedup = reference.warm_logic_us / memoized.warm_logic_us.max(1e-3);
    println!("\nwarm logic-phase speedup (memo off / memo on): {warm_logic_speedup:.1}x");
    assert!(
        warm_logic_speedup >= 2.0,
        "memoized warm logic phase must be at least 2x faster (got {warm_logic_speedup:.2}x)"
    );

    let cell_json: Vec<String> = cells
        .iter()
        .map(|p| {
            format!(
                "{{\"memo\":{},\"requests\":{},\"warm_passes\":{},\"cold_logic_us\":{:.3},\"warm_logic_us\":{:.3},\"warm_throughput\":{:.1},\"memo_hits\":{},\"memo_misses\":{}}}",
                p.memo,
                p.requests,
                p.warm_passes,
                p.cold_logic_us,
                p.warm_logic_us,
                p.warm_throughput,
                p.memo_hits,
                p.memo_misses
            )
        })
        .collect();
    println!(
        "E16_JSON {{\"experiment\":\"e16_logic_throughput\",\"profile\":\"{}\",\"cores\":{},\"bits\":{},\"cells\":[{}],\"warm_logic_speedup\":{:.2}}}",
        if smoke { "smoke" } else { "full" },
        cores,
        bits,
        cell_json.join(","),
        warm_logic_speedup
    );
}

fn bench(c: &mut Criterion) {
    let mut coalition: Coalition = CoalitionBuilder::new()
        .key_bits(96)
        .seed(0xE16)
        .build()
        .expect("coalition");
    coalition.advance_time(Time(20)).expect("clock");
    coalition.set_verification_cache(true).expect("config");
    let req = coalition
        .build_request(&["User_D1", "User_D2"], Operation::new("write", "Object O"))
        .expect("request");

    let mut group = c.benchmark_group("e16_logic_throughput");
    coalition.set_derivation_memo(false).expect("config");
    coalition.server_mut().handle_request(&req);
    group.bench_function("warm_decision_rederived", |b| {
        b.iter(|| coalition.server_mut().handle_request(&req));
    });
    coalition.set_derivation_memo(true).expect("config");
    coalition.server_mut().handle_request(&req);
    group.bench_function("warm_decision_memoized", |b| {
        b.iter(|| coalition.server_mut().handle_request(&req));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
