//! Experiment E4 (§3.1): cost of shared RSA key generation.
//!
//! Paper reference point (Malkin et al. [21]): 1.5–5 minutes to generate a
//! shared 1024-bit key among three servers (1999 hardware). We reproduce
//! the *shape*: distributed generation is orders of magnitude more
//! expensive than any other operation, grows steeply with modulus size,
//! and grows with the number of parties; the dealer fast path (ablation
//! D1) is ~the cost of a plain RSA keygen.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use jaap_bench::table_header;
use jaap_crypto::shared::SharedRsaKey;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_table() {
    table_header(
        "E4: distributed (Boneh–Franklin) shared key generation",
        &["bits", "n", "wall", "candidates", "sieve draws", "messages"],
    );
    for &bits in &[128usize, 192, 256, 384, 512] {
        for &n in &[3usize, 5] {
            let start = Instant::now();
            let (_pk, _shares, stats) =
                SharedRsaKey::generate(bits, n, 42 + bits as u64).expect("keygen");
            println!(
                "{bits} | {n} | {:?} | {} | {} | {}",
                start.elapsed(),
                stats.candidates_tried,
                stats.sieve_draws,
                stats.network.messages_sent
            );
        }
    }

    table_header(
        "E4/D1 ablation: dealer-based split (trusted-dealer fast path)",
        &["bits", "n", "wall"],
    );
    for &bits in &[256usize, 512] {
        let mut rng = StdRng::seed_from_u64(7);
        let start = Instant::now();
        let _ = SharedRsaKey::deal(&mut rng, bits, 3).expect("deal");
        println!("{bits} | 3 | {:?}", start.elapsed());
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_shared_keygen");
    group.sample_size(10);
    for &bits in &[96usize, 128, 192] {
        group.bench_function(format!("bf_keygen_{bits}b_n3"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                SharedRsaKey::generate(bits, 3, seed).expect("keygen")
            });
        });
    }
    group.bench_function("dealer_split_256b_n3", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| SharedRsaKey::deal(&mut rng, 256, 3).expect("deal"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
