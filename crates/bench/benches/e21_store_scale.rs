//! Experiment E21: million-principal scale — the persistent indexed
//! cert/CRL/ACL store under an open-loop load generator.
//!
//! A certified population of N principals (identity + `G_read` attribute
//! certificates) is persisted into a file-backed [`CertStore`] attached
//! to the coalition server, then driven at a **fixed arrival rate** with
//! Zipf-distributed principal popularity, membership churn, and periodic
//! CRL revocation storms (see `jaap_bench::loadgen`). Latency is
//! scheduled-arrival → completion, so open-loop queueing delay is priced
//! rather than hidden.
//!
//! The run *fails* unless every offered request is served, the achieved
//! rate sustains the profile's floor, and the store's resident footprint
//! (page cache + unflushed tail, mirrored by the `store.resident_bytes`
//! gauge) stays under the configured budget — the bounded-memory claim
//! the paged cold tier exists to make.
//!
//! The full profile encodes the target of the experiment — 10⁶
//! certified principals at a sustained 10⁵ decisions/sec — and is meant
//! for a large multi-core box; CI runs the smoke profile (10⁴
//! principals) which asserts the same invariants at a scaled-down rate.
//!
//! Set `E21_PROFILE=smoke` for the seconds-scale run (CI).
//!
//! Machine-readable record: one line, grep `"^E21_JSON "`.

use criterion::{criterion_group, Criterion};
use jaap_bench::loadgen::{
    assert_store_covers_population, run_open_loop, LoadgenConfig, Population,
};
use jaap_bench::{standard_coalition, table_header};
use jaap_coalition::server::CapacityConfig;
use jaap_store::{CertStore, Column, StoreConfig};
use jaap_wal::{FileStore, SyncPolicy};

fn smoke() -> bool {
    std::env::var("E21_PROFILE").is_ok_and(|v| v == "smoke")
}

struct Profile {
    name: &'static str,
    principals: usize,
    key_pool: usize,
    key_bits: usize,
    requests: usize,
    rate_per_sec: f64,
    /// Required sustained decision throughput (decisions/sec).
    min_rps: f64,
    store: StoreConfig,
    capacities: CapacityConfig,
}

impl Profile {
    /// Resident-memory budget the run must stay under: the page budget,
    /// one flush threshold of unflushed tail, plus one page of slack for
    /// a span mid-read.
    fn resident_budget(&self) -> u64 {
        (self.store.cache_pages as u64 + 1) * self.store.page_size
            + self.store.flush_threshold as u64
    }
}

fn profile() -> Profile {
    if smoke() {
        Profile {
            name: "smoke",
            principals: 10_000,
            key_pool: 96,
            key_bits: 192,
            requests: 6_000,
            rate_per_sec: 3_000.0,
            min_rps: 2_000.0,
            store: StoreConfig {
                page_size: 16 * 1024,
                cache_pages: 32,
                flush_threshold: 64 * 1024,
                ..StoreConfig::default()
            },
            capacities: CapacityConfig {
                replay: 4_096,
                verify_cache: Some(4_096),
                derivation_memo: Some(4_096),
                store_cache_pages: Some(32),
                ..CapacityConfig::default()
            },
        }
    } else {
        Profile {
            name: "full",
            principals: 1_000_000,
            key_pool: 1_024,
            key_bits: 192,
            requests: 3_000_000,
            rate_per_sec: 100_000.0,
            min_rps: 100_000.0,
            store: StoreConfig {
                page_size: 64 * 1024,
                cache_pages: 256,
                flush_threshold: 256 * 1024,
                ..StoreConfig::default()
            },
            capacities: CapacityConfig::million_principals(),
        }
    }
}

fn print_sweep() {
    let p = profile();
    let dir = std::env::temp_dir().join(format!("jaap-e21-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let log_path = dir.join("certstore.log");
    // SyncPolicy::Never: E21 prices lookup/decision throughput; fsync
    // pricing is E18's `fsync` sweep.
    let medium = FileStore::with_sync_policy(&log_path, SyncPolicy::Never).expect("file store");
    let store = CertStore::open(Box::new(medium), p.store).expect("open store");

    let mut c = standard_coalition(p.key_bits, 0xE21);
    let registry = c.enable_metrics();
    c.server_mut()
        .attach_cert_store(store.clone())
        .expect("attach store");
    c.server_mut()
        .apply_capacity_config(&p.capacities)
        .expect("config");
    c.server_mut().set_verification_cache(true).expect("config");
    c.server_mut().set_crypto_precomp(true).expect("config");
    // Open-loop offered load is logically distinct per arrival; replay
    // dedup would serve Zipf-hot repeats from the replay window and
    // price nothing.
    c.server_mut().set_replay_protection(false).expect("config");

    let setup_started = std::time::Instant::now();
    let mut population =
        Population::certify(&c, &store, p.principals, p.key_pool, p.key_bits, 0xE21 + 1);
    store.flush().expect("flush certified population");
    let setup_s = setup_started.elapsed().as_secs_f64();
    let log_bytes = std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0);

    let config = LoadgenConfig {
        requests: p.requests,
        rate_per_sec: p.rate_per_sec,
        burst: None,
        deadline: None,
        zipf_exponent: 1.1,
        churn_every: p.requests / 12,
        storm_every: p.requests / 6,
        tick_every: 512,
        seed: 0xE21 + 2,
    };
    let report = run_open_loop(&mut c, &store, &mut population, &config);

    table_header(
        &format!(
            "E21: open-loop load over {} certified principals ({} profile)",
            p.principals, p.name
        ),
        &[
            "offered rps",
            "achieved rps",
            "served",
            "granted",
            "denied",
            "p50 us",
            "p99 us",
            "p999 us",
            "max us",
            "resident KiB",
        ],
    );
    println!(
        "{:.0} | {:.0} | {} | {} | {} | {} | {} | {} | {} | {}",
        report.offered_rps,
        report.achieved_rps,
        report.served,
        report.granted,
        report.denied,
        report.p50_us,
        report.p99_us,
        report.p999_us,
        report.max_us,
        report.resident_peak_bytes / 1024,
    );

    // The experiment's invariants, asserted in-bench.
    assert_eq!(report.served, p.requests, "open-loop drivers never drop");
    assert!(
        report.achieved_rps >= p.min_rps,
        "achieved {:.0} rps is below the {} profile floor of {:.0}",
        report.achieved_rps,
        p.name,
        p.min_rps
    );
    let budget = p.resident_budget();
    assert!(
        report.resident_peak_bytes <= budget,
        "store resident peak {} exceeds budget {budget}",
        report.resident_peak_bytes
    );
    let gauge = registry.gauge_value("store.resident_bytes").unwrap_or(-1);
    assert!(
        gauge >= 0 && (gauge as u64) <= budget,
        "store.resident_bytes gauge {gauge} outside [0, {budget}]"
    );
    assert!(
        report.granted > report.denied,
        "the Zipf head must dominate: {} granted vs {} denied",
        report.granted,
        report.denied
    );
    assert!(report.churned > 0, "churn must mint principals");
    assert!(report.storms > 0, "revocation storms must fire");
    assert!(
        report.p999_us >= report.p99_us && report.p99_us >= report.p50_us,
        "latency quantiles must be monotone"
    );
    assert_store_covers_population(&store, &population);
    let store_reads = registry.counter_value("store.reads").unwrap_or(0);
    let store_misses = registry.counter_value("store.misses").unwrap_or(0);
    assert!(
        store_reads >= 2 * report.served as u64,
        "every request fetches both certificate rows from the store"
    );
    assert!(
        store_misses > 0,
        "the Zipf cold tail must reach the cold tier"
    );

    println!(
        "E21_JSON {{\"experiment\":\"e21_store_scale\",\"profile\":\"{}\",\"cores\":{},\"principals\":{},\"key_bits\":{},\"requests\":{},\"offered_rps\":{:.0},\"achieved_rps\":{:.0},\"min_rps\":{:.0},\"served\":{},\"granted\":{},\"denied\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{},\"resident_peak_bytes\":{},\"resident_budget_bytes\":{},\"store_reads\":{},\"store_misses\":{},\"page_evictions\":{},\"log_bytes\":{},\"setup_s\":{:.1},\"churned\":{},\"storms\":{},\"population\":{}}}",
        p.name,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        p.principals,
        p.key_bits,
        p.requests,
        report.offered_rps,
        report.achieved_rps,
        p.min_rps,
        report.served,
        report.granted,
        report.denied,
        report.p50_us,
        report.p99_us,
        report.p999_us,
        report.max_us,
        report.resident_peak_bytes,
        budget,
        store_reads,
        store_misses,
        registry.counter_value("store.page_evictions").unwrap_or(0),
        log_bytes,
        setup_s,
        report.churned,
        report.storms,
        report.population,
    );

    let _ = std::fs::remove_dir_all(&dir);
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e21_store_scale");
    let store = CertStore::in_memory(StoreConfig {
        page_size: 4 * 1024,
        cache_pages: 8,
        flush_threshold: 16 * 1024,
        ..StoreConfig::default()
    });
    let coalition = standard_coalition(192, 0xE21 + 9);
    let population = Population::certify(&coalition, &store, 512, 24, 192, 0xE21 + 9);
    store.flush().expect("flush");
    group.bench_function("hot_identity_lookup", |b| {
        b.iter(|| store.identity_by_subject(population.name(0)).expect("get"));
    });
    group.bench_function("cold_tail_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % 512;
            store.identity_by_subject(population.name(i)).expect("get")
        });
    });
    assert_eq!(store.len(Column::IdentitySubject), 512);
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_sweep();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
